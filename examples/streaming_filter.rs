//! Streaming filter: match a path query against an XML event stream
//! without ever materializing the document (paper §4.2: pre-order storage
//! order coincides with streaming arrival order).
//!
//! ```sh
//! cargo run --release --example streaming_filter
//! ```

use std::time::Instant;
use xqp::SuccinctDoc;
use xqp_exec::streaming;
use xqp_gen::{gen_xmark, XmarkConfig};
use xqp_xml::{serialize, Event, Parser};
use xqp_xpath::{parse_path, PatternGraph};

fn main() {
    // Pretend this XML arrives over the wire.
    let xml = serialize(&gen_xmark(&XmarkConfig::scale(0.3)));
    println!("incoming stream: {} bytes", xml.len());

    let query = "//person[profile/age > 65]/emailaddress";
    let pattern = PatternGraph::from_path(&parse_path(query).unwrap()).unwrap();

    // Parse to events and run the NoK matcher directly on them.
    let t = Instant::now();
    let events: Vec<Event> = Parser::new(&xml).collect::<Result<_, _>>().unwrap();
    let parse_t = t.elapsed();

    let t = Instant::now();
    let hits = streaming::match_stream(events.iter(), &pattern);
    let match_t = t.elapsed();

    println!("query: {query}");
    println!("  parse  {parse_t:>9.2?}");
    println!("  match  {match_t:>9.2?}  ({} matches)", hits.len());

    // The streamed ranks are store-compatible: loading the same document
    // gives the same node ids, so we can pull the matched values.
    let sdoc = SuccinctDoc::parse(&xml).unwrap();
    println!("\nfirst matches:");
    for h in hits.iter().take(5) {
        println!("  {} = {}", h, sdoc.string_value(*h));
    }

    // Sanity: stored evaluation agrees.
    let ctx = xqp_exec::ExecContext::new(&sdoc);
    let stored = xqp_exec::nok::eval_single_output(&ctx, &pattern, None);
    assert_eq!(hits, stored);
    println!("\nstored evaluation returns the identical {} node ids ✓", stored.len());
}
