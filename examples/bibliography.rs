//! A living bibliography: queries, updates and indexing on one document.
//!
//! Shows the update path of the succinct store — inserts and deletes are
//! local parenthesis-substring splices (§4.2 of the paper) — staying
//! consistent with queries and indexes.
//!
//! ```sh
//! cargo run --example bibliography
//! ```

use xqp::Database;
use xqp_gen::gen_bib;

fn main() {
    let db = Database::new();
    db.load_document("bib", &gen_bib(12, 7)).unwrap();
    db.create_index("bib").unwrap();

    let total = db.query("bib", "count(/bib/book)").unwrap();
    println!("books: {total}");

    // Reading list: cheap books, newest first.
    let list = db
        .query(
            "bib",
            "for $b in doc()/bib/book where $b/price < 60 \
             order by $b/@year descending \
             return <pick year=\"{$b/@year}\">{$b/title}</pick>",
        )
        .unwrap();
    println!("\ncheap picks, newest first:");
    for line in list.split("</pick>").filter(|s| !s.is_empty()) {
        println!("  {line}</pick>");
    }

    // Update 1: a new book arrives (a local splice, not a re-encode).
    db.insert_into(
        "bib",
        "/bib",
        "<book year=\"2004\"><title>Succinct XML Storage</title>\
         <author><last>Zhang</last><first>N.</first></author>\
         <publisher>UW</publisher><price>0.00</price></book>",
    )
    .unwrap();
    println!("\nafter insert: {} books", db.query("bib", "count(/bib/book)").unwrap());
    println!("the free book: {}", db.query("bib", "/bib/book[price = 0]/title").unwrap());

    // Update 2: purge everything over 100.
    let removed = db.delete_matching("bib", "/bib/book[price > 100]").unwrap();
    println!("\nremoved {removed} overpriced book(s)");
    println!("remaining: {}", db.query("bib", "count(/bib/book)").unwrap());

    // Storage accounting after the updates.
    let st = db.storage_stats("bib").unwrap();
    println!(
        "\nstorage: {} nodes; succinct structure {} B ({:.2} bits/node), \
         schema {} B, content {} B — DOM would be {} B, interval tables {} B",
        st.nodes,
        st.succinct_structure,
        st.structure_bits_per_node(),
        st.succinct_schema,
        st.succinct_content,
        st.dom_bytes,
        st.interval_bytes
    );
}
