//! Quickstart: load the paper's `bib.xml`, run the Fig. 1 query, and look
//! at the optimized plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xqp::Database;

fn main() {
    let db = Database::new();

    // The four-book sample from the W3C XQuery Use Cases (paper Fig. 1).
    let bib = xqp_gen::bib_sample();
    db.load_document("bib", &bib).unwrap();

    // --- a path query -------------------------------------------------------
    let titles = db.query("bib", "/bib/book[@year > 1991]/title").unwrap();
    println!("titles after 1991:\n  {titles}\n");

    // --- the Fig. 1 FLWOR ----------------------------------------------------
    let fig1 = r#"
        <results> {
            for $b in doc("bib.xml")/bib/book
            let $t := $b/title
            let $a := $b/author
            return <result> {$t} {$a} </result>
        } </results>
    "#;
    let out = db.query("bib", fig1).unwrap();
    println!("Fig. 1 result:\n  {out}\n");

    // --- what the optimizer did ----------------------------------------------
    let (plan, report) = db.explain("bib", fig1).unwrap();
    println!("optimized plan (inside the constructor):\n{plan}");
    println!("rules fired: {:?}", report.applied);

    // --- aggregate over the same data -----------------------------------------
    let avg = db.query("bib", "avg(doc()/bib/book/price)").unwrap();
    println!("\naverage price: {avg}");
}
