//! Optimizer showcase: the same queries under different rewrite-rule sets.
//!
//! Prints the logical plan before/after each headline rule (R1 navigation
//! fusion, R5 FLWOR→TPM, R7 dead-binding elimination, R8 constant folding)
//! so the effect of every rewrite is visible. Each explain also includes
//! the lowered physical pipeline (`-- physical plan (streaming, batch=64)`)
//! with per-operator cost estimates; the final section runs a query and
//! re-explains to show the `actual rows / batches` counters filling in.
//!
//! ```sh
//! cargo run --example explain_plans
//! ```

use xqp::{Database, RuleSet};
use xqp_gen::bib_sample;

fn show(db: &mut Database, label: &str, rules: RuleSet, query: &str) {
    db.set_rules(rules);
    let (plan, report) = db.explain("bib", query).unwrap();
    println!("--- {label} ---");
    print!("{plan}");
    println!("fired: {:?}\n", report.applied);
}

fn main() {
    let mut db = Database::new();
    db.load_document("bib", &bib_sample()).unwrap();

    let fig1 = "for $b in doc()/bib/book let $t := $b/title let $a := $b/author \
                return <result>{$t}{$a}</result>";
    println!("query: {fig1}\n");
    show(&mut db, "no rules (naive pipeline)", RuleSet::none(), fig1);
    show(&mut db, "all rules (R5 fuses the bindings into one TPM)", RuleSet::all(), fig1);

    let dead = "for $b in doc()/bib/book let $unused := $b/publisher return $b/title";
    println!("query: {dead}\n");
    show(&mut db, "without R7", RuleSet::all_except(7), dead);
    show(&mut db, "with R7 (dead let removed)", RuleSet::all(), dead);

    let constant = "for $b in doc()/bib/book where 2 * 3 > 5 return $b/title";
    println!("query: {constant}\n");
    show(&mut db, "without R8", RuleSet::all_except(8), constant);
    show(&mut db, "with R8 (condition folded to true)", RuleSet::all(), constant);

    // Standalone path compilation: R1 on and off.
    let path = "for $x in doc()/bib/book[author][price > 50]/title return $x";
    println!("query: {path}\n");
    show(&mut db, "without R1 (step-by-step navigation)", RuleSet::all_except(1), path);
    show(&mut db, "with R1+R2 (single τ, predicate pushed down)", RuleSet::all(), path);

    // The physical pipeline before and after execution: estimates come from
    // the cost model at compile time; actuals accumulate in the cached
    // plan's shared operator counters as queries run.
    let filtered = "for $b in doc()/bib/book where $b/price > 50 \
                    order by $b/title return <hit>{$b/title}</hit>";
    println!("query: {filtered}\n");
    show(&mut db, "physical pipeline, before execution (actual 0 rows)", RuleSet::all(), filtered);
    db.query("bib", filtered).unwrap();
    show(&mut db, "after one execution (actuals filled in)", RuleSet::all(), filtered);
}
