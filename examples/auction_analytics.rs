//! Auction analytics over an XMark-style document — the workload the
//! paper's intro motivates (large heterogeneous data interchange).
//!
//! Generates a synthetic auction site, then answers analyst questions with
//! FLWOR queries and compares the physical strategies on one of the paths.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use std::time::Instant;
use xqp::{Database, Strategy, SuccinctDoc};
use xqp_exec::Executor;
use xqp_gen::{gen_xmark, XmarkConfig};

fn main() {
    let cfg = XmarkConfig::scale(0.3);
    println!("generating auction site (scale 0.3, seed {}) …", cfg.seed);
    let doc = gen_xmark(&cfg);
    println!(
        "  {} elements, {} people, {} open auctions\n",
        doc.element_count(),
        cfg.people,
        cfg.open_auctions
    );

    let db = Database::new();
    db.load_document("site", &doc).unwrap();
    db.create_index("site").unwrap();

    // Q1: how many items per region?
    for region in ["africa", "asia", "europe"] {
        let q = format!("count(/site/regions/{region}/item)");
        println!("items in {region}: {}", db.query("site", &q).unwrap());
    }

    // Q2: names of people over 60 with an address.
    let seniors = db
        .query(
            "site",
            "for $p in doc()/site/people/person \
             where $p/profile/age > 60 and exists($p/address) \
             return <senior>{$p/name}{$p/address/city}</senior>",
        )
        .unwrap();
    let count = seniors.matches("<senior>").count();
    println!("\nseniors with an address: {count}");

    // Q3: auctions whose current price doubled the initial price.
    let hot = db
        .query(
            "site",
            "count(for $a in doc()/site/open_auctions/open_auction \
             where $a/current > $a/initial * 2 return $a)",
        )
        .unwrap();
    println!("auctions with current > 2×initial: {hot}");

    // Q4: average closing price, and the most expensive sale.
    let avg = db.query("site", "avg(doc()//closed_auction/price)").unwrap();
    let max = db.query("site", "max(doc()//closed_auction/price)").unwrap();
    println!("closed auctions: avg price {avg}, max price {max}");

    // --- strategy shoot-out on one twig query ---------------------------------
    let sdoc = SuccinctDoc::from_document(&doc);
    let path = "//open_auction[bidder/increase > 20]/reserve";
    println!("\nstrategy comparison for `{path}`:");
    for strat in [Strategy::NoK, Strategy::TwigStack, Strategy::BinaryJoin, Strategy::Naive] {
        let ex = Executor::new(&sdoc).with_strategy(strat);
        let t = Instant::now();
        let hits = ex.eval_path_str(path).unwrap();
        let dt = t.elapsed();
        let c = ex.counters();
        println!(
            "  {:<11} {:>4} hits  {:>9.2?}  visits={:<8} stream={:<8} joins={}",
            strat.name(),
            hits.len(),
            dt,
            c.nodes_visited,
            c.stream_items,
            c.structural_joins
        );
    }
}
