//! Root re-export shim; the real API lives in the workspace crates.
pub use xqp as engine;
