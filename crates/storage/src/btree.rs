//! A from-scratch, in-memory B+-tree.
//!
//! The paper calls for "content-based indexes (such as B+ trees …) created
//! only on the content information" (§4.2). This is that index structure:
//! fixed-fanout pages in a node arena, values only in leaves, leaves chained
//! for range scans. Keys are duplicated per distinct value list (a multimap:
//! one key maps to a posting list of values), matching secondary-index use.
//!
//! Deletion is *lazy* (values are removed, pages may go underfull; an empty
//! root collapses) — the same strategy production B-trees such as
//! PostgreSQL's use, and sufficient because the engine rebuilds indexes on
//! bulk updates.

use std::fmt::Debug;
use std::ops::Bound;

/// Maximum keys per page. 2·ORDER keys force a split.
const ORDER: usize = 16;

#[derive(Debug, Clone)]
enum Page<K, V> {
    Internal { keys: Vec<K>, children: Vec<usize> },
    Leaf { keys: Vec<K>, postings: Vec<Vec<V>>, next: Option<usize> },
}

/// A B+-tree multimap from `K` to posting lists of `V`.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    pages: Vec<Page<K, V>>,
    root: usize,
    /// Number of stored values (not distinct keys).
    len: usize,
}

impl<K: Ord + Clone + Debug, V: Clone + PartialEq> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V: Clone + PartialEq> BPlusTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            pages: vec![Page::Leaf { keys: Vec::new(), postings: Vec::new(), next: None }],
            root: 0,
            len: 0,
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut p = self.root;
        while let Page::Internal { children, .. } = &self.pages[p] {
            p = children[0];
            h += 1;
        }
        h
    }

    /// Insert one value under `key`.
    pub fn insert(&mut self, key: K, value: V) {
        self.len += 1;
        if let Some((sep, right)) = self.insert_into(self.root, key, value) {
            let old_root = self.root;
            self.pages.push(Page::Internal { keys: vec![sep], children: vec![old_root, right] });
            self.root = self.pages.len() - 1;
        }
    }

    /// Recursive insert; returns `(separator, new_right_page)` on split.
    fn insert_into(&mut self, page: usize, key: K, value: V) -> Option<(K, usize)> {
        match &mut self.pages[page] {
            Page::Leaf { keys, postings, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    postings[i].push(value);
                    None
                }
                Err(i) => {
                    keys.insert(i, key);
                    postings.insert(i, vec![value]);
                    if keys.len() > 2 * ORDER {
                        Some(self.split_leaf(page))
                    } else {
                        None
                    }
                }
            },
            Page::Internal { keys, children } => {
                // Equal keys descend right so they land after the separator.
                let i = keys.partition_point(|k| *k <= key);
                let child = children[i];
                let split = self.insert_into(child, key, value)?;
                let (sep, right) = split;
                if let Page::Internal { keys, children } = &mut self.pages[page] {
                    let i = keys.partition_point(|k| *k <= sep);
                    keys.insert(i, sep);
                    children.insert(i + 1, right);
                    if keys.len() > 2 * ORDER {
                        return Some(self.split_internal(page));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, page: usize) -> (K, usize) {
        let (rk, rp, old_next) = match &mut self.pages[page] {
            Page::Leaf { keys, postings, next } => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), postings.split_off(mid), *next)
            }
            _ => unreachable!("split_leaf on internal page"),
        };
        let sep = rk[0].clone();
        self.pages.push(Page::Leaf { keys: rk, postings: rp, next: old_next });
        let right = self.pages.len() - 1;
        if let Page::Leaf { next, .. } = &mut self.pages[page] {
            *next = Some(right);
        }
        (sep, right)
    }

    fn split_internal(&mut self, page: usize) -> (K, usize) {
        let (sep, rk, rc) = match &mut self.pages[page] {
            Page::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let sep = keys[mid].clone();
                let rk = keys.split_off(mid + 1);
                keys.pop(); // the separator moves up
                let rc = children.split_off(mid + 1);
                (sep, rk, rc)
            }
            _ => unreachable!("split_internal on leaf page"),
        };
        self.pages.push(Page::Internal { keys: rk, children: rc });
        (sep, self.pages.len() - 1)
    }

    fn leaf_for(&self, key: &K) -> usize {
        let mut p = self.root;
        loop {
            match &self.pages[p] {
                Page::Internal { keys, children } => {
                    let i = keys.partition_point(|k| k <= key);
                    p = children[i];
                }
                Page::Leaf { .. } => return p,
            }
        }
    }

    /// The posting list for `key` (empty slice if absent).
    pub fn get(&self, key: &K) -> &[V] {
        let leaf = self.leaf_for(key);
        match &self.pages[leaf] {
            Page::Leaf { keys, postings, .. } => match keys.binary_search(key) {
                Ok(i) => &postings[i],
                Err(_) => &[],
            },
            _ => unreachable!("leaf_for returned internal page"),
        }
    }

    /// True if any value is stored under `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        !self.get(key).is_empty()
    }

    /// Iterate `(key, posting)` pairs with keys in the given bounds,
    /// ascending.
    pub fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> RangeIter<'_, K, V> {
        // Find the starting leaf and slot.
        let (mut leaf, mut slot) = match lo {
            Bound::Unbounded => (self.leftmost_leaf(), 0),
            Bound::Included(k) | Bound::Excluded(k) => {
                let l = self.leaf_for(k);
                let s = match &self.pages[l] {
                    Page::Leaf { keys, .. } => match (keys.binary_search(k), lo) {
                        (Ok(i), Bound::Included(_)) => i,
                        (Ok(i), _) => i + 1,
                        (Err(i), _) => i,
                    },
                    _ => unreachable!(),
                };
                (l, s)
            }
        };
        // Normalize: if slot runs off the leaf, advance.
        loop {
            match &self.pages[leaf] {
                Page::Leaf { keys, next: Some(n), .. } if slot >= keys.len() => {
                    leaf = *n;
                    slot = 0;
                }
                _ => break,
            }
        }
        RangeIter { tree: self, leaf, slot, hi: clone_bound(hi), done: false }
    }

    /// Iterate all `(key, posting)` pairs ascending.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    fn leftmost_leaf(&self) -> usize {
        let mut p = self.root;
        while let Page::Internal { children, .. } = &self.pages[p] {
            p = children[0];
        }
        p
    }

    /// Remove every value equal to `value` under `key`. Returns how many
    /// were removed. Lazy: pages are not merged.
    pub fn remove_value(&mut self, key: &K, value: &V) -> usize {
        let leaf = self.leaf_for(key);
        let removed = match &mut self.pages[leaf] {
            Page::Leaf { keys, postings, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    let before = postings[i].len();
                    postings[i].retain(|v| v != value);
                    let removed = before - postings[i].len();
                    if postings[i].is_empty() {
                        postings.remove(i);
                        keys.remove(i);
                    }
                    removed
                }
                Err(_) => 0,
            },
            _ => unreachable!(),
        };
        self.len -= removed;
        removed
    }

    /// Remove the whole posting list of `key`; returns it if present.
    pub fn remove_key(&mut self, key: &K) -> Option<Vec<V>> {
        let leaf = self.leaf_for(key);
        match &mut self.pages[leaf] {
            Page::Leaf { keys, postings, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    let vs = postings.remove(i);
                    self.len -= vs.len();
                    Some(vs)
                }
                Err(_) => None,
            },
            _ => unreachable!(),
        }
    }

    /// Approximate heap bytes (for storage accounting).
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.pages.capacity() * std::mem::size_of::<Page<K, V>>();
        for p in &self.pages {
            match p {
                Page::Internal { keys, children } => {
                    total += keys.capacity() * std::mem::size_of::<K>()
                        + children.capacity() * std::mem::size_of::<usize>();
                }
                Page::Leaf { keys, postings, .. } => {
                    total += keys.capacity() * std::mem::size_of::<K>();
                    for pl in postings {
                        total += pl.capacity() * std::mem::size_of::<V>();
                    }
                }
            }
        }
        total
    }
}

fn clone_bound<K: Clone>(b: Bound<&K>) -> Bound<K> {
    match b {
        Bound::Included(k) => Bound::Included(k.clone()),
        Bound::Excluded(k) => Bound::Excluded(k.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Ascending iterator over `(key, posting-list)` pairs.
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: usize,
    slot: usize,
    hi: Bound<K>,
    done: bool,
}

impl<'a, K: Ord + Clone + Debug, V: Clone + PartialEq> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a [V]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match &self.tree.pages[self.leaf] {
                Page::Leaf { keys, postings, next } => {
                    if self.slot < keys.len() {
                        let k = &keys[self.slot];
                        let in_range = match &self.hi {
                            Bound::Unbounded => true,
                            Bound::Included(h) => k <= h,
                            Bound::Excluded(h) => k < h,
                        };
                        if !in_range {
                            self.done = true;
                            return None;
                        }
                        let item = (k, postings[self.slot].as_slice());
                        self.slot += 1;
                        return Some(item);
                    }
                    match next {
                        Some(n) => {
                            self.leaf = *n;
                            self.slot = 0;
                        }
                        None => {
                            self.done = true;
                            return None;
                        }
                    }
                }
                _ => unreachable!("range iterator on internal page"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::ops::Bound::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&5), &[]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_and_get_small() {
        let mut t = BPlusTree::new();
        t.insert(3, "c");
        t.insert(1, "a");
        t.insert(2, "b");
        assert_eq!(t.get(&1), &["a"]);
        assert_eq!(t.get(&2), &["b"]);
        assert_eq!(t.get(&3), &["c"]);
        assert_eq!(t.get(&4), &[] as &[&str]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_keys_accumulate_postings() {
        let mut t = BPlusTree::new();
        t.insert("k", 1);
        t.insert("k", 2);
        t.insert("k", 3);
        assert_eq!(t.get(&"k"), &[1, 2, 3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BPlusTree::new();
        let n = 10_000i64;
        for i in 0..n {
            // Insertion order that is neither sorted nor reverse-sorted.
            let k = (i * 7919) % n;
            t.insert(k, k * 2);
        }
        assert!(t.height() >= 3, "height {} should reflect splits", t.height());
        for k in 0..n {
            assert_eq!(t.get(&k), &[k * 2], "key {k}");
        }
    }

    #[test]
    fn sorted_insertion_order() {
        let mut t = BPlusTree::new();
        for i in 0..2000 {
            t.insert(i, i);
        }
        let collected: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_insertion_order() {
        let mut t = BPlusTree::new();
        for i in (0..2000).rev() {
            t.insert(i, ());
        }
        let collected: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(i, ());
        }
        let keys = |lo, hi| t.range(lo, hi).map(|(k, _)| *k).collect::<Vec<i32>>();
        assert_eq!(keys(Included(&10), Included(&13)), [10, 11, 12, 13]);
        assert_eq!(keys(Excluded(&10), Excluded(&13)), [11, 12]);
        assert_eq!(keys(Included(&97), Unbounded), [97, 98, 99]);
        assert_eq!(keys(Unbounded, Excluded(&3)), [0, 1, 2]);
        assert_eq!(keys(Included(&200), Unbounded), Vec::<i32>::new());
        assert_eq!(keys(Included(&50), Included(&50)), [50]);
    }

    #[test]
    fn range_on_missing_keys() {
        let mut t = BPlusTree::new();
        for i in (0..100).step_by(10) {
            t.insert(i, ());
        }
        let keys: Vec<i32> = t.range(Included(&15), Included(&45)).map(|(k, _)| *k).collect();
        assert_eq!(keys, [20, 30, 40]);
    }

    #[test]
    fn remove_value_and_key() {
        let mut t = BPlusTree::new();
        t.insert(1, "a");
        t.insert(1, "b");
        t.insert(2, "c");
        assert_eq!(t.remove_value(&1, &"a"), 1);
        assert_eq!(t.get(&1), &["b"]);
        assert_eq!(t.remove_value(&1, &"zz"), 0);
        assert_eq!(t.remove_value(&1, &"b"), 1);
        assert!(!t.contains_key(&1));
        assert_eq!(t.remove_key(&2), Some(vec!["c"]));
        assert_eq!(t.remove_key(&2), None);
        assert!(t.is_empty());
    }

    #[test]
    fn differential_against_std_btreemap() {
        let mut t = BPlusTree::new();
        let mut oracle: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut x = 0x243f6a8885a308d3u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 512;
            let v = x % 1000;
            t.insert(k, v);
            oracle.entry(k).or_default().push(v);
        }
        assert_eq!(t.len(), 5000);
        for (k, vs) in &oracle {
            assert_eq!(t.get(k), vs.as_slice(), "key {k}");
        }
        // Range sweep comparison.
        let got: Vec<(u64, Vec<u64>)> =
            t.range(Included(&100), Excluded(&300)).map(|(k, v)| (*k, v.to_vec())).collect();
        let want: Vec<(u64, Vec<u64>)> =
            oracle.range(100..300).map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn string_keys() {
        let mut t = BPlusTree::new();
        for w in ["pear", "apple", "fig", "banana", "date"] {
            t.insert(w.to_string(), w.len());
        }
        let keys: Vec<String> = t.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, ["apple", "banana", "date", "fig", "pear"]);
        let prefix_b: Vec<String> = t
            .range(Included(&"b".to_string()), Excluded(&"c".to_string()))
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(prefix_b, ["banana"]);
    }

    #[test]
    fn heap_bytes_positive_after_inserts() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        assert!(t.heap_bytes() > 0);
    }
}
