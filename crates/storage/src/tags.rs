//! Tag symbol table.
//!
//! The storage scheme separates "schema information (tree structure
//! consisting of tags)" from content (§4.2). Tags are interned once into a
//! [`TagTable`]; the structure then stores one dense [`TagId`] per node, so
//! tag-name selection (σs) is an integer comparison and per-tag streams for
//! the join baselines are cheap to build.

use std::collections::HashMap;

/// Dense id of an interned tag name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// Reserved id for text nodes (they carry no tag).
    pub const TEXT: TagId = TagId(0);

    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns tag names to dense [`TagId`]s. Id 0 is reserved for text nodes.
#[derive(Debug, Clone)]
pub struct TagTable {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl Default for TagTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TagTable {
    /// A table with only the reserved `#text` entry.
    pub fn new() -> Self {
        let mut t = TagTable { names: Vec::new(), ids: HashMap::new() };
        let text = t.intern("#text");
        debug_assert_eq!(text, TagId::TEXT);
        t
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics on an id not minted by this table.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags (including `#text`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if only the reserved entry exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterate over `(TagId, name)` pairs, skipping the reserved text id.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names.iter().enumerate().skip(1).map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Heap bytes used by the table.
    pub fn heap_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() + std::mem::size_of::<String>()).sum::<usize>()
            + self.ids.len() * (std::mem::size_of::<String>() + std::mem::size_of::<TagId>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagTable::new();
        let a1 = t.intern("book");
        let a2 = t.intern("book");
        assert_eq!(a1, a2);
        assert_eq!(t.name(a1), "book");
    }

    #[test]
    fn text_id_is_reserved() {
        let t = TagTable::new();
        assert_eq!(t.lookup("#text"), Some(TagId::TEXT));
        assert_eq!(t.name(TagId::TEXT), "#text");
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = TagTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 3); // #text, a, b
        assert!(!t.is_empty());
    }

    #[test]
    fn lookup_missing() {
        let t = TagTable::new();
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn iter_skips_text() {
        let mut t = TagTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
