//! Tag symbol table.
//!
//! The storage scheme separates "schema information (tree structure
//! consisting of tags)" from content (§4.2). Tags are interned once into a
//! [`TagTable`]; the structure then stores one dense [`TagId`] per node, so
//! tag-name selection (σs) is an integer comparison and per-tag streams for
//! the join baselines are cheap to build.
//!
//! The per-node id sequence lives in a [`TagVec`], which is either resident
//! (a plain `Vec<TagId>`) or paged — ids fetched on demand from a
//! [`PageFile`](crate::persist::page::PageFile) section through the buffer
//! pool, 1024 ids per 4 KiB page. The symbol table itself is always
//! resident: it is tiny (one entry per distinct tag name).

use crate::buffer::{BufferPool, PageRef, PAGE_BYTES};
use crate::persist::page::PageFile;
use std::collections::HashMap;
use std::sync::Arc;

/// Tag ids per page of the paged backing (4 bytes each).
const IDS_PER_PAGE: usize = PAGE_BYTES / 4;

/// Dense id of an interned tag name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// Reserved id for text nodes (they carry no tag).
    pub const TEXT: TagId = TagId(0);

    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The per-node tag-id sequence: resident or paged behind a buffer pool.
#[derive(Debug, Clone)]
pub struct TagVec {
    backing: TagBacking,
}

#[derive(Debug, Clone)]
enum TagBacking {
    Resident(Vec<TagId>),
    Paged { pool: Arc<BufferPool>, file: Arc<PageFile>, first_page: u64, len: usize },
}

impl Default for TagVec {
    fn default() -> Self {
        TagVec::resident(Vec::new())
    }
}

impl From<Vec<TagId>> for TagVec {
    fn from(v: Vec<TagId>) -> Self {
        TagVec::resident(v)
    }
}

impl TagVec {
    /// Wrap an in-memory id sequence.
    pub fn resident(ids: Vec<TagId>) -> Self {
        TagVec { backing: TagBacking::Resident(ids) }
    }

    /// A sequence of `len` ids stored 1024-per-page starting at `first_page`
    /// of `file`, fetched through `pool`.
    pub(crate) fn paged(
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        first_page: u64,
        len: usize,
    ) -> Self {
        TagVec { backing: TagBacking::Paged { pool, file, first_page, len } }
    }

    /// True if the ids live behind the buffer pool.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, TagBacking::Paged { .. })
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        match &self.backing {
            TagBacking::Resident(v) => v.len(),
            TagBacking::Paged { len, .. } => *len,
        }
    }

    /// True if no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id at `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> TagId {
        match &self.backing {
            TagBacking::Resident(v) => v[i],
            TagBacking::Paged { pool, file, first_page, len } => {
                assert!(i < *len, "tag index {i} out of range ({len})");
                let page = pool.fetch(file, first_page + (i / IDS_PER_PAGE) as u64);
                id_in_page(&page, i % IDS_PER_PAGE)
            }
        }
    }

    /// Iterate the ids in order. Paged backings hold one pinned page at a
    /// time, so a full scan costs one pool fetch per 1024 ids.
    pub fn iter(&self) -> TagIter<'_> {
        TagIter { tags: self, next: 0, cached: None }
    }

    /// Materialize into a `Vec` (the update path splices resident copies).
    pub fn to_vec(&self) -> Vec<TagId> {
        match &self.backing {
            TagBacking::Resident(v) => v.clone(),
            TagBacking::Paged { .. } => self.iter().collect(),
        }
    }

    /// Heap bytes held resident (a paged backing keeps nothing resident).
    pub fn heap_bytes(&self) -> usize {
        match &self.backing {
            TagBacking::Resident(v) => v.len() * std::mem::size_of::<TagId>(),
            TagBacking::Paged { .. } => 0,
        }
    }
}

impl PartialEq for TagVec {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for TagVec {}

fn id_in_page(page: &PageRef, idx: usize) -> TagId {
    let b = &page[idx * 4..idx * 4 + 4];
    TagId(u32::from_le_bytes(b.try_into().unwrap()))
}

/// Iterator over a [`TagVec`], caching the current page across steps.
pub struct TagIter<'a> {
    tags: &'a TagVec,
    next: usize,
    cached: Option<(u64, PageRef)>,
}

impl Iterator for TagIter<'_> {
    type Item = TagId;

    fn next(&mut self) -> Option<TagId> {
        if self.next >= self.tags.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        match &self.tags.backing {
            TagBacking::Resident(v) => Some(v[i]),
            TagBacking::Paged { pool, file, first_page, .. } => {
                let page = first_page + (i / IDS_PER_PAGE) as u64;
                if self.cached.as_ref().map(|(p, _)| *p) != Some(page) {
                    self.cached = Some((page, pool.fetch(file, page)));
                }
                let (_, guard) = self.cached.as_ref().unwrap();
                Some(id_in_page(guard, i % IDS_PER_PAGE))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.tags.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TagIter<'_> {}

/// Interns tag names to dense [`TagId`]s. Id 0 is reserved for text nodes.
#[derive(Debug, Clone)]
pub struct TagTable {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl Default for TagTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TagTable {
    /// A table with only the reserved `#text` entry.
    pub fn new() -> Self {
        let mut t = TagTable { names: Vec::new(), ids: HashMap::new() };
        let text = t.intern("#text");
        debug_assert_eq!(text, TagId::TEXT);
        t
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics on an id not minted by this table.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags (including `#text`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if only the reserved entry exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterate over `(TagId, name)` pairs, skipping the reserved text id.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names.iter().enumerate().skip(1).map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Every name in id order, `#text` included — the serialization order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Heap bytes used by the table.
    pub fn heap_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() + std::mem::size_of::<String>()).sum::<usize>()
            + self.ids.len() * (std::mem::size_of::<String>() + std::mem::size_of::<TagId>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagTable::new();
        let a1 = t.intern("book");
        let a2 = t.intern("book");
        assert_eq!(a1, a2);
        assert_eq!(t.name(a1), "book");
    }

    #[test]
    fn text_id_is_reserved() {
        let t = TagTable::new();
        assert_eq!(t.lookup("#text"), Some(TagId::TEXT));
        assert_eq!(t.name(TagId::TEXT), "#text");
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = TagTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 3); // #text, a, b
        assert!(!t.is_empty());
    }

    #[test]
    fn lookup_missing() {
        let t = TagTable::new();
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn iter_skips_text() {
        let mut t = TagTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
