//! `DocStore` — one document's durable home: a snapshot plus a WAL.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/snapshot.xqp   — last compacted state (see [`super::snapshot`])
//! <dir>/wal.xqp        — logical updates since that snapshot ([`super::wal`])
//! ```
//!
//! Invariants the store maintains:
//!
//! 1. **Recovery equation**: on-disk state = `replay(wal, snapshot)`. Every
//!    acknowledged [`DocStore::log`] is fsynced, so the equation holds after
//!    a crash at any instant (modulo a torn tail, which replay truncates).
//! 2. **Atomic compaction**: [`DocStore::compact`] writes the folded
//!    snapshot (generation G+1) to a temp file, renames it over
//!    `snapshot.xqp`, and only then resets the WAL to G+1. A crash
//!    between the two steps leaves a G+1 snapshot next to a generation-G
//!    WAL whose records are already folded in; replaying them would
//!    double-apply. The generation stamp in both headers detects exactly
//!    this: on open, a WAL whose generation differs from the snapshot's is
//!    discarded, never replayed. The reset itself is two fsync barriers
//!    (truncate under the old generation, then stamp the new one), so no
//!    crash instant can leave a generation-matching header over
//!    pre-compaction records — see [`super::wal::Wal::reset`].

use super::failpoint::{self, IoOp};
use super::format::Result;
use super::snapshot::{read_snapshot, write_snapshot};
use super::wal::{ReplayReport, Wal, WalOp};
use crate::succinct::SuccinctDoc;
use std::fs;
use std::path::{Path, PathBuf};

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.xqp";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.xqp";

/// Monotone persistence-traffic counters, surfaced through
/// `ExecCounters`/`explain` in the engine layers above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Bytes written to disk (snapshots + WAL records) by this handle.
    pub bytes_written: u64,
    /// WAL records replayed when the store was opened.
    pub records_replayed: u64,
    /// Compactions performed by this handle.
    pub compactions: u64,
}

/// A durable store for one document.
#[derive(Debug)]
pub struct DocStore {
    dir: PathBuf,
    wal: Wal,
    generation: u64,
    counters: StoreCounters,
}

impl DocStore {
    /// Initialize `dir` with a snapshot of `doc` and an empty WAL,
    /// creating the directory if needed. Any previous store there is
    /// replaced.
    pub fn create(dir: &Path, doc: &SuccinctDoc) -> Result<DocStore> {
        failpoint::check(IoOp::Create)?;
        fs::create_dir_all(dir)?;
        let written = write_snapshot(&dir.join(SNAPSHOT_FILE), doc, 0)?;
        let wal = Wal::create(&dir.join(WAL_FILE), 0)?;
        let counters =
            StoreCounters { bytes_written: written + wal.len_bytes(), ..StoreCounters::default() };
        Ok(DocStore { dir: dir.to_path_buf(), wal, generation: 0, counters })
    }

    /// Open the store at `dir`: read the snapshot, replay the WAL
    /// (truncating a torn/corrupt tail), and return the recovered document
    /// with the positioned store. A store saved with no WAL file (e.g. a
    /// snapshot copied from elsewhere) gets a fresh, empty log.
    pub fn open(dir: &Path) -> Result<(DocStore, SuccinctDoc, ReplayReport)> {
        let (doc, generation) = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        let (wal, doc, report) = if wal_path.exists() {
            Wal::open_replay(&wal_path, generation, doc)?
        } else {
            (Wal::create(&wal_path, generation)?, doc, ReplayReport::default())
        };
        let counters =
            StoreCounters { records_replayed: report.records_applied, ..StoreCounters::default() };
        Ok((DocStore { dir: dir.to_path_buf(), wal, generation, counters }, doc, report))
    }

    /// Durably log one update (the caller has already applied it in
    /// memory). Fsynced before returning.
    pub fn log(&mut self, op: &WalOp) -> Result<()> {
        let written = self.wal.append(op)?;
        self.counters.bytes_written += written;
        Ok(())
    }

    /// Fold the WAL into a fresh snapshot of `doc` (the current in-memory
    /// state), advancing the generation. Ordering: the generation-G+1
    /// snapshot lands atomically first (write-temp-then-rename); only then
    /// is the WAL reset to G+1. A crash between the two leaves a stale
    /// generation-G WAL beside the G+1 snapshot — `open` detects the
    /// mismatch and discards the log rather than double-applying records
    /// the snapshot already contains.
    pub fn compact(&mut self, doc: &SuccinctDoc) -> Result<()> {
        let next = self.generation + 1;
        let written = write_snapshot(&self.dir.join(SNAPSHOT_FILE), doc, next)?;
        self.wal.reset(next)?;
        self.generation = next;
        self.counters.bytes_written += written;
        self.counters.compactions += 1;
        Ok(())
    }

    /// The store's compaction generation (0 until the first compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records currently in the WAL (pending since the last compaction).
    pub fn wal_records(&self) -> u64 {
        self.wal.next_seq()
    }

    /// WAL file size in bytes (header included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persistence-traffic counters for this handle.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::serialize;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xqp-store-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn as_xml(d: &SuccinctDoc) -> String {
        serialize(&d.to_document())
    }

    #[test]
    fn create_log_open_roundtrip() {
        let dir = tmp("roundtrip");
        let base = SuccinctDoc::parse("<db><u id=\"1\"/></db>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let op = WalOp::Insert { parent: 0, fragment_xml: "<u id=\"2\"/>".into() };
        let live = super::super::wal::apply_op(&base, &op).unwrap();
        store.log(&op).unwrap();
        assert!(store.counters().bytes_written > 0);
        drop(store);

        let (store, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 1);
        assert_eq!(as_xml(&doc), as_xml(&live));
        assert_eq!(store.counters().records_replayed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_and_resets() {
        let dir = tmp("compact");
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let mut live = base;
        for i in 0..10 {
            let op = WalOp::Insert { parent: 0, fragment_xml: format!("<r i=\"{i}\"/>") };
            live = super::super::wal::apply_op(&live, &op).unwrap();
            store.log(&op).unwrap();
        }
        assert_eq!(store.wal_records(), 10);
        store.compact(&live).unwrap();
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.counters().compactions, 1);
        drop(store);

        // Reopen: no replay needed, state identical.
        let (_, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(as_xml(&doc), as_xml(&live));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_without_wal_gets_a_fresh_log() {
        let dir = tmp("nowal");
        let base = SuccinctDoc::parse("<solo/>").unwrap();
        DocStore::create(&dir, &base).unwrap();
        fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let (store, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(as_xml(&doc), "<solo/>");
        assert!(dir.join(WAL_FILE).exists());
        assert_eq!(store.wal_records(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_compaction_crash_is_discarded() {
        let dir = tmp("stale");
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let op = WalOp::Insert { parent: 0, fragment_xml: "<r/>".into() };
        let live = super::super::wal::apply_op(&base, &op).unwrap();
        store.log(&op).unwrap();
        // Simulate the crash window: keep the pre-compaction WAL bytes,
        // compact, then put the stale WAL back.
        let stale_wal = fs::read(dir.join(WAL_FILE)).unwrap();
        store.compact(&live).unwrap();
        drop(store);
        fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();

        let (store, doc, report) = DocStore::open(&dir).unwrap();
        // The record is NOT replayed (the snapshot already contains it).
        assert_eq!(report.records_applied, 0);
        assert!(report.bytes_truncated > 0);
        assert_eq!(as_xml(&doc), as_xml(&live));
        assert_eq!(store.generation(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let dir = tmp("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(DocStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
