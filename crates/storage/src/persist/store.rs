//! `DocStore` — one document's durable home: a state file plus a WAL.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/snapshot.xqp   — last compacted state (see [`super::snapshot`]), or
//! <dir>/pages.xqp      — the same state in page-granular frames
//!                        ([`super::page`]) when the store is paged
//! <dir>/wal.xqp        — logical updates since that state ([`super::wal`])
//! ```
//!
//! A store is either **snapshot-backed** (the whole document re-encoded as
//! one checksummed blob) or **paged** (fixed-size CRC-sealed frames a
//! [`BufferPool`] can fault in on demand, so opening does not require the
//! document to fit in memory). Exactly one state file exists at rest;
//! `open` auto-detects which, and if a crash mid-conversion left both, the
//! one with the **higher generation stamp** wins (ties go to the paged
//! file — conversion writes it at the same generation before removing the
//! snapshot).
//!
//! Invariants the store maintains:
//!
//! 1. **Recovery equation**: on-disk state = `replay(wal, state file)`.
//!    Every acknowledged [`DocStore::log`] / [`DocStore::log_batch`] is
//!    fsynced, so the equation holds after a crash at any instant (modulo
//!    a torn tail, which replay truncates).
//! 2. **Atomic compaction**: [`DocStore::compact`] writes the folded
//!    state (generation G+1) to a temp file, renames it over the state
//!    file, and only then resets the WAL to G+1. A crash
//!    between the two steps leaves a G+1 state next to a generation-G
//!    WAL whose records are already folded in; replaying them would
//!    double-apply. The generation stamp in both headers detects exactly
//!    this: on open, a WAL whose generation differs from the state file's
//!    is discarded, never replayed. The reset itself is two fsync barriers
//!    (truncate under the old generation, then stamp the new one), so no
//!    crash instant can leave a generation-matching header over
//!    pre-compaction records — see [`super::wal::Wal::reset`].
//! 3. **Group commit**: [`DocStore::log_batch`] makes a batch of updates
//!    durable with one write and one fsync. The batch is all-or-nothing:
//!    on failure the WAL rolls back to its pre-batch length, so the caller
//!    never has to guess how much of a batch survived.

use super::failpoint::{self, IoOp};
use super::format::Result;
use super::page::{open_paged, paged_generation, read_paged_resident, write_paged_snapshot};
use super::snapshot::{read_snapshot, snapshot_generation, write_snapshot};
use super::wal::{ReplayReport, Wal, WalOp};
use crate::buffer::BufferPool;
use crate::succinct::SuccinctDoc;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.xqp";
/// Paged state file name inside a store directory.
pub const PAGED_FILE: &str = "pages.xqp";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.xqp";

/// Monotone persistence-traffic counters, surfaced through
/// `ExecCounters`/`explain` in the engine layers above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Bytes written to disk (snapshots + WAL records) by this handle.
    pub bytes_written: u64,
    /// WAL records replayed when the store was opened.
    pub records_replayed: u64,
    /// Compactions performed by this handle.
    pub compactions: u64,
    /// Group commits ([`DocStore::log_batch`] calls that reached the disk).
    pub group_commits: u64,
    /// WAL records written through group commits.
    pub group_records: u64,
    /// Largest single group-commit batch.
    pub group_max_batch: u64,
}

/// A durable store for one document.
#[derive(Debug)]
pub struct DocStore {
    dir: PathBuf,
    wal: Wal,
    generation: u64,
    counters: StoreCounters,
    /// Compactions write page frames instead of a monolithic snapshot.
    paged: bool,
    /// Pool paged reads go through; `None` for snapshot-backed stores and
    /// for paged stores that were opened fully resident.
    pool: Option<Arc<BufferPool>>,
}

/// Remove a stale state file, treating "already gone" as success.
fn remove_stale(path: &Path) -> Result<()> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

impl DocStore {
    /// Initialize `dir` with a snapshot of `doc` and an empty WAL,
    /// creating the directory if needed. Any previous store there is
    /// replaced.
    pub fn create(dir: &Path, doc: &SuccinctDoc) -> Result<DocStore> {
        failpoint::check(IoOp::Create)?;
        fs::create_dir_all(dir)?;
        let written = write_snapshot(&dir.join(SNAPSHOT_FILE), doc, 0)?;
        // A leftover paged file from a replaced store must not outlive the
        // new state (its generation stamp could out-rank ours on open).
        remove_stale(&dir.join(PAGED_FILE))?;
        let wal = Wal::create(&dir.join(WAL_FILE), 0)?;
        let counters =
            StoreCounters { bytes_written: written + wal.len_bytes(), ..StoreCounters::default() };
        Ok(DocStore {
            dir: dir.to_path_buf(),
            wal,
            generation: 0,
            counters,
            paged: false,
            pool: None,
        })
    }

    /// Initialize `dir` as a **paged** store: write `doc` as page frames
    /// and reopen it behind `pool`, returning the store together with the
    /// pool-backed document (structure, tags and content fault in on
    /// demand). Any previous store there is replaced.
    pub fn create_paged(
        dir: &Path,
        doc: &SuccinctDoc,
        pool: &Arc<BufferPool>,
    ) -> Result<(DocStore, SuccinctDoc)> {
        failpoint::check(IoOp::Create)?;
        fs::create_dir_all(dir)?;
        let path = dir.join(PAGED_FILE);
        let written = write_paged_snapshot(&path, doc, 0)?;
        remove_stale(&dir.join(SNAPSHOT_FILE))?;
        let (paged_doc, _generation) = open_paged(&path, pool)?;
        let wal = Wal::create(&dir.join(WAL_FILE), 0)?;
        let counters =
            StoreCounters { bytes_written: written + wal.len_bytes(), ..StoreCounters::default() };
        let store = DocStore {
            dir: dir.to_path_buf(),
            wal,
            generation: 0,
            counters,
            paged: true,
            pool: Some(Arc::clone(pool)),
        };
        Ok((store, paged_doc))
    }

    /// Open the store at `dir`: read the state file (snapshot or paged,
    /// auto-detected), replay the WAL (truncating a torn/corrupt tail),
    /// and return the recovered document with the positioned store. A
    /// store saved with no WAL file (e.g. a snapshot copied from
    /// elsewhere) gets a fresh, empty log. Paged state is loaded fully
    /// resident — use [`DocStore::open_with_pool`] to serve it through a
    /// buffer pool instead.
    pub fn open(dir: &Path) -> Result<(DocStore, SuccinctDoc, ReplayReport)> {
        Self::open_impl(dir, None)
    }

    /// [`DocStore::open`], but paged state stays on disk and is served
    /// through `pool` (documents larger than memory open fine). A
    /// snapshot-backed store still loads resident, but flips to the paged
    /// format at its next compaction.
    pub fn open_with_pool(
        dir: &Path,
        pool: &Arc<BufferPool>,
    ) -> Result<(DocStore, SuccinctDoc, ReplayReport)> {
        Self::open_impl(dir, Some(pool))
    }

    fn open_impl(
        dir: &Path,
        pool: Option<&Arc<BufferPool>>,
    ) -> Result<(DocStore, SuccinctDoc, ReplayReport)> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        let paged_path = dir.join(PAGED_FILE);
        // Pick the state file. Both existing means a crash interrupted a
        // format conversion: the higher generation is the newer state
        // (ties go to the paged file — conversion writes it at the same
        // generation before removing the snapshot).
        let use_paged = match (snap_path.exists(), paged_path.exists()) {
            (true, true) => paged_generation(&paged_path)? >= snapshot_generation(&snap_path)?,
            (_, paged) => paged,
        };
        let (doc, generation) = if use_paged {
            match pool {
                Some(pool) => open_paged(&paged_path, pool)?,
                None => read_paged_resident(&paged_path)?,
            }
        } else {
            read_snapshot(&snap_path)?
        };
        // Finish an interrupted conversion: the loser's records are folded
        // into (or superseded by) the winner.
        if snap_path.exists() && paged_path.exists() {
            let _ = fs::remove_file(if use_paged { &snap_path } else { &paged_path });
        }
        let wal_path = dir.join(WAL_FILE);
        let (wal, doc, report) = if wal_path.exists() {
            Wal::open_replay(&wal_path, generation, doc)?
        } else {
            (Wal::create(&wal_path, generation)?, doc, ReplayReport::default())
        };
        let counters =
            StoreCounters { records_replayed: report.records_applied, ..StoreCounters::default() };
        let store = DocStore {
            dir: dir.to_path_buf(),
            wal,
            generation,
            counters,
            paged: use_paged || pool.is_some(),
            pool: pool.map(Arc::clone),
        };
        Ok((store, doc, report))
    }

    /// Durably log one update (the caller has already applied it in
    /// memory). Fsynced before returning.
    pub fn log(&mut self, op: &WalOp) -> Result<()> {
        let written = self.wal.append(op)?;
        self.counters.bytes_written += written;
        Ok(())
    }

    /// Group-commit a batch of updates: every record in `ops` becomes
    /// durable with **one** write and **one** fsync (see
    /// [`super::wal::Wal::append_batch`]). All-or-nothing: on error none
    /// of the batch is durable and the WAL is back at its pre-batch
    /// length. An empty batch is a no-op, not an fsync.
    pub fn log_batch(&mut self, ops: &[WalOp]) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let written = self.wal.append_batch(ops)?;
        self.counters.bytes_written += written;
        self.counters.group_commits += 1;
        self.counters.group_records += ops.len() as u64;
        self.counters.group_max_batch = self.counters.group_max_batch.max(ops.len() as u64);
        Ok(())
    }

    /// Fold the WAL into a fresh state file for `doc` (the current
    /// in-memory state), advancing the generation. Ordering: the
    /// generation-G+1 state lands atomically first
    /// (write-temp-then-rename); only then is the WAL reset to G+1. A
    /// crash between the two leaves a stale generation-G WAL beside the
    /// G+1 state — `open` detects the mismatch and discards the log rather
    /// than double-applying records the state already contains. Paged
    /// stores write page frames (streaming — `doc` may itself be paged);
    /// a snapshot-backed store that was opened with a pool converts to the
    /// paged format here.
    pub fn compact(&mut self, doc: &SuccinctDoc) -> Result<()> {
        let next = self.generation + 1;
        let written = if self.paged {
            let written = write_paged_snapshot(&self.dir.join(PAGED_FILE), doc, next)?;
            // Completes a snapshot→paged conversion; the paged file
            // out-ranks the stale snapshot on open either way.
            remove_stale(&self.dir.join(SNAPSHOT_FILE))?;
            written
        } else {
            write_snapshot(&self.dir.join(SNAPSHOT_FILE), doc, next)?
        };
        self.wal.reset(next)?;
        self.generation = next;
        self.counters.bytes_written += written;
        self.counters.compactions += 1;
        Ok(())
    }

    /// Reopen the current paged state file behind the store's pool: the
    /// returned document reads through the pool instead of whatever the
    /// caller currently holds resident. `None` for snapshot-backed stores,
    /// stores without a pool, and paged stores whose WAL holds records
    /// (the state file alone is then behind the acknowledged state).
    pub fn reopen_paged(&self) -> Result<Option<SuccinctDoc>> {
        let Some(pool) = &self.pool else { return Ok(None) };
        if !self.paged || self.wal.next_seq() != 0 {
            return Ok(None);
        }
        let (doc, _generation) = open_paged(&self.dir.join(PAGED_FILE), pool)?;
        Ok(Some(doc))
    }

    /// Whether compactions write the paged format.
    pub fn is_paged(&self) -> bool {
        self.paged
    }

    /// The buffer pool paged reads go through, if any.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// The store's compaction generation (0 until the first compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records currently in the WAL (pending since the last compaction).
    pub fn wal_records(&self) -> u64 {
        self.wal.next_seq()
    }

    /// WAL file size in bytes (header included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persistence-traffic counters for this handle.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::serialize;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xqp-store-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn as_xml(d: &SuccinctDoc) -> String {
        serialize(&d.to_document())
    }

    #[test]
    fn create_log_open_roundtrip() {
        let dir = tmp("roundtrip");
        let base = SuccinctDoc::parse("<db><u id=\"1\"/></db>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let op = WalOp::Insert { parent: 0, fragment_xml: "<u id=\"2\"/>".into() };
        let live = super::super::wal::apply_op(&base, &op).unwrap();
        store.log(&op).unwrap();
        assert!(store.counters().bytes_written > 0);
        drop(store);

        let (store, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 1);
        assert_eq!(as_xml(&doc), as_xml(&live));
        assert_eq!(store.counters().records_replayed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_and_resets() {
        let dir = tmp("compact");
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let mut live = base;
        for i in 0..10 {
            let op = WalOp::Insert { parent: 0, fragment_xml: format!("<r i=\"{i}\"/>") };
            live = super::super::wal::apply_op(&live, &op).unwrap();
            store.log(&op).unwrap();
        }
        assert_eq!(store.wal_records(), 10);
        store.compact(&live).unwrap();
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.counters().compactions, 1);
        drop(store);

        // Reopen: no replay needed, state identical.
        let (_, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(as_xml(&doc), as_xml(&live));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_without_wal_gets_a_fresh_log() {
        let dir = tmp("nowal");
        let base = SuccinctDoc::parse("<solo/>").unwrap();
        DocStore::create(&dir, &base).unwrap();
        fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let (store, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(as_xml(&doc), "<solo/>");
        assert!(dir.join(WAL_FILE).exists());
        assert_eq!(store.wal_records(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_compaction_crash_is_discarded() {
        let dir = tmp("stale");
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let op = WalOp::Insert { parent: 0, fragment_xml: "<r/>".into() };
        let live = super::super::wal::apply_op(&base, &op).unwrap();
        store.log(&op).unwrap();
        // Simulate the crash window: keep the pre-compaction WAL bytes,
        // compact, then put the stale WAL back.
        let stale_wal = fs::read(dir.join(WAL_FILE)).unwrap();
        store.compact(&live).unwrap();
        drop(store);
        fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();

        let (store, doc, report) = DocStore::open(&dir).unwrap();
        // The record is NOT replayed (the snapshot already contains it).
        assert_eq!(report.records_applied, 0);
        assert!(report.bytes_truncated > 0);
        assert_eq!(as_xml(&doc), as_xml(&live));
        assert_eq!(store.generation(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let dir = tmp("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(DocStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_batch_counts_group_commits() {
        let dir = tmp("batch");
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let mut store = DocStore::create(&dir, &base).unwrap();
        let ops: Vec<WalOp> = (0..3)
            .map(|i| WalOp::Insert { parent: 0, fragment_xml: format!("<r i=\"{i}\"/>") })
            .collect();
        let mut live = base;
        for op in &ops {
            live = super::super::wal::apply_op(&live, op).unwrap();
        }
        store.log_batch(&ops).unwrap();
        store.log_batch(&[]).unwrap(); // no-op, not a commit
        store.log_batch(&ops[..1]).unwrap();
        live = super::super::wal::apply_op(&live, &ops[0]).unwrap();
        let c = store.counters();
        assert_eq!(c.group_commits, 2);
        assert_eq!(c.group_records, 4);
        assert_eq!(c.group_max_batch, 3);
        assert_eq!(store.wal_records(), 4);
        drop(store);

        let (_, doc, report) = DocStore::open(&dir).unwrap();
        assert_eq!(report.records_applied, 4);
        assert_eq!(as_xml(&doc), as_xml(&live));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_create_log_open_roundtrip() {
        let dir = tmp("paged-roundtrip");
        let pool = crate::buffer::BufferPool::new(4);
        let base = SuccinctDoc::parse("<db><u id=\"1\">alpha</u></db>").unwrap();
        let (mut store, served) = DocStore::create_paged(&dir, &base, &pool).unwrap();
        assert!(store.is_paged());
        assert!(served.is_paged());
        assert_eq!(as_xml(&served), as_xml(&base));
        assert!(dir.join(PAGED_FILE).exists());
        assert!(!dir.join(SNAPSHOT_FILE).exists());

        let op = WalOp::Insert { parent: 0, fragment_xml: "<u id=\"2\"/>".into() };
        let live = super::super::wal::apply_op(&base, &op).unwrap();
        store.log(&op).unwrap();
        drop(store);

        // Reopen behind a pool: the paged file is detected, the WAL replays.
        let (store, doc, report) = DocStore::open_with_pool(&dir, &pool).unwrap();
        assert!(store.is_paged());
        assert_eq!(report.records_applied, 1);
        assert_eq!(as_xml(&doc), as_xml(&live));

        // Reopen without a pool: same state, fully resident.
        let (store, doc, _) = DocStore::open(&dir).unwrap();
        assert!(store.is_paged(), "paged stores keep their format without a pool");
        assert!(!doc.is_paged());
        assert_eq!(as_xml(&doc), as_xml(&live));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_compaction_keeps_the_paged_format() {
        let dir = tmp("paged-compact");
        let pool = crate::buffer::BufferPool::new(4);
        let base = SuccinctDoc::parse("<db/>").unwrap();
        let (mut store, _served) = DocStore::create_paged(&dir, &base, &pool).unwrap();
        let mut live = base;
        for i in 0..5 {
            let op = WalOp::Insert { parent: 0, fragment_xml: format!("<r i=\"{i}\"/>") };
            live = super::super::wal::apply_op(&live, &op).unwrap();
            store.log(&op).unwrap();
        }
        store.compact(&live).unwrap();
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.generation(), 1);
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        // With an empty WAL the state file alone is current: reopen paged.
        let reloaded = store.reopen_paged().unwrap().expect("paged store with empty WAL");
        assert!(reloaded.is_paged());
        assert_eq!(as_xml(&reloaded), as_xml(&live));
        drop(store);

        let (store, doc, report) = DocStore::open_with_pool(&dir, &pool).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(store.generation(), 1);
        assert!(doc.is_paged());
        assert_eq!(as_xml(&doc), as_xml(&live));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_store_opened_with_pool_converts_on_compaction() {
        let dir = tmp("convert");
        let base = SuccinctDoc::parse("<db><a/></db>").unwrap();
        DocStore::create(&dir, &base).unwrap();

        let pool = crate::buffer::BufferPool::new(4);
        let (mut store, doc, _) = DocStore::open_with_pool(&dir, &pool).unwrap();
        assert!(store.is_paged(), "a pool opts the store into the paged format");
        assert!(!doc.is_paged(), "…but the existing snapshot loads resident");
        store.compact(&doc).unwrap();
        assert!(dir.join(PAGED_FILE).exists());
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        drop(store);

        let (_, back, _) = DocStore::open_with_pool(&dir, &pool).unwrap();
        assert!(back.is_paged());
        assert_eq!(as_xml(&back), as_xml(&base));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_conversion_prefers_the_higher_generation() {
        let dir = tmp("both-files");
        let pool = crate::buffer::BufferPool::new(4);
        let old = SuccinctDoc::parse("<old/>").unwrap();
        let new = SuccinctDoc::parse("<new/>").unwrap();

        // Paged gen 2 beside snapshot gen 1: paged wins.
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir.join(SNAPSHOT_FILE), &old, 1).unwrap();
        write_paged_snapshot(&dir.join(PAGED_FILE), &new, 2).unwrap();
        let (store, doc, _) = DocStore::open_with_pool(&dir, &pool).unwrap();
        assert_eq!(store.generation(), 2);
        assert_eq!(as_xml(&doc), "<new/>");
        assert!(!dir.join(SNAPSHOT_FILE).exists(), "loser is cleaned up");
        drop(store);
        let _ = fs::remove_dir_all(&dir);

        // Snapshot gen 3 beside paged gen 2: the snapshot wins.
        fs::create_dir_all(&dir).unwrap();
        write_paged_snapshot(&dir.join(PAGED_FILE), &old, 2).unwrap();
        write_snapshot(&dir.join(SNAPSHOT_FILE), &new, 3).unwrap();
        let (store, doc, _) = DocStore::open(&dir).unwrap();
        assert_eq!(store.generation(), 3);
        assert_eq!(as_xml(&doc), "<new/>");
        assert!(!dir.join(PAGED_FILE).exists(), "loser is cleaned up");
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }
}
