//! Page-granular snapshot format: fixed-size CRC-sealed frames.
//!
//! The monolithic [`snapshot`](super::snapshot) format serializes a whole
//! document as one CRC-sealed blob — reading any of it means reading all of
//! it. This module stores the same logical content as fixed [`PAGE_BYTES`]
//! frames so a [`BufferPool`](crate::buffer::BufferPool) can keep only a
//! bounded working set resident (ROADMAP item 2: documents bigger than RAM).
//!
//! ## File layout
//!
//! ```text
//! frame k at byte offset k * FRAME_BYTES, FRAME_BYTES = PAGE_BYTES + 4
//! frame  = payload[PAGE_BYTES] ++ crc32(payload ++ k as u64 LE)
//! ```
//!
//! The CRC covers the page *index* as well as the payload, so a frame that
//! is byte-identical but lands at the wrong offset (misdirected write) fails
//! verification. Frame 0 is the meta page:
//!
//! ```text
//! magic "XQPPAGE1" | version u32 | generation u64 | page_count u64
//! node_count u64   | structure_bits u64 | content_count u64
//! 7 x section { first_page u64, byte_len u64 }
//! ```
//!
//! Sections (parentheses words, is-attr words, has-content words, tag ids,
//! content arena bytes, content spans, tag table) are page-aligned, so a
//! u64 word or u32 tag id never straddles a frame. The file is written to a
//! temp sibling, fsynced, then renamed into place — same atomic-publish
//! discipline as the monolithic snapshot, same failpoint instrumentation.
//!
//! ## Fault injection scope
//!
//! Writing and *opening* a page file route every I/O through
//! [`failpoint`](super::failpoint) and return typed errors. Steady-state
//! page fetches through the buffer pool use [`PageFile::read_page_trusted`],
//! which skips fault injection (navigation APIs are infallible) but still
//! verifies the CRC: corruption of a sealed page is detected and fatal.

use super::failpoint::{self, IoOp};
use super::format::{self, PersistError, Reader, Result};
use crate::bitvec::{BitVec, DirectoryBuilder};
use crate::bp::{AggBuilder, Bp, PAGED_BLOCK_BITS};
use crate::buffer::{BufferPool, PAGE_BYTES};
use crate::content::ContentStore;
use crate::succinct::SuccinctDoc;
use crate::tags::{TagId, TagTable, TagVec};
use std::fs::{self, File};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Magic for the paged snapshot format.
pub const PAGED_MAGIC: [u8; 8] = *b"XQPPAGE1";
/// Format version.
pub const PAGED_VERSION: u32 = 1;
/// On-disk frame size: payload plus trailing CRC.
pub const FRAME_BYTES: usize = PAGE_BYTES + 4;

/// Section indexes into [`PageMeta::sections`].
pub const SEC_STRUCTURE: usize = 0;
pub const SEC_IS_ATTR: usize = 1;
pub const SEC_HAS_CONTENT: usize = 2;
pub const SEC_TAGS: usize = 3;
pub const SEC_ARENA: usize = 4;
pub const SEC_SPANS: usize = 5;
pub const SEC_TAG_TABLE: usize = 6;
const SECTION_COUNT: usize = 7;

/// Where one logical section lives in the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Section {
    /// First frame of the section (sections are page-aligned).
    pub first_page: u64,
    /// Meaningful bytes; the last frame is zero-padded past this.
    pub byte_len: u64,
}

/// Decoded meta page (frame 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    pub generation: u64,
    pub page_count: u64,
    pub node_count: u64,
    pub structure_bits: u64,
    pub content_count: u64,
    pub sections: [Section; SECTION_COUNT],
}

static NEXT_FILE_UID: AtomicU64 = AtomicU64::new(1);

/// An open paged snapshot. Holds the file descriptor for the generation it
/// was opened against: even after a newer generation is renamed over the
/// same path, reads through this object keep seeing the old inode (POSIX),
/// which is what makes eviction safe for pinned MVCC snapshots.
pub struct PageFile {
    file: File,
    path: PathBuf,
    uid: u64,
    meta: PageMeta,
    unlink_on_drop: AtomicBool,
    pool: Mutex<Weak<BufferPool>>,
}

impl std::fmt::Debug for PageFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageFile({:?}, uid={}, pages={})", self.path, self.uid, self.meta.page_count)
    }
}

impl PageFile {
    /// Open `path`, read and verify the meta frame. Fault-injected.
    pub fn open(path: &Path) -> Result<PageFile> {
        failpoint::check(IoOp::Open)?;
        let file = File::open(path)?;
        let flen = file.metadata()?.len();
        if flen % FRAME_BYTES as u64 != 0 {
            return Err(PersistError::Format(format!(
                "page file length {flen} is not a whole number of {FRAME_BYTES}-byte frames"
            )));
        }
        let mut pf = PageFile {
            file,
            path: path.to_path_buf(),
            uid: NEXT_FILE_UID.fetch_add(1, Ordering::Relaxed),
            meta: PageMeta {
                generation: 0,
                page_count: flen / FRAME_BYTES as u64,
                node_count: 0,
                structure_bits: 0,
                content_count: 0,
                sections: [Section::default(); SECTION_COUNT],
            },
            unlink_on_drop: AtomicBool::new(false),
            pool: Mutex::new(Weak::new()),
        };
        if pf.meta.page_count == 0 {
            return Err(PersistError::Format("page file has no meta frame".into()));
        }
        let meta_payload = pf.read_page_checked(0)?;
        let meta = decode_meta(&meta_payload)?;
        if meta.page_count != flen / FRAME_BYTES as u64 {
            return Err(PersistError::Format(format!(
                "meta page says {} frames but the file holds {}",
                meta.page_count,
                flen / FRAME_BYTES as u64
            )));
        }
        pf.meta = meta;
        Ok(pf)
    }

    /// Process-unique identity of this open file object; the buffer pool's
    /// frame key. Never reused, so frames of a closed generation can never
    /// be mistaken for frames of a newer one.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Decoded meta page.
    pub fn meta(&self) -> &PageMeta {
        &self.meta
    }

    /// Total frames including the meta frame.
    pub fn page_count(&self) -> u64 {
        self.meta.page_count
    }

    /// Register the pool whose frames should be purged when this file
    /// object drops (dead generations must not squat in the pool).
    pub fn attach_pool(&self, pool: &Arc<BufferPool>) {
        *self.pool.lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(pool);
    }

    /// Delete the underlying file when the last reference drops — used for
    /// spill files backing in-memory paged documents.
    pub fn set_unlink_on_drop(&self) {
        self.unlink_on_drop.store(true, Ordering::Relaxed);
    }

    fn read_frame(&self, page: u64) -> Result<Vec<u8>> {
        if page >= self.meta.page_count {
            return Err(PersistError::Format(format!(
                "page {page} out of range (file has {})",
                self.meta.page_count
            )));
        }
        let mut frame = vec![0u8; FRAME_BYTES];
        self.file.read_exact_at(&mut frame, page * FRAME_BYTES as u64)?;
        let stored = u32::from_le_bytes(frame[PAGE_BYTES..].try_into().unwrap());
        let mut sealed = Vec::with_capacity(PAGE_BYTES + 8);
        sealed.extend_from_slice(&frame[..PAGE_BYTES]);
        sealed.extend_from_slice(&page.to_le_bytes());
        if format::crc32(&sealed) != stored {
            return Err(PersistError::Format(format!(
                "page {page} of {:?} failed its CRC",
                self.path
            )));
        }
        frame.truncate(PAGE_BYTES);
        Ok(frame)
    }

    /// Read one page's payload with fault injection — the open/validate
    /// path, where callers can surface a typed error.
    pub(crate) fn read_page_checked(&self, page: u64) -> Result<Vec<u8>> {
        failpoint::check(IoOp::Read)?;
        self.read_frame(page)
    }

    /// Read one page's payload for the buffer pool. Not fault-injected
    /// (steady-state navigation is infallible by API); CRC is still
    /// verified and a bad page is a panic, not silent corruption.
    pub(crate) fn read_page_trusted(&self, page: u64) -> Vec<u8> {
        self.read_frame(page).unwrap_or_else(|e| {
            panic!("paged storage: unreadable page {page} in {:?}: {e}", self.path)
        })
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).upgrade() {
            pool.purge(self.uid);
        }
        if self.unlink_on_drop.load(Ordering::Relaxed) {
            let _ = fs::remove_file(&self.path);
        }
    }
}

fn decode_meta(payload: &[u8]) -> Result<PageMeta> {
    let mut r = Reader::new(payload);
    r.expect_magic(&PAGED_MAGIC)?;
    let version = r.u32("paged version")?;
    if version != PAGED_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported paged snapshot version {version} (expected {PAGED_VERSION})"
        )));
    }
    let generation = r.u64("generation")?;
    let page_count = r.u64("page count")?;
    let node_count = r.u64("node count")?;
    let structure_bits = r.u64("structure bits")?;
    let content_count = r.u64("content count")?;
    let mut sections = [Section::default(); SECTION_COUNT];
    for (i, s) in sections.iter_mut().enumerate() {
        s.first_page = r.u64(&format!("section {i} first page"))?;
        s.byte_len = r.u64(&format!("section {i} byte length"))?;
        let pages = s.byte_len.div_ceil(PAGE_BYTES as u64);
        if s.byte_len > 0 && (s.first_page == 0 || s.first_page + pages > page_count) {
            return Err(PersistError::Format(format!(
                "section {i} [{}..+{} pages] escapes the file ({page_count} frames)",
                s.first_page, pages
            )));
        }
    }
    Ok(PageMeta { generation, page_count, node_count, structure_bits, content_count, sections })
}

fn encode_meta(meta: &PageMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(&PAGED_MAGIC);
    format::put_u32(&mut out, PAGED_VERSION);
    format::put_u64(&mut out, meta.generation);
    format::put_u64(&mut out, meta.page_count);
    format::put_u64(&mut out, meta.node_count);
    format::put_u64(&mut out, meta.structure_bits);
    format::put_u64(&mut out, meta.content_count);
    for s in &meta.sections {
        format::put_u64(&mut out, s.first_page);
        format::put_u64(&mut out, s.byte_len);
    }
    out
}

// ---- writing ----------------------------------------------------------------

/// Accumulates section bytes and flushes full CRC-sealed frames.
struct FrameSink {
    file: File,
    buf: Vec<u8>,
    next_page: u64,
}

impl FrameSink {
    fn flush_frame(&mut self) -> Result<()> {
        debug_assert!(self.buf.len() >= PAGE_BYTES);
        let mut frame = Vec::with_capacity(FRAME_BYTES);
        frame.extend_from_slice(&self.buf[..PAGE_BYTES]);
        let mut sealed = frame.clone();
        sealed.extend_from_slice(&self.next_page.to_le_bytes());
        frame.extend_from_slice(&format::crc32(&sealed).to_le_bytes());
        failpoint::write_all(&mut self.file, &frame)?;
        self.buf.drain(..PAGE_BYTES);
        self.next_page += 1;
        Ok(())
    }

    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(bytes);
        while self.buf.len() >= PAGE_BYTES {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Zero-pad to the next page boundary (sections are page-aligned).
    fn pad_section(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.buf.resize(PAGE_BYTES, 0);
            self.flush_frame()?;
        }
        Ok(())
    }
}

fn section_pages(byte_len: u64) -> u64 {
    byte_len.div_ceil(PAGE_BYTES as u64)
}

fn words_bytes(bits: usize) -> u64 {
    (bits.div_ceil(64) * 8) as u64
}

fn tag_table_bytes(table: &TagTable) -> u64 {
    4 + table.names().map(|name| 4 + name.len() as u64).sum::<u64>()
}

/// Serialize `doc` into a paged snapshot at `path`, atomically (temp file,
/// fsync, rename, directory fsync). Works for resident *and* paged source
/// documents — sections are streamed, never materialized whole. Returns the
/// bytes written.
pub fn write_paged_snapshot(path: &Path, doc: &SuccinctDoc, generation: u64) -> Result<u64> {
    let bits = doc.bp().bits();
    let node_count = doc.node_count();
    let content = doc.content_store();
    let table = doc.tag_table();

    let byte_lens: [u64; SECTION_COUNT] = [
        words_bytes(bits.len()),
        words_bytes(node_count),
        words_bytes(node_count),
        (node_count * 4) as u64,
        content.arena_len() as u64,
        (content.len() * 8) as u64,
        tag_table_bytes(table),
    ];
    let mut sections = [Section::default(); SECTION_COUNT];
    let mut next = 1u64;
    for (i, &len) in byte_lens.iter().enumerate() {
        sections[i] = Section { first_page: next, byte_len: len };
        next += section_pages(len);
    }
    let meta = PageMeta {
        generation,
        page_count: next,
        node_count: node_count as u64,
        structure_bits: bits.len() as u64,
        content_count: content.len() as u64,
        sections,
    };

    let tmp = path.with_extension("xqp.tmp");
    failpoint::check(IoOp::Create)?;
    let file = File::create(&tmp)?;
    let mut sink = FrameSink { file, buf: Vec::with_capacity(2 * PAGE_BYTES), next_page: 0 };

    // Frame 0: meta.
    sink.push(&encode_meta(&meta))?;
    sink.pad_section()?;
    // Structure, is-attr, has-content words.
    for w in bits.iter_words() {
        sink.push(&w.to_le_bytes())?;
    }
    sink.pad_section()?;
    for w in doc.raw_is_attr().iter_words() {
        sink.push(&w.to_le_bytes())?;
    }
    sink.pad_section()?;
    for w in doc.raw_has_content().iter_words() {
        sink.push(&w.to_le_bytes())?;
    }
    sink.pad_section()?;
    // Tag ids.
    for t in doc.raw_tags().iter() {
        sink.push(&t.0.to_le_bytes())?;
    }
    sink.pad_section()?;
    // Content arena + spans.
    content.for_each_arena_chunk(&mut |chunk| sink.push(chunk))?;
    sink.pad_section()?;
    for (off, len) in content.spans() {
        sink.push(&off.to_le_bytes())?;
        sink.push(&len.to_le_bytes())?;
    }
    sink.pad_section()?;
    // Tag table, in id order.
    let mut tt = Vec::new();
    format::put_u32(&mut tt, table.len() as u32);
    for name in table.names() {
        format::put_str(&mut tt, name);
    }
    sink.push(&tt)?;
    sink.pad_section()?;
    debug_assert!(sink.buf.is_empty());
    debug_assert_eq!(sink.next_page, meta.page_count);

    failpoint::check(IoOp::Fsync)?;
    sink.file.sync_all()?;
    drop(sink);
    failpoint::check(IoOp::Rename)?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(meta.page_count * FRAME_BYTES as u64)
}

// ---- reading ----------------------------------------------------------------

/// Stream a section's meaningful bytes through `f`, one page-sized chunk at
/// a time. Fault-injected (open path).
fn stream_section(
    file: &PageFile,
    sec: usize,
    f: &mut dyn FnMut(&[u8]) -> Result<()>,
) -> Result<()> {
    let s = file.meta().sections[sec];
    let mut remaining = s.byte_len as usize;
    let mut page = s.first_page;
    while remaining > 0 {
        let data = file.read_page_checked(page)?;
        let take = remaining.min(PAGE_BYTES);
        f(&data[..take])?;
        remaining -= take;
        page += 1;
    }
    Ok(())
}

fn collect_section(file: &PageFile, sec: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(file.meta().sections[sec].byte_len as usize);
    stream_section(file, sec, &mut |chunk| {
        out.extend_from_slice(chunk);
        Ok(())
    })?;
    Ok(out)
}

fn le_words(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap()))
}

/// Shared validation + directory build over the structure section. Returns
/// `(super_ranks, ones, leaf aggregates)` for the requested block size.
fn scan_structure(
    file: &PageFile,
    block_bits: usize,
) -> Result<(Vec<u64>, u64, Vec<crate::bp::Agg>)> {
    let len = file.meta().structure_bits as usize;
    let mut dir = DirectoryBuilder::new(len);
    let mut aggs = AggBuilder::new(block_bits, len);
    let mut excess: i64 = 0;
    let mut seen: usize = 0;
    stream_section(file, SEC_STRUCTURE, &mut |chunk| {
        for w in le_words(chunk) {
            let bits_here = (len - seen).min(64);
            if bits_here == 0 {
                break;
            }
            // The writer masks unused tail bits to zero; mask again so a
            // hand-corrupted tail cannot inflate rank counts.
            let w = if bits_here == 64 { w } else { w & ((1u64 << bits_here) - 1) };
            for b in 0..bits_here {
                if w >> b & 1 == 1 {
                    excess += 1;
                } else {
                    excess -= 1;
                }
                if excess < 0 {
                    return Err(PersistError::Format(format!(
                        "structure bit {}: close parenthesis before open",
                        seen + b
                    )));
                }
                if excess == 0 && seen + b + 1 != len {
                    return Err(PersistError::Format(format!(
                        "structure bit {}: parentheses close early (not a single tree)",
                        seen + b
                    )));
                }
            }
            dir.push_word(w, bits_here);
            aggs.push_word(w, bits_here);
            seen += bits_here;
        }
        Ok(())
    })?;
    if seen != len {
        return Err(PersistError::Format(format!(
            "structure section holds {seen} bits, meta says {len}"
        )));
    }
    if len > 0 && excess != 0 {
        return Err(PersistError::Format(format!(
            "structure parentheses are unbalanced (final excess {excess})"
        )));
    }
    let (super_ranks, ones) = dir.finish();
    Ok((super_ranks, ones, aggs.finish()))
}

fn decode_tag_table(bytes: &[u8]) -> Result<TagTable> {
    let mut r = Reader::new(bytes);
    let count = r.u32("tag table count")? as usize;
    let mut table = TagTable::new();
    for i in 0..count {
        let name = r.len_str("tag name")?;
        let id = table.intern(name);
        if id.0 as usize != i {
            return Err(PersistError::Format(format!(
                "tag table entry {i} ({name:?}) is out of order or duplicated"
            )));
        }
    }
    if r.remaining() != 0 {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the tag table",
            r.remaining()
        )));
    }
    Ok(table)
}

fn decode_spans(bytes: &[u8], count: usize, arena_len: u64) -> Result<Vec<(u32, u32)>> {
    if bytes.len() != count * 8 {
        return Err(PersistError::Format(format!(
            "span section holds {} bytes, expected {} for {count} contents",
            bytes.len(),
            count * 8
        )));
    }
    let mut spans = Vec::with_capacity(count);
    for (i, pair) in bytes.chunks_exact(8).enumerate() {
        let off = u32::from_le_bytes(pair[..4].try_into().unwrap());
        let len = u32::from_le_bytes(pair[4..].try_into().unwrap());
        if off as u64 + len as u64 > arena_len {
            return Err(PersistError::Format(format!(
                "content span {i} [{off}..+{len}] escapes the {arena_len}-byte arena"
            )));
        }
        spans.push((off, len));
    }
    Ok(spans)
}

/// Everything both read paths share after the meta page: small resident
/// sections, decoded and validated.
struct CommonParts {
    is_attr: BitVec,
    has_content: BitVec,
    spans: Vec<(u32, u32)>,
    table: TagTable,
}

fn read_common(file: &PageFile) -> Result<CommonParts> {
    let meta = file.meta();
    let n = meta.node_count as usize;
    if meta.structure_bits != 2 * meta.node_count {
        return Err(PersistError::Format(format!(
            "meta: {} structure bits for {} nodes (expected exactly 2 per node)",
            meta.structure_bits, meta.node_count
        )));
    }
    let is_attr_bytes = collect_section(file, SEC_IS_ATTR)?;
    if is_attr_bytes.len() as u64 != words_bytes(n) {
        return Err(PersistError::Format("is-attr section has the wrong length".into()));
    }
    let is_attr = BitVec::from_words(le_words(&is_attr_bytes).collect(), n);
    let has_bytes = collect_section(file, SEC_HAS_CONTENT)?;
    if has_bytes.len() as u64 != words_bytes(n) {
        return Err(PersistError::Format("has-content section has the wrong length".into()));
    }
    let has_content = BitVec::from_words(le_words(&has_bytes).collect(), n);
    if has_content.count_ones() as u64 != meta.content_count {
        return Err(PersistError::Format(format!(
            "meta says {} contents but the has-content bits mark {}",
            meta.content_count,
            has_content.count_ones()
        )));
    }
    let table = decode_tag_table(&collect_section(file, SEC_TAG_TABLE)?)?;
    let spans = decode_spans(
        &collect_section(file, SEC_SPANS)?,
        meta.content_count as usize,
        meta.sections[SEC_ARENA].byte_len,
    )?;
    Ok(CommonParts { is_attr, has_content, spans, table })
}

/// Validate the tag-id section against the table, streaming.
fn check_tags(file: &PageFile, table_len: usize) -> Result<()> {
    let n = file.meta().node_count as usize;
    let bytes_expected = (n * 4) as u64;
    if file.meta().sections[SEC_TAGS].byte_len != bytes_expected {
        return Err(PersistError::Format("tag-id section has the wrong length".into()));
    }
    let mut i = 0usize;
    stream_section(file, SEC_TAGS, &mut |chunk| {
        for c in chunk.chunks_exact(4) {
            let id = u32::from_le_bytes(c.try_into().unwrap());
            if id as usize >= table_len {
                return Err(PersistError::Format(format!(
                    "node {i} has tag id {id}, table holds {table_len}"
                )));
            }
            i += 1;
        }
        Ok(())
    })
}

/// Open a paged snapshot *behind the pool*: raw parentheses words, tag ids
/// and the content arena stay on disk and are pulled through `pool` on
/// demand; only the rank/select and excess directories, spans, flags and
/// tag table are materialized. Returns the document and its generation.
pub fn open_paged(path: &Path, pool: &Arc<BufferPool>) -> Result<(SuccinctDoc, u64)> {
    let (doc, _file, generation) = open_paged_parts(path, pool)?;
    Ok((doc, generation))
}

/// Spill `doc` to `path` as page frames and reopen it behind `pool`, with
/// the file marked unlink-on-drop: once the last component of the returned
/// document releases the backing [`PageFile`], the spill file is removed
/// from disk (and its frames purged from the pool). This is how the
/// database layer serves *non-durable* documents through a bounded pool
/// without keeping them resident.
pub fn spill_paged(path: &Path, doc: &SuccinctDoc, pool: &Arc<BufferPool>) -> Result<SuccinctDoc> {
    write_paged_snapshot(path, doc, 0)?;
    let (spilled, file, _generation) = open_paged_parts(path, pool)?;
    file.set_unlink_on_drop();
    Ok(spilled)
}

fn open_paged_parts(
    path: &Path,
    pool: &Arc<BufferPool>,
) -> Result<(SuccinctDoc, Arc<PageFile>, u64)> {
    let pf = PageFile::open(path)?;
    pf.attach_pool(pool);
    let file = Arc::new(pf);
    let meta = file.meta().clone();
    let common = read_common(&file)?;
    check_tags(&file, common.table.len())?;
    let (super_ranks, ones, leaf_aggs) = scan_structure(&file, PAGED_BLOCK_BITS)?;
    let bits = BitVec::from_paged_parts(
        Arc::clone(pool),
        Arc::clone(&file),
        meta.sections[SEC_STRUCTURE].first_page,
        meta.structure_bits as usize,
        super_ranks,
        ones,
    );
    let bp = Bp::from_built_parts(bits, leaf_aggs, PAGED_BLOCK_BITS);
    let tags = TagVec::paged(
        Arc::clone(pool),
        Arc::clone(&file),
        meta.sections[SEC_TAGS].first_page,
        meta.node_count as usize,
    );
    let content = ContentStore::paged(
        Arc::clone(pool),
        Arc::clone(&file),
        meta.sections[SEC_ARENA].first_page,
        meta.sections[SEC_ARENA].byte_len as usize,
        common.spans,
    );
    let doc = SuccinctDoc::from_paged_parts(
        bp,
        tags,
        common.is_attr,
        common.has_content,
        content,
        common.table,
    );
    Ok((doc, file, meta.generation))
}

/// Read a paged snapshot fully into memory — the no-pool path. Same
/// validation as [`open_paged`] plus a whole-arena UTF-8 check.
pub fn read_paged_resident(path: &Path) -> Result<(SuccinctDoc, u64)> {
    let file = PageFile::open(path)?;
    let meta = file.meta().clone();
    let common = read_common(&file)?;
    check_tags(&file, common.table.len())?;
    // Balance / single-tree validation rides along with the directory scan;
    // the directories themselves are rebuilt by `from_parts` below.
    scan_structure(&file, PAGED_BLOCK_BITS)?;
    let words = le_words(&collect_section(&file, SEC_STRUCTURE)?).collect::<Vec<_>>();
    let bits = BitVec::from_words(words, meta.structure_bits as usize);
    let mut tags = Vec::with_capacity(meta.node_count as usize);
    for c in collect_section(&file, SEC_TAGS)?.chunks_exact(4) {
        tags.push(TagId(u32::from_le_bytes(c.try_into().unwrap())));
    }
    let arena = String::from_utf8(collect_section(&file, SEC_ARENA)?)
        .map_err(|e| PersistError::Format(format!("content arena is not UTF-8: {e}")))?;
    for (i, &(off, len)) in common.spans.iter().enumerate() {
        if !arena.is_char_boundary(off as usize) || !arena.is_char_boundary((off + len) as usize) {
            return Err(PersistError::Format(format!("content span {i} splits a UTF-8 character")));
        }
    }
    let content = ContentStore::from_arena_spans(arena, common.spans);
    let doc = SuccinctDoc::from_parts(
        bits,
        tags,
        common.is_attr,
        common.has_content,
        content,
        common.table,
    );
    Ok((doc, meta.generation))
}

/// Read just the generation stamp of a paged snapshot.
pub fn paged_generation(path: &Path) -> Result<u64> {
    Ok(PageFile::open(path)?.meta().generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::serialize;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "xqp-page-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn big_doc() -> SuccinctDoc {
        let mut xml = String::from("<db>");
        for i in 0..300 {
            xml.push_str(&format!(
                "<item key=\"k{i}\"><name>item number {i}</name><note>pad pad pad {i}</note></item>"
            ));
        }
        xml.push_str("</db>");
        SuccinctDoc::parse(&xml).unwrap()
    }

    #[test]
    fn roundtrip_resident() {
        let dir = tempdir("resident");
        let doc = big_doc();
        let path = dir.join("pages.xqp");
        write_paged_snapshot(&path, &doc, 7).unwrap();
        let (back, generation) = read_paged_resident(&path).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(back.node_count(), doc.node_count());
        assert_eq!(serialize(&back.to_document()), serialize(&doc.to_document()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrip_paged_matches_resident() {
        let dir = tempdir("paged");
        let doc = big_doc();
        let path = dir.join("pages.xqp");
        write_paged_snapshot(&path, &doc, 3).unwrap();
        let pool = BufferPool::new(4);
        let (paged, generation) = open_paged(&path, &pool).unwrap();
        assert_eq!(generation, 3);
        assert!(paged.is_paged());
        assert_eq!(paged.node_count(), doc.node_count());
        // Full serialization exercises navigation, tags and contents
        // through the pool with heavy eviction (4-frame pool).
        assert_eq!(serialize(&paged.to_document()), serialize(&doc.to_document()));
        let stats = pool.stats();
        assert!(stats.evictions > 0, "expected thrash, got {stats:?}");
        assert!(stats.resident <= stats.capacity, "{stats:?}");
        // A paged doc can be re-serialized into a fresh paged snapshot
        // (streaming compaction path).
        let path2 = dir.join("pages2.xqp");
        write_paged_snapshot(&path2, &paged, 4).unwrap();
        let (back, _) = read_paged_resident(&path2).unwrap();
        assert_eq!(serialize(&back.to_document()), serialize(&doc.to_document()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tempdir("corrupt");
        let doc = big_doc();
        let path = dir.join("pages.xqp");
        write_paged_snapshot(&path, &doc, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte in frame 2's payload.
        bytes[2 * FRAME_BYTES + 100] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_paged_resident(&path).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        // Truncation is caught by the frame-size check.
        bytes.truncate(bytes.len() - 10);
        std::fs::write(&path, &bytes).unwrap();
        assert!(PageFile::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swapped_frames_fail_the_position_bound_crc() {
        let dir = tempdir("swap");
        let doc = big_doc();
        let path = dir.join("pages.xqp");
        write_paged_snapshot(&path, &doc, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let (a, b) = (1usize, 2usize);
        let frame_a = bytes[a * FRAME_BYTES..(a + 1) * FRAME_BYTES].to_vec();
        let frame_b = bytes[b * FRAME_BYTES..(b + 1) * FRAME_BYTES].to_vec();
        bytes[a * FRAME_BYTES..(a + 1) * FRAME_BYTES].copy_from_slice(&frame_b);
        bytes[b * FRAME_BYTES..(b + 1) * FRAME_BYTES].copy_from_slice(&frame_a);
        std::fs::write(&path, &bytes).unwrap();
        // Each frame's CRC still matches its payload, but not its position.
        assert!(read_paged_resident(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
