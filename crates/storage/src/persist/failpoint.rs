//! Thread-local I/O failpoints for torture-testing the persist layer.
//!
//! Every file operation the durable store performs (`create`, `open`,
//! `read`, `write`, `fsync`, `rename`, `truncate`, `seek`) routes through
//! [`check`] (or the [`write_all`] helper, which can also simulate short
//! writes). In production the check is one thread-local `Cell` read —
//! negligible next to the syscall it guards. Under a torture run the policy
//! can:
//!
//! * **count** the reachable I/O points of a scenario ([`arm_count`] +
//!   [`ops_seen`]), then
//! * **fail the Nth operation** ([`arm_fail_nth`]) with a chosen
//!   [`FaultKind`], in one of two flavors:
//!   - *soft*: only the Nth operation fails; subsequent I/O succeeds. The
//!     process lives on and error-path cleanup runs — this models a
//!     transient fault (EIO, disk-full) the caller must absorb.
//!   - *crash*: the Nth operation fails and **every operation after it**
//!     fails too (the policy parks in `Dead` until [`disarm`]) — this models
//!     a power cut: nothing after the fault reaches the disk, including
//!     cleanup writes.
//!
//! State is **thread-local**, not process-global: all persist I/O is
//! synchronous on the caller's thread, so per-thread arming keeps parallel
//! test binaries (`cargo test`'s default) from injecting faults into each
//! other's stores.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, Write as _};

/// The persist-layer operations a failpoint can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// File or directory creation (`File::create`, `create_dir_all`,
    /// truncating `OpenOptions` opens).
    Create,
    /// Opening an existing file.
    Open,
    /// Whole-file or streaming reads.
    Read,
    /// Data writes (see [`write_all`] for short-write simulation).
    Write,
    /// `sync_all` durability barriers.
    Fsync,
    /// Atomic `rename` publication.
    Rename,
    /// `set_len` truncation.
    Truncate,
    /// Cursor repositioning.
    Seek,
}

impl IoOp {
    /// Human-readable operation name (for injected error messages).
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::Truncate => "truncate",
            IoOp::Seek => "seek",
        }
    }
}

/// What the armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (`EIO`-like).
    Error,
    /// "No space left on device".
    DiskFull,
    /// A short write: half the buffer reaches the file, then the operation
    /// errors. Only [`write_all`] can realize the partial data; at a plain
    /// [`check`] site this degrades to [`FaultKind::Error`].
    ShortWrite,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Production: every operation passes.
    Disarmed,
    /// Count operations without failing any.
    Counting,
    /// Fail the operation once `remaining` hits zero.
    Armed { remaining: u64, kind: FaultKind, crash: bool },
    /// Post-crash: every operation fails until [`disarm`].
    Dead,
}

thread_local! {
    static MODE: Cell<Mode> = const { Cell::new(Mode::Disarmed) };
    static OPS: Cell<u64> = const { Cell::new(0) };
}

/// Return to production behavior (and reset the op counter).
pub fn disarm() {
    MODE.with(|m| m.set(Mode::Disarmed));
    OPS.with(|o| o.set(0));
}

/// Count reachable operations without failing any; read with [`ops_seen`].
pub fn arm_count() {
    MODE.with(|m| m.set(Mode::Counting));
    OPS.with(|o| o.set(0));
}

/// Fail the `n`-th operation (0-based) from now with `kind`. With
/// `crash = true` every later operation fails as well, simulating a power
/// cut with no cleanup I/O.
pub fn arm_fail_nth(n: u64, kind: FaultKind, crash: bool) {
    MODE.with(|m| m.set(Mode::Armed { remaining: n, kind, crash }));
    OPS.with(|o| o.set(0));
}

/// Operations observed since the last arm/disarm.
pub fn ops_seen() -> u64 {
    OPS.with(Cell::get)
}

/// Is this thread currently in the post-crash `Dead` state?
pub fn is_dead() -> bool {
    MODE.with(|m| matches!(m.get(), Mode::Dead))
}

/// Is a fault still pending (armed but not yet fired)? After the armed
/// operation trips, this flips to `false` (soft faults park in `Disarmed`,
/// crashes in `Dead`) — torture harnesses use the transition to learn
/// *which* logical operation absorbed the fault.
pub fn is_armed() -> bool {
    MODE.with(|m| matches!(m.get(), Mode::Armed { .. }))
}

fn injected(op: IoOp, kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::DiskFull => io::Error::other(format!(
            "injected fault: {} failed, no space left on device",
            op.name()
        )),
        _ => io::Error::other(format!("injected fault: {} failed", op.name())),
    }
}

/// One decision: pass, or trip with a kind.
fn consume(_op: IoOp) -> Result<(), FaultKind> {
    OPS.with(|o| o.set(o.get() + 1));
    MODE.with(|m| match m.get() {
        Mode::Disarmed | Mode::Counting => Ok(()),
        Mode::Dead => Err(FaultKind::Error),
        Mode::Armed { remaining: 0, kind, crash } => {
            m.set(if crash { Mode::Dead } else { Mode::Disarmed });
            Err(kind)
        }
        Mode::Armed { remaining, kind, crash } => {
            m.set(Mode::Armed { remaining: remaining - 1, kind, crash });
            Ok(())
        }
    })
}

/// Gate one operation: `Ok(())` to proceed, or the injected error.
pub fn check(op: IoOp) -> io::Result<()> {
    match consume(op) {
        Ok(()) => Ok(()),
        Err(kind) => Err(injected(op, kind)),
    }
}

/// Failpoint-aware `write_all`: under [`FaultKind::ShortWrite`] half the
/// buffer reaches the file before the error, modeling a write torn by the
/// fault. Other kinds fail before any byte is written.
pub fn write_all(f: &mut File, buf: &[u8]) -> io::Result<()> {
    match consume(IoOp::Write) {
        Ok(()) => f.write_all(buf),
        Err(FaultKind::ShortWrite) => {
            let _ = f.write_all(&buf[..buf.len() / 2]);
            Err(injected(IoOp::Write, FaultKind::ShortWrite))
        }
        Err(kind) => Err(injected(IoOp::Write, kind)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Read as _;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xqp-failpoint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disarmed_passes_everything() {
        disarm();
        for op in [IoOp::Create, IoOp::Write, IoOp::Fsync, IoOp::Rename] {
            assert!(check(op).is_ok());
        }
    }

    #[test]
    fn counting_counts_without_failing() {
        arm_count();
        for _ in 0..5 {
            assert!(check(IoOp::Write).is_ok());
        }
        assert_eq!(ops_seen(), 5);
        disarm();
    }

    #[test]
    fn soft_fault_fails_nth_then_recovers() {
        arm_fail_nth(2, FaultKind::Error, false);
        assert!(check(IoOp::Write).is_ok());
        assert!(check(IoOp::Fsync).is_ok());
        assert!(check(IoOp::Write).is_err());
        // Soft flavor: subsequent operations succeed again.
        assert!(check(IoOp::Write).is_ok());
        disarm();
    }

    #[test]
    fn crash_fault_kills_all_later_io() {
        arm_fail_nth(1, FaultKind::DiskFull, true);
        assert!(check(IoOp::Write).is_ok());
        assert!(check(IoOp::Fsync).is_err());
        assert!(is_dead());
        assert!(check(IoOp::Rename).is_err());
        assert!(check(IoOp::Open).is_err());
        disarm();
        assert!(check(IoOp::Open).is_ok());
    }

    #[test]
    fn short_write_leaves_half_the_bytes() {
        let dir = tmp("short");
        let path = dir.join("f");
        let mut f = File::create(&path).unwrap();
        arm_fail_nth(0, FaultKind::ShortWrite, false);
        let err = write_all(&mut f, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("injected"));
        disarm();
        drop(f);
        let mut got = String::new();
        File::open(&path).unwrap().read_to_string(&mut got).unwrap();
        assert_eq!(got, "01234");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_is_thread_local() {
        arm_fail_nth(0, FaultKind::Error, true);
        let other = std::thread::spawn(|| check(IoOp::Write).is_ok()).join().unwrap();
        assert!(other, "a fresh thread must start disarmed");
        assert!(check(IoOp::Write).is_err());
        disarm();
    }
}
