//! # Durable persistence for succinct documents
//!
//! A [`SuccinctDoc`](crate::succinct::SuccinctDoc) normally lives only as
//! long as the process that parsed it. This module gives it a durable home
//! with the classic snapshot + write-ahead-log split:
//!
//! * [`snapshot`] — the whole document, serialized with explicit
//!   little-endian framing, versioned, and sealed with a trailing CRC-32.
//!   Written atomically (temp file + rename). Rank/select directories and
//!   secondary indexes are derived state and are rebuilt on load.
//! * [`wal`] — logical update records (`insert` / `delete`) appended with a
//!   per-record CRC and fsynced before the update is acknowledged. Replayed
//!   on open; a torn or corrupt *tail* is truncated (crash mid-append),
//!   while a corrupt *interior* record that decodes but cannot apply is a
//!   hard error (logical corruption is never silently dropped).
//! * [`store`] — [`DocStore`] ties the two together per document directory
//!   and implements compaction: fold the WAL into a fresh snapshot, then
//!   reset the log. A generation stamp shared by both file headers closes
//!   the crash window between those two steps.
//! * [`page`] — the paged alternative to [`snapshot`]: the document laid out
//!   in fixed 4 KiB pages, each sealed with a position-bound CRC, so a
//!   [`BufferPool`](crate::buffer::BufferPool) can fault in only the pages
//!   navigation touches and documents larger than RAM stay queryable.
//! * [`format`] — the shared framing/CRC primitives and [`PersistError`].
//! * [`failpoint`] — a thread-local I/O fault-injection layer every file
//!   operation in this module routes through; the torture harness arms it
//!   to simulate errors, short writes, disk-full and power cuts at each
//!   reachable I/O point. Disarmed (the default) it costs one thread-local
//!   read per operation.
//!
//! No serde, no external codecs: the container is offline and the formats
//! are small enough that hand-rolled framing is both simpler and exactly
//! specified (see `DESIGN.md` § Persistence for the byte layouts).

pub mod failpoint;
pub mod format;
pub mod page;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use failpoint::{FaultKind, IoOp};
pub use format::{crc32, PersistError, Reader};
pub use page::{
    open_paged, paged_generation, read_paged_resident, spill_paged, write_paged_snapshot, PageFile,
    PageMeta, FRAME_BYTES, PAGED_MAGIC, PAGED_VERSION,
};
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, snapshot_generation, write_snapshot,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{DocStore, StoreCounters, PAGED_FILE, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{apply_op, ReplayReport, Wal, WalOp, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION};
