//! On-disk framing primitives shared by the snapshot and WAL formats.
//!
//! Everything on disk is explicit **little-endian** with length-prefixed
//! variable fields — no serde, no external codecs. Integrity is a CRC-32
//! (IEEE 802.3, the reflected 0xEDB88320 polynomial) over the framed bytes;
//! both formats put the checksum *after* the data it covers so a torn write
//! is indistinguishable from a corrupt one and both are handled the same
//! way by recovery.

use std::fmt;

/// Why a persisted file could not be used.
#[derive(Debug)]
pub enum PersistError {
    /// The operating system said no (open/read/write/fsync/rename).
    Io(std::io::Error),
    /// The bytes do not parse as the format claims (bad magic, bad
    /// version, framing overrun, checksum mismatch).
    Format(String),
    /// A WAL record decoded cleanly but could not be applied to the
    /// document state (logical corruption — never auto-truncated).
    Apply(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Format(m) => write!(f, "persistence format error: {m}"),
            PersistError::Apply(m) => write!(f, "WAL apply error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Shorthand used across the persist modules.
pub type Result<T> = std::result::Result<T, PersistError>;

// ---- CRC-32 -----------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- writing ----------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u32`) byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

// ---- reading ----------------------------------------------------------------

/// Cursor over a framed byte slice; every read is bounds-checked and a
/// failure names what was being read, so corrupt files produce actionable
/// [`PersistError::Format`] messages instead of panics.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Format(format!(
                "unexpected end of data reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Read a length-prefixed byte string.
    pub fn len_bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let n = self.u32(what)? as usize;
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn len_str(&mut self, what: &str) -> Result<&'a str> {
        let b = self.len_bytes(what)?;
        std::str::from_utf8(b)
            .map_err(|e| PersistError::Format(format!("{what} is not UTF-8: {e}")))
    }

    /// Fail unless exactly `magic` comes next.
    pub fn expect_magic(&mut self, magic: &[u8; 8]) -> Result<()> {
        let got = self.take(8, "magic")?;
        if got != magic {
            return Err(PersistError::Format(format!(
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(got)
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.len_str("d").unwrap(), "héllo");
        assert_eq!(r.len_bytes("e").unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_are_bounds_checked() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32("x").is_err());
        let mut r = Reader::new(&[255, 255, 255, 255]);
        // Length prefix claims 4 GiB; the take must fail, not panic.
        assert!(r.len_bytes("y").is_err());
    }

    #[test]
    fn magic_mismatch_reports_both() {
        let mut r = Reader::new(b"XQPWRONGrest");
        let err = r.expect_magic(b"XQPSNAP1").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("XQPSNAP1"));
    }
}
