//! Write-ahead log of logical update operations.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header : "XQPWAL01" (8) + version u32 + generation u64
//! record : body_len u32 | body | crc32(body) u32
//! body   : seq u64 | op u8 | payload
//!   op 1 = insert: parent rank u32, fragment XML (len u32 + utf8)
//!   op 2 = delete: node rank u32
//! ```
//!
//! Appends are flushed **and fsynced** before [`Wal::append`] returns, so a
//! record that was acknowledged survives a crash. Replay walks records from
//! the front; the first record that is incomplete (torn write at the tail)
//! or fails its CRC ends the log — the file is truncated back to the last
//! good record and appending continues from there (*truncate-and-continue*
//! recovery). A record that decodes cleanly but cannot be applied is
//! **not** truncated: that is logical corruption and surfaces as
//! [`PersistError::Apply`].
//!
//! The header's **generation** is the compaction generation of the
//! snapshot this log applies to. A log whose generation does not match its
//! snapshot is *stale* — the crash fell between a compaction's snapshot
//! rename and its WAL reset — and replaying it would double-apply folded
//! updates, so [`Wal::open_replay`] discards it instead.

use super::failpoint::{self, IoOp};
use super::format::{crc32, put_str, put_u32, put_u64, put_u8, PersistError, Reader, Result};
use crate::succinct::{SNodeId, SuccinctDoc};
use crate::update;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"XQPWAL01";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version + generation.
pub const WAL_HEADER_LEN: u64 = 20;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One logical update, as logged and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert `fragment_xml` (one root element) as the last child of the
    /// element at pre-order rank `parent`.
    Insert {
        /// Pre-order rank of the target element at apply time.
        parent: u32,
        /// The fragment, serialized; re-parsed on replay.
        fragment_xml: String,
    },
    /// Delete the subtree rooted at pre-order rank `node`.
    Delete {
        /// Pre-order rank of the subtree root at apply time.
        node: u32,
    },
}

/// Apply one logged operation to `doc`, producing the post-state.
pub fn apply_op(doc: &SuccinctDoc, op: &WalOp) -> Result<SuccinctDoc> {
    match op {
        WalOp::Insert { parent, fragment_xml } => {
            let frag = xqp_xml::parse_document(fragment_xml)
                .map_err(|e| PersistError::Apply(format!("logged fragment does not parse: {e}")))?;
            update::insert_subtree(doc, SNodeId(*parent), &frag)
                .map_err(|e| PersistError::Apply(e.to_string()))
        }
        WalOp::Delete { node } => update::delete_subtree(doc, SNodeId(*node))
            .map_err(|e| PersistError::Apply(e.to_string())),
    }
}

fn encode_body(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, seq);
    match op {
        WalOp::Insert { parent, fragment_xml } => {
            put_u8(&mut body, OP_INSERT);
            put_u32(&mut body, *parent);
            put_str(&mut body, fragment_xml);
        }
        WalOp::Delete { node } => {
            put_u8(&mut body, OP_DELETE);
            put_u32(&mut body, *node);
        }
    }
    body
}

/// Frame one record: `len | body | crc`.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let body = encode_body(seq, op);
    let mut rec = Vec::with_capacity(body.len() + 8);
    put_u32(&mut rec, body.len() as u32);
    rec.extend_from_slice(&body);
    put_u32(&mut rec, crc32(&body));
    rec
}

fn decode_body(body: &[u8]) -> Result<(u64, WalOp)> {
    let mut r = Reader::new(body);
    let seq = r.u64("record seq")?;
    let op = match r.u8("record op")? {
        OP_INSERT => WalOp::Insert {
            parent: r.u32("insert parent rank")?,
            fragment_xml: r.len_str("insert fragment")?.to_string(),
        },
        OP_DELETE => WalOp::Delete { node: r.u32("delete node rank")? },
        other => return Err(PersistError::Format(format!("unknown WAL opcode {other}"))),
    };
    if r.remaining() != 0 {
        return Err(PersistError::Format(format!(
            "{} trailing bytes inside WAL record body",
            r.remaining()
        )));
    }
    Ok((seq, op))
}

/// What replay found in the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Complete, checksummed records applied to the snapshot state.
    pub records_applied: u64,
    /// Bytes dropped from the tail (torn or checksum-failing suffix).
    pub bytes_truncated: u64,
}

/// An open write-ahead log: replayed on open, append-only afterwards.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    generation: u64,
    next_seq: u64,
    len: u64,
}

impl Wal {
    /// Create a fresh (empty) log at `path` for snapshot `generation`,
    /// truncating any existing file. The header is written and fsynced
    /// before returning.
    ///
    /// When an old log is being overwritten (the stale-log discard path of
    /// [`Wal::open_replay`]), the truncation is made durable **before** any
    /// header byte is written: size updates and data writes have no
    /// ordering guarantee under a single fsync, so a crash mid-create could
    /// otherwise persist a generation-matching header over the old records
    /// and replay them against a snapshot that already contains their
    /// effects.
    pub fn create(path: &Path, generation: u64) -> Result<Wal> {
        failpoint::check(IoOp::Create)?;
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        // Barrier 1: persist the truncation alone. A crash from here until
        // the header fsync completes leaves a file shorter than a header
        // (or an empty log at worst) — open_replay starts those fresh, and
        // no stale record can survive past this point.
        failpoint::check(IoOp::Fsync)?;
        file.sync_all()?;
        // Barrier 2: the header.
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION);
        put_u64(&mut header, generation);
        failpoint::write_all(&mut file, &header)?;
        failpoint::check(IoOp::Fsync)?;
        file.sync_all()?;
        Ok(Wal { file, path: path.to_path_buf(), generation, next_seq: 0, len: WAL_HEADER_LEN })
    }

    /// Open the log at `path` and replay it over `doc` (the snapshot
    /// state), returning the recovered document, the positioned log, and a
    /// report of what was applied and what was dropped.
    ///
    /// Torn or checksum-failing tails are truncated off the file (crash
    /// recovery); a record that fails to *apply* aborts the open instead.
    pub fn open_replay(
        path: &Path,
        snapshot_generation: u64,
        mut doc: SuccinctDoc,
    ) -> Result<(Wal, SuccinctDoc, ReplayReport)> {
        failpoint::check(IoOp::Open)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        failpoint::check(IoOp::Read)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_HEADER_LEN as usize {
            // A crash during header creation tore the header; nothing was
            // ever acknowledged through this log, so start it fresh.
            drop(file);
            let wal = Wal::create(path, snapshot_generation)?;
            let report = ReplayReport { records_applied: 0, bytes_truncated: bytes.len() as u64 };
            return Ok((wal, doc, report));
        }
        {
            let mut r = Reader::new(&bytes);
            r.expect_magic(WAL_MAGIC)?;
            let version = r.u32("WAL version")?;
            if version != WAL_VERSION {
                return Err(PersistError::Format(format!(
                    "unsupported WAL version {version} (this build reads {WAL_VERSION})"
                )));
            }
            let generation = r.u64("WAL generation")?;
            if generation != snapshot_generation {
                // Stale log: the crash fell between a compaction's snapshot
                // rename and its WAL reset. The snapshot already contains
                // these records' effects — discard, do not double-apply.
                drop(file);
                let dropped = bytes.len() as u64 - WAL_HEADER_LEN;
                let wal = Wal::create(path, snapshot_generation)?;
                let report = ReplayReport { records_applied: 0, bytes_truncated: dropped };
                return Ok((wal, doc, report));
            }
        }

        let mut report = ReplayReport::default();
        let mut good_end = WAL_HEADER_LEN as usize;
        let mut next_seq = 0u64;
        let mut pos = good_end;
        loop {
            // A complete record needs 4 (len) + body_len + 4 (crc) bytes.
            if bytes.len() - pos < 4 {
                break; // torn length prefix
            }
            let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if bytes.len() - pos < 4 + body_len + 4 {
                break; // torn body or checksum
            }
            let body = &bytes[pos + 4..pos + 4 + body_len];
            let stored_crc = u32::from_le_bytes(
                bytes[pos + 4 + body_len..pos + 8 + body_len].try_into().unwrap(),
            );
            if crc32(body) != stored_crc {
                break; // corrupt record: drop it and everything after
            }
            let (seq, op) = match decode_body(body) {
                Ok(v) => v,
                // CRC passed but the body does not parse — treat as
                // corruption at this point and drop the tail.
                Err(_) => break,
            };
            // Applying is NOT tail-dropped: the record is intact, so a
            // failure here means the log disagrees with the snapshot.
            doc = apply_op(&doc, &op)
                .map_err(|e| PersistError::Apply(format!("record seq {seq}: {e}")))?;
            report.records_applied += 1;
            next_seq = seq + 1;
            pos += 4 + body_len + 4;
            good_end = pos;
        }

        report.bytes_truncated = (bytes.len() - good_end) as u64;
        if report.bytes_truncated > 0 {
            failpoint::check(IoOp::Truncate)?;
            file.set_len(good_end as u64)?;
            failpoint::check(IoOp::Fsync)?;
            file.sync_all()?;
        }
        failpoint::check(IoOp::Seek)?;
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                generation: snapshot_generation,
                next_seq,
                len: good_end as u64,
            },
            doc,
            report,
        ))
    }

    /// Append one operation; flushed and fsynced before returning. Returns
    /// the number of bytes appended.
    pub fn append(&mut self, op: &WalOp) -> Result<u64> {
        self.append_batch(std::slice::from_ref(op))
    }

    /// Group commit: append every operation in `ops` as consecutive
    /// records with **one** write and **one** fsync, amortizing the sync
    /// cost across the batch. Returns the number of bytes appended.
    ///
    /// Durability is all-or-nothing at the fsync barrier. If the write or
    /// the fsync fails, the log is rolled back (best effort) to its
    /// pre-batch length so a torn partial batch cannot sit under records a
    /// later successful append writes — the caller sees an error and must
    /// treat the whole batch as not durable.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<u64> {
        if ops.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            buf.extend_from_slice(&encode_record(self.next_seq + i as u64, op));
        }
        let commit = (|| -> Result<()> {
            failpoint::write_all(&mut self.file, &buf)?;
            failpoint::check(IoOp::Fsync)?;
            self.file.sync_all()?;
            Ok(())
        })();
        if let Err(e) = commit {
            // Roll back a possibly-torn batch. Ignoring rollback errors is
            // safe: replay truncates any torn tail, and the caller already
            // treats the batch as failed either way.
            let _ = self.file.set_len(self.len);
            let _ = self.file.sync_all();
            let _ = self.file.seek(SeekFrom::Start(self.len));
            return Err(e);
        }
        self.next_seq += ops.len() as u64;
        self.len += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Reset to an empty log for snapshot `generation` (after compaction
    /// folded the records into that snapshot), in two fsync barriers.
    ///
    /// The truncation and the new-generation header must not share a
    /// single fsync: the data write and the inode size update have no
    /// ordering guarantee before `sync_all` returns, so a crash could
    /// persist the new header while the old records are still in the file
    /// — a generation-*matching* log whose records the new snapshot
    /// already contains, which replay would double-apply. Truncating
    /// first, under the **old** generation, makes every intermediate crash
    /// state safe: an empty stale-generation log is discarded on open, and
    /// by the time the new generation is stamped no old record can still
    /// be on disk.
    pub fn reset(&mut self, generation: u64) -> Result<()> {
        // Barrier 1: durably drop the folded records, keeping the old
        // generation in the header.
        failpoint::check(IoOp::Truncate)?;
        self.file.set_len(WAL_HEADER_LEN)?;
        failpoint::check(IoOp::Fsync)?;
        self.file.sync_all()?;
        // Barrier 2: stamp the new generation on the now-empty log.
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION);
        put_u64(&mut header, generation);
        failpoint::check(IoOp::Seek)?;
        self.file.seek(SeekFrom::Start(0))?;
        failpoint::write_all(&mut self.file, &header)?;
        failpoint::check(IoOp::Fsync)?;
        self.file.sync_all()?;
        self.generation = generation;
        self.next_seq = 0;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }

    /// The snapshot generation this log applies to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number the next append will carry (= records in the log).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use xqp_xml::serialize;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xqp-wal-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("doc.wal")
    }

    fn as_xml(d: &SuccinctDoc) -> String {
        serialize(&d.to_document())
    }

    #[test]
    fn record_roundtrip() {
        let ops = [
            WalOp::Insert { parent: 0, fragment_xml: "<x a=\"1\">t</x>".into() },
            WalOp::Delete { node: 7 },
        ];
        for (i, op) in ops.iter().enumerate() {
            let rec = encode_record(i as u64, op);
            let body = &rec[4..rec.len() - 4];
            let (seq, back) = decode_body(body).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(&back, op);
        }
    }

    #[test]
    fn append_then_replay_reconstructs_state() {
        let path = tmp("replay");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        let mut live = base.clone();
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            for i in 0..5 {
                let op = WalOp::Insert { parent: 0, fragment_xml: format!("<e n=\"{i}\"/>") };
                live = apply_op(&live, &op).unwrap();
                wal.append(&op).unwrap();
            }
            let del = WalOp::Delete { node: live.node_count() as u32 - 2 };
            live = apply_op(&live, &del).unwrap();
            wal.append(&del).unwrap();
        }
        let (wal, recovered, report) = Wal::open_replay(&path, 0, base).unwrap();
        assert_eq!(report.records_applied, 6);
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(as_xml(&recovered), as_xml(&live));
        assert_eq!(wal.next_seq(), 6);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let path = tmp("torn");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<a/>".into() }).unwrap();
            wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<b/>".into() }).unwrap();
        }
        // Tear 3 bytes off the last record.
        let full = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let (mut wal, doc, report) = Wal::open_replay(&path, 0, base.clone()).unwrap();
        assert_eq!(report.records_applied, 1);
        assert!(report.bytes_truncated > 0);
        assert_eq!(as_xml(&doc), "<log><a/></log>");
        // The file was truncated back to the good prefix…
        assert_eq!(fs::metadata(&path).unwrap().len(), wal.len_bytes());
        // …and appending after recovery works.
        wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<c/>".into() }).unwrap();
        drop(wal);
        let (_, doc, report) = Wal::open_replay(&path, 0, base).unwrap();
        assert_eq!(report.records_applied, 2);
        assert_eq!(as_xml(&doc), "<log><a/><c/></log>");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn batch_append_replays_like_individual_appends() {
        let path = tmp("batch");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        let ops: Vec<WalOp> = (0..4)
            .map(|i| WalOp::Insert { parent: 0, fragment_xml: format!("<e n=\"{i}\"/>") })
            .collect();
        let mut live = base.clone();
        for op in &ops {
            live = apply_op(&live, op).unwrap();
        }
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            let written = wal.append_batch(&ops).unwrap();
            assert!(written > 0);
            assert_eq!(wal.next_seq(), 4);
            assert_eq!(wal.len_bytes(), WAL_HEADER_LEN + written);
            // An empty batch is a no-op, not an fsync.
            assert_eq!(wal.append_batch(&[]).unwrap(), 0);
            // Sequence numbers keep running across batch boundaries.
            let tail = WalOp::Delete { node: live.node_count() as u32 - 2 };
            live = apply_op(&live, &tail).unwrap();
            wal.append(&tail).unwrap();
        }
        let (wal, recovered, report) = Wal::open_replay(&path, 0, base).unwrap();
        assert_eq!(report.records_applied, 5);
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(as_xml(&recovered), as_xml(&live));
        assert_eq!(wal.next_seq(), 5);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn failed_batch_rolls_the_log_back() {
        let path = tmp("batch-rollback");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<a/>".into() }).unwrap();
        let before_len = wal.len_bytes();
        let before_seq = wal.next_seq();

        // Fail the batch's fsync (op 0 is the write, op 1 the fsync): the
        // records were written, so rollback must truncate them away before
        // the error surfaces.
        failpoint::arm_fail_nth(1, failpoint::FaultKind::Error, false);
        let err = wal
            .append_batch(&[
                WalOp::Insert { parent: 0, fragment_xml: "<b/>".into() },
                WalOp::Insert { parent: 0, fragment_xml: "<c/>".into() },
            ])
            .unwrap_err();
        failpoint::disarm();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        assert_eq!(wal.len_bytes(), before_len);
        assert_eq!(wal.next_seq(), before_seq);
        assert_eq!(fs::metadata(&path).unwrap().len(), before_len);

        // The log is still usable and replay sees only durable records.
        wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<d/>".into() }).unwrap();
        drop(wal);
        let (_, doc, report) = Wal::open_replay(&path, 0, base).unwrap();
        assert_eq!(report.records_applied, 2);
        assert_eq!(as_xml(&doc), "<log><a/><d/></log>");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn crc_corruption_drops_the_tail() {
        let path = tmp("crc");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<a/>".into() }).unwrap();
            wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<b/>".into() }).unwrap();
        }
        // Flip one byte inside the second record's body.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_, doc, report) = Wal::open_replay(&path, 0, base).unwrap();
        assert_eq!(report.records_applied, 1);
        assert!(report.bytes_truncated > 0);
        assert_eq!(as_xml(&doc), "<log><a/></log>");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn unappliable_record_is_an_error_not_a_truncate() {
        let path = tmp("apply");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            // Rank 99 does not exist: intact record, impossible op.
            wal.append(&WalOp::Delete { node: 99 }).unwrap();
        }
        let err = Wal::open_replay(&path, 0, base).unwrap_err();
        assert!(matches!(err, PersistError::Apply(_)), "{err}");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn crash_between_reset_barriers_is_discarded_safely() {
        // Simulate a crash after reset's first barrier (truncate persisted,
        // new generation not yet stamped): the log is empty and still
        // carries the old generation. Opening against the new-generation
        // snapshot must discard it and replay nothing.
        let path = tmp("reset-crash");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<a/>".into() }).unwrap();
        }
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(WAL_HEADER_LEN).unwrap();
        drop(f);
        let (wal, doc, report) = Wal::open_replay(&path, 1, base).unwrap();
        assert_eq!(report.records_applied, 0);
        assert_eq!(as_xml(&doc), "<log/>");
        assert_eq!(wal.generation(), 1);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let base = SuccinctDoc::parse("<log/>").unwrap();
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<a/>".into() }).unwrap();
        wal.reset(1).unwrap();
        assert_eq!(wal.next_seq(), 0);
        wal.append(&WalOp::Insert { parent: 0, fragment_xml: "<z/>".into() }).unwrap();
        drop(wal);
        let (_, doc, report) = Wal::open_replay(&path, 1, base.clone()).unwrap();
        assert_eq!(report.records_applied, 1);
        assert_eq!(as_xml(&doc), "<log><z/></log>");
        // Opening with a mismatched generation discards the stale log.
        let (wal, doc, report) = Wal::open_replay(&path, 2, base).unwrap();
        assert_eq!(report.records_applied, 0);
        assert!(report.bytes_truncated > 0);
        assert_eq!(as_xml(&doc), "<log/>");
        assert_eq!(wal.generation(), 2);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
