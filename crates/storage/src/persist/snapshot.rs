//! Snapshot format: one `SuccinctDoc`, whole, versioned and checksummed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------------------------------------------------------+
//! | "XQPSNAP1" (8) | version u32 | generation u64 | node_count u32     |
//! +--------------------------------------------------------------------+
//! | structure  : bit_len u64, word_count u64, words u64×word_count     |
//! | tags       : TagId u32 × node_count                                |
//! | is_attr    : bit_len u64, word_count u64, words …                  |
//! | has_content: bit_len u64, word_count u64, words …                  |
//! | content    : count u32, (len u32 + utf8 bytes) × count             |
//! | tag table  : count u32, (len u32 + utf8 bytes) × count  (id order) |
//! +--------------------------------------------------------------------+
//! | crc32 u32 over everything above (magic included)                   |
//! +--------------------------------------------------------------------+
//! ```
//!
//! The rank/select directories, the range-min-max tree and all secondary
//! indexes are **rebuilt on load** rather than persisted: they are o(n)
//! derived state, and rebuilding keeps the format independent of directory
//! tuning parameters (a snapshot written under one block size opens under
//! another). The **generation** counts compactions; the WAL carries the
//! generation of the snapshot it applies to, which is what makes the
//! compaction crash window detectable (see [`super::store`]). Decode
//! validates every cross-field invariant (bit lengths
//! match the node count, tag ids resolve, parentheses balance) before
//! handing out a document, so a corrupt snapshot fails closed.

use super::failpoint::{self, IoOp};
use super::format::{crc32, put_str, put_u32, put_u64, PersistError, Reader, Result};
use crate::bitvec::BitVec;
use crate::content::ContentStore;
use crate::succinct::SuccinctDoc;
use crate::tags::{TagId, TagTable};
use std::fs;
use std::path::Path;

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"XQPSNAP1";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

fn put_bitvec(out: &mut Vec<u8>, v: &BitVec) {
    put_u64(out, v.len() as u64);
    put_u64(out, v.n_words() as u64);
    for w in v.iter_words() {
        put_u64(out, w);
    }
}

fn read_bitvec(r: &mut Reader<'_>, what: &str) -> Result<BitVec> {
    let bit_len = r.u64(what)? as usize;
    let word_count = r.u64(what)? as usize;
    if word_count != bit_len.div_ceil(64) {
        return Err(PersistError::Format(format!(
            "{what}: {word_count} words cannot hold {bit_len} bits"
        )));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.u64(what)?);
    }
    Ok(BitVec::from_words(words, bit_len))
}

/// Serialize `doc` to the snapshot byte format, stamped with the given
/// compaction `generation`.
pub fn encode_snapshot(doc: &SuccinctDoc, generation: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, generation);
    put_u32(&mut out, doc.node_count() as u32);
    put_bitvec(&mut out, doc.bp().bits());
    for t in doc.raw_tags().iter() {
        put_u32(&mut out, t.0);
    }
    put_bitvec(&mut out, doc.raw_is_attr());
    put_bitvec(&mut out, doc.raw_has_content());
    let content = doc.content_store();
    put_u32(&mut out, content.len() as u32);
    for (_, s) in content.iter() {
        put_str(&mut out, &s);
    }
    let table = doc.tag_table();
    put_u32(&mut out, table.len() as u32);
    for i in 0..table.len() {
        put_str(&mut out, table.name(TagId(i as u32)));
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a snapshot, validating framing, checksum and structural
/// invariants. Returns the document and its compaction generation.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SuccinctDoc, u64)> {
    if bytes.len() < 4 {
        return Err(PersistError::Format("snapshot shorter than its checksum".into()));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let actual = crc32(payload);
    if stored_crc != actual {
        return Err(PersistError::Format(format!(
            "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = Reader::new(payload);
    r.expect_magic(SNAPSHOT_MAGIC)?;
    let version = r.u32("snapshot version")?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let generation = r.u64("snapshot generation")?;
    let node_count = r.u32("node count")? as usize;

    let bits = read_bitvec(&mut r, "structure bits")?;
    if bits.len() != 2 * node_count {
        return Err(PersistError::Format(format!(
            "structure has {} bits for {node_count} nodes (expected {})",
            bits.len(),
            2 * node_count
        )));
    }
    if bits.count_ones() != node_count {
        return Err(PersistError::Format("structure parentheses are not balanced".into()));
    }
    // The popcount above only proves opens == closes; a shuffled sequence
    // with the right counts (e.g. one starting with a close) would pass it
    // and panic later inside rank/select/find_close. Walk the excess:
    // depth never dips below zero, and it stays positive until the final
    // bit (the encoding is one tree, not a forest).
    let mut depth = 0usize;
    for i in 0..bits.len() {
        if bits.get(i) {
            depth += 1;
        } else {
            if depth == 0 {
                return Err(PersistError::Format(
                    "structure parentheses are malformed: close before open".into(),
                ));
            }
            depth -= 1;
            if depth == 0 && i + 1 != bits.len() {
                return Err(PersistError::Format(
                    "structure parentheses encode a forest, not one tree".into(),
                ));
            }
        }
    }

    let mut tags = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        tags.push(TagId(r.u32("node tag")?));
    }

    let is_attr = read_bitvec(&mut r, "is_attr bits")?;
    let has_content = read_bitvec(&mut r, "has_content bits")?;
    if is_attr.len() != node_count || has_content.len() != node_count {
        return Err(PersistError::Format(format!(
            "flag vectors ({} / {}) do not match node count {node_count}",
            is_attr.len(),
            has_content.len()
        )));
    }

    let content_count = r.u32("content count")? as usize;
    if content_count != has_content.count_ones() {
        return Err(PersistError::Format(format!(
            "content store holds {content_count} strings but {} nodes carry content",
            has_content.count_ones()
        )));
    }
    let mut content = ContentStore::new();
    for _ in 0..content_count {
        content.push(r.len_str("content string")?);
    }

    let tag_count = r.u32("tag-table size")? as usize;
    if tag_count == 0 {
        return Err(PersistError::Format("tag table is empty (needs #text)".into()));
    }
    let mut table = TagTable::new();
    for i in 0..tag_count {
        let name = r.len_str("tag name")?;
        let id = table.intern(name);
        if id.index() != i {
            return Err(PersistError::Format(format!(
                "tag table entry {i} ({name:?}) is a duplicate or out of order"
            )));
        }
    }
    if tags.iter().any(|t| t.index() >= tag_count) {
        return Err(PersistError::Format("node tag id outside the tag table".into()));
    }
    if r.remaining() != 0 {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after snapshot payload",
            r.remaining()
        )));
    }

    Ok((SuccinctDoc::from_parts(bits, tags, is_attr, has_content, content, table), generation))
}

/// Write a snapshot **atomically**: encode to `<path>.tmp`, fsync the file,
/// rename over `path`, then fsync the parent directory so the rename is
/// durable. Readers therefore see either the old snapshot or the new one,
/// never a torn mix. Returns the number of bytes written.
pub fn write_snapshot(path: &Path, doc: &SuccinctDoc, generation: u64) -> Result<u64> {
    let bytes = encode_snapshot(doc, generation);
    let tmp = path.with_extension("tmp");
    {
        failpoint::check(IoOp::Create)?;
        let mut f = fs::File::create(&tmp)?;
        failpoint::write_all(&mut f, &bytes)?;
        failpoint::check(IoOp::Fsync)?;
        f.sync_all()?;
    }
    failpoint::check(IoOp::Rename)?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync can fail on exotic filesystems; the rename itself
        // already happened, so treat failure as best-effort (the failpoint
        // still counts it as a reachable — and harmlessly injectable — op).
        if failpoint::check(IoOp::Fsync).is_ok() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(bytes.len() as u64)
}

/// Read and decode the snapshot at `path`.
pub fn read_snapshot(path: &Path) -> Result<(SuccinctDoc, u64)> {
    failpoint::check(IoOp::Read)?;
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Peek a snapshot's generation from its fixed-offset header without
/// decoding (or checksumming) the body. Used to pick the newer of two
/// on-disk state files; the winner is still fully validated when read.
pub fn snapshot_generation(path: &Path) -> Result<u64> {
    failpoint::check(IoOp::Read)?;
    let bytes = fs::read(path)?;
    if bytes.len() < 20 {
        return Err(PersistError::Format("snapshot shorter than its header".into()));
    }
    let mut r = Reader::new(&bytes[..20]);
    r.expect_magic(SNAPSHOT_MAGIC)?;
    let _version = r.u32("snapshot version")?;
    r.u64("snapshot generation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::serialize;

    const SAMPLE: &str = "<bib><book year=\"1994\"><title>TCP/IP</title>\
         <author>Stevens</author></book><book year=\"2000\"><title>Data</title></book></bib>";

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xqp-snap-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("doc.snap")
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = SuccinctDoc::parse(SAMPLE).unwrap();
        let bytes = encode_snapshot(&d, 3);
        let (back, generation) = decode_snapshot(&bytes).unwrap();
        assert_eq!(generation, 3);
        assert_eq!(serialize(&back.to_document()), SAMPLE);
        assert_eq!(back.node_count(), d.node_count());
        // Encoding is deterministic: same doc + generation, same bytes.
        assert_eq!(bytes, encode_snapshot(&back, 3));
    }

    #[test]
    fn empty_document_roundtrips() {
        let d = SuccinctDoc::from_events(std::iter::empty::<&xqp_xml::Event>());
        let (back, _) = decode_snapshot(&encode_snapshot(&d, 0)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let d = SuccinctDoc::parse("<a x=\"1\"><b>t</b></a>").unwrap();
        let bytes = encode_snapshot(&d, 0);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(decode_snapshot(&bad).is_err(), "flipping byte {i} went undetected");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let d = SuccinctDoc::parse(SAMPLE).unwrap();
        let bytes = encode_snapshot(&d, 0);
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn malformed_nesting_with_balanced_popcount_is_rejected() {
        // Two nodes → 4 structure bits in one word, at a fixed offset:
        // magic 8 + version 4 + generation 8 + node_count 4 + bit_len 8 +
        // word_count 8 = 40.
        let d = SuccinctDoc::parse("<a>t</a>").unwrap();
        let bytes = encode_snapshot(&d, 0);
        assert!(decode_snapshot(&bytes).is_ok());
        // popcount 2 (== node_count) but a close comes first / the tree
        // closes early: both must fail decode, not panic later.
        for (word, what) in [(0b0110u64, "close before open"), (0b0101u64, "forest")] {
            let mut bad = bytes.clone();
            bad[40..48].copy_from_slice(&word.to_le_bytes());
            let n = bad.len();
            let crc = crc32(&bad[..n - 4]);
            bad[n - 4..].copy_from_slice(&crc.to_le_bytes());
            let err = decode_snapshot(&bad).unwrap_err();
            assert!(err.to_string().contains(what), "{what}: {err}");
        }
    }

    #[test]
    fn version_gate() {
        let d = SuccinctDoc::parse("<a/>").unwrap();
        let mut bytes = encode_snapshot(&d, 0);
        bytes[8] = 99; // version field, first byte
                       // Re-seal the checksum so only the version check can fire.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn file_roundtrip_is_atomic_write() {
        let path = tmp("file");
        let d = SuccinctDoc::parse(SAMPLE).unwrap();
        let written = write_snapshot(&path, &d, 7).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        assert!(!path.with_extension("tmp").exists(), "tmp file must be renamed away");
        let (back, generation) = read_snapshot(&path).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(serialize(&back.to_document()), SAMPLE);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
