//! Local subtree updates on the succinct encoding.
//!
//! The paper's argument for parentheses clustering (§4.2): "this clustering
//! method makes update easier since each update only affects a local
//! sub-string". These functions realize that: deleting or inserting a subtree
//! splices a contiguous run of parentheses/tags/contents and leaves the rest
//! of the byte sequences untouched — only the small rank directories are
//! recomputed. Experiment E7 benchmarks this splice against re-encoding the
//! whole document from a DOM.

use crate::bitvec::BitVec;
use crate::content::ContentStore;
use crate::succinct::{SNodeId, SuccinctDoc};
use crate::tags::{TagId, TagTable};
use std::fmt;
use xqp_xml::{Document, NodeId, NodeKind};

/// Why a local update could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// Deleting the root element would leave an empty document; drop the
    /// [`SuccinctDoc`] instead.
    DeleteRoot,
    /// The node rank does not exist in this document.
    NodeOutOfRange(SNodeId),
    /// The insertion target is not an element node.
    NotAnElement(SNodeId),
    /// The fragment to insert has no root element.
    EmptyFragment,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::DeleteRoot => write!(f, "cannot delete the root element"),
            UpdateError::NodeOutOfRange(n) => write!(f, "node {n} is out of range"),
            UpdateError::NotAnElement(n) => {
                write!(f, "insert target {n} is not an element")
            }
            UpdateError::EmptyFragment => write!(f, "fragment has no root element"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// A fragment encoded against a tag table, ready to splice in.
struct EncodedFragment {
    bits: Vec<bool>,
    tags: Vec<TagId>,
    is_attr: Vec<bool>,
    contents: Vec<Option<String>>, // per node
}

fn encode_fragment(doc: &Document, root: NodeId, table: &mut TagTable) -> EncodedFragment {
    let mut f = EncodedFragment {
        bits: Vec::new(),
        tags: Vec::new(),
        is_attr: Vec::new(),
        contents: Vec::new(),
    };
    walk(doc, root, table, &mut f);
    f
}

fn walk(doc: &Document, id: NodeId, table: &mut TagTable, f: &mut EncodedFragment) {
    match &doc.node(id).kind {
        NodeKind::Element { name, attributes } => {
            f.bits.push(true);
            f.tags.push(table.intern(&name.as_lexical()));
            f.is_attr.push(false);
            f.contents.push(None);
            for &aid in attributes {
                if let NodeKind::Attribute { name, value } = &doc.node(aid).kind {
                    f.bits.push(true);
                    f.tags.push(table.intern(&name.as_lexical()));
                    f.is_attr.push(true);
                    f.contents.push(Some(value.clone()));
                    f.bits.push(false);
                }
            }
            for child in doc.children(id) {
                walk(doc, child, table, f);
            }
            f.bits.push(false);
        }
        NodeKind::Text(t) => {
            f.bits.push(true);
            f.tags.push(TagId::TEXT);
            f.is_attr.push(false);
            f.contents.push(Some(t.clone()));
            f.bits.push(false);
        }
        _ => {}
    }
}

/// Splice helper over the per-node vectors: remove node ranks
/// `[at, at+removed)` and insert the fragment's nodes at `at`; parentheses
/// are spliced at `bit_at` with `bit_removed` bits dropped.
fn splice_parts(
    doc: &SuccinctDoc,
    bit_at: usize,
    bit_removed: usize,
    at: usize,
    removed: usize,
    frag: &EncodedFragment,
    table: TagTable,
) -> SuccinctDoc {
    // Parentheses.
    let mut bits = doc.bp().bits().clone();
    bits.splice(bit_at, bit_removed, &frag.bits);
    bits.finish();

    // Tags.
    let mut tags = doc.raw_tags().to_vec();
    tags.splice(at..at + removed, frag.tags.iter().copied());

    // Attribute flags — copied word-wise, so a paged source is streamed
    // through its cursor instead of fetched bit by bit.
    let old_attr = doc.raw_is_attr();
    let mut is_attr = BitVec::new();
    is_attr.append_range(old_attr, 0, at);
    for &b in &frag.is_attr {
        is_attr.push(b);
    }
    is_attr.append_range(old_attr, at + removed, doc.node_count());
    is_attr.finish();

    // Content flags + store.
    let old_has = doc.raw_has_content();
    let content_at = old_has.rank1(at);
    let content_removed = old_has.rank1(at + removed) - content_at;
    let inserted: Vec<&str> = frag.contents.iter().filter_map(|c| c.as_deref()).collect();
    let content: ContentStore = doc.content_store().splice(content_at, content_removed, &inserted);
    let mut has_content = BitVec::new();
    has_content.append_range(old_has, 0, at);
    for c in &frag.contents {
        has_content.push(c.is_some());
    }
    has_content.append_range(old_has, at + removed, doc.node_count());
    has_content.finish();

    SuccinctDoc::from_parts(bits, tags, is_attr, has_content, content, table)
}

/// Delete the subtree rooted at `n`, returning the updated document.
///
/// Fails with [`UpdateError::DeleteRoot`] on the root element (deleting the
/// root would leave an empty document) and [`UpdateError::NodeOutOfRange`]
/// on a rank the document does not contain.
pub fn delete_subtree(doc: &SuccinctDoc, n: SNodeId) -> Result<SuccinctDoc, UpdateError> {
    if n.index() == 0 {
        return Err(UpdateError::DeleteRoot);
    }
    if n.index() >= doc.node_count() {
        return Err(UpdateError::NodeOutOfRange(n));
    }
    let open = doc.pos(n);
    let close = doc.bp().find_close(open);
    let size = doc.subtree_size(n);
    let empty = EncodedFragment {
        bits: Vec::new(),
        tags: Vec::new(),
        is_attr: Vec::new(),
        contents: Vec::new(),
    };
    Ok(splice_parts(doc, open, close - open + 1, n.index(), size, &empty, doc.tag_table().clone()))
}

/// Insert the root element of `fragment` as the **last child** of `parent`,
/// returning the updated document.
///
/// Fails with [`UpdateError::NotAnElement`] when `parent` is not an element
/// and [`UpdateError::EmptyFragment`] when `fragment` has no root element.
pub fn insert_subtree(
    doc: &SuccinctDoc,
    parent: SNodeId,
    fragment: &Document,
) -> Result<SuccinctDoc, UpdateError> {
    if parent.index() >= doc.node_count() {
        return Err(UpdateError::NodeOutOfRange(parent));
    }
    if !doc.is_element(parent) {
        return Err(UpdateError::NotAnElement(parent));
    }
    let frag_root = fragment.root_element().ok_or(UpdateError::EmptyFragment)?;
    let mut table = doc.tag_table().clone();
    let frag = encode_fragment(fragment, frag_root, &mut table);
    // Insertion point: just before the parent's close parenthesis; in rank
    // space that is right after the parent's whole subtree.
    let close = doc.bp().find_close(doc.pos(parent));
    let at = parent.index() + doc.subtree_size(parent);
    Ok(splice_parts(doc, close, 0, at, 0, &frag, table))
}

/// Re-encode the whole document from a DOM — the non-local alternative the
/// update benchmark (E7) compares against.
pub fn rebuild_full(doc: &Document) -> SuccinctDoc {
    SuccinctDoc::from_document(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::{parse_document, serialize};

    fn sdoc(s: &str) -> SuccinctDoc {
        SuccinctDoc::parse(s).unwrap()
    }

    fn as_xml(d: &SuccinctDoc) -> String {
        serialize(&d.to_document())
    }

    #[test]
    fn delete_leaf() {
        let d = sdoc("<a><b/><c/></a>");
        let a = d.root().unwrap();
        let b = d.first_child(a).unwrap();
        let d2 = delete_subtree(&d, b).unwrap();
        assert_eq!(as_xml(&d2), "<a><c/></a>");
        assert_eq!(d2.node_count(), 2);
    }

    #[test]
    fn delete_subtree_with_content() {
        let d = sdoc("<bib><book year=\"1\"><t>x</t></book><book year=\"2\"><t>y</t></book></bib>");
        let bib = d.root().unwrap();
        let book1 = d.child_elements(bib).next().unwrap();
        let d2 = delete_subtree(&d, book1).unwrap();
        assert_eq!(as_xml(&d2), "<bib><book year=\"2\"><t>y</t></book></bib>");
        // Content of the second book survives with correct ranks.
        let book = d2.child_elements(d2.root().unwrap()).next().unwrap();
        assert_eq!(d2.attribute(book, "year").as_deref(), Some("2"));
        assert_eq!(d2.string_value(book), "y");
    }

    #[test]
    fn delete_middle_sibling() {
        let d = sdoc("<a><x>1</x><y>2</y><z>3</z></a>");
        let a = d.root().unwrap();
        let y = d.child_elements(a).nth(1).unwrap();
        let d2 = delete_subtree(&d, y).unwrap();
        assert_eq!(as_xml(&d2), "<a><x>1</x><z>3</z></a>");
        assert_eq!(d2.string_value(d2.root().unwrap()), "13");
    }

    #[test]
    fn delete_root_is_a_typed_error() {
        let d = sdoc("<a/>");
        assert_eq!(delete_subtree(&d, d.root().unwrap()).unwrap_err(), UpdateError::DeleteRoot);
    }

    #[test]
    fn out_of_range_and_bad_targets_are_typed_errors() {
        let d = sdoc("<a>text</a>");
        assert_eq!(
            delete_subtree(&d, SNodeId(99)).unwrap_err(),
            UpdateError::NodeOutOfRange(SNodeId(99))
        );
        let frag = parse_document("<x/>").unwrap();
        let text = d.first_child(d.root().unwrap()).unwrap();
        assert_eq!(insert_subtree(&d, text, &frag).unwrap_err(), UpdateError::NotAnElement(text));
        assert_eq!(
            insert_subtree(&d, SNodeId(99), &frag).unwrap_err(),
            UpdateError::NodeOutOfRange(SNodeId(99))
        );
        let empty = Document::new();
        assert_eq!(
            insert_subtree(&d, d.root().unwrap(), &empty).unwrap_err(),
            UpdateError::EmptyFragment
        );
    }

    #[test]
    fn insert_into_empty_parent() {
        let d = sdoc("<a><b/></a>");
        let frag = parse_document("<c attr=\"v\">text</c>").unwrap();
        let a = d.root().unwrap();
        let b = d.first_child(a).unwrap();
        let d2 = insert_subtree(&d, b, &frag).unwrap();
        assert_eq!(as_xml(&d2), "<a><b><c attr=\"v\">text</c></b></a>");
    }

    #[test]
    fn insert_as_last_child() {
        let d = sdoc("<list><item>1</item></list>");
        let frag = parse_document("<item>2</item>").unwrap();
        let d2 = insert_subtree(&d, d.root().unwrap(), &frag).unwrap();
        assert_eq!(as_xml(&d2), "<list><item>1</item><item>2</item></list>");
        // And again — repeated local updates compose.
        let frag3 = parse_document("<item>3</item>").unwrap();
        let d3 = insert_subtree(&d2, d2.root().unwrap(), &frag3).unwrap();
        assert_eq!(as_xml(&d3), "<list><item>1</item><item>2</item><item>3</item></list>");
    }

    #[test]
    fn insert_interns_new_tags() {
        let d = sdoc("<a/>");
        let frag = parse_document("<brand-new x=\"1\"/>").unwrap();
        let d2 = insert_subtree(&d, d.root().unwrap(), &frag).unwrap();
        assert!(d2.tag_table().lookup("brand-new").is_some());
        assert_eq!(as_xml(&d2), "<a><brand-new x=\"1\"/></a>");
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let original = "<a><b>keep</b></a>";
        let d = sdoc(original);
        let frag = parse_document("<tmp><deep><er/></deep></tmp>").unwrap();
        let d2 = insert_subtree(&d, d.root().unwrap(), &frag).unwrap();
        let tmp = d2.child_elements(d2.root().unwrap()).nth(1).unwrap();
        assert_eq!(d2.name(tmp), "tmp");
        let d3 = delete_subtree(&d2, tmp).unwrap();
        assert_eq!(as_xml(&d3), original);
    }

    #[test]
    fn update_equals_rebuild() {
        // The spliced document must be behaviourally identical to a fresh
        // encode of the same logical document.
        let d = sdoc("<r><a>1</a><b>2</b></r>");
        let frag = parse_document("<c>3</c>").unwrap();
        let spliced = insert_subtree(&d, d.root().unwrap(), &frag).unwrap();
        let rebuilt = rebuild_full(&parse_document("<r><a>1</a><b>2</b><c>3</c></r>").unwrap());
        assert_eq!(as_xml(&spliced), as_xml(&rebuilt));
        assert_eq!(spliced.node_count(), rebuilt.node_count());
        // Navigation still works after splice.
        let c = spliced.child_elements(spliced.root().unwrap()).nth(2).unwrap();
        assert_eq!(spliced.name(c), "c");
        assert_eq!(spliced.string_value(c), "3");
        assert_eq!(spliced.depth(c), 2);
    }

    #[test]
    fn navigation_after_delete() {
        let d = sdoc("<r><a><x/></a><b><y/></b><c><z/></c></r>");
        let r = d.root().unwrap();
        let b = d.child_elements(r).nth(1).unwrap();
        let d2 = delete_subtree(&d, b).unwrap();
        let r2 = d2.root().unwrap();
        let names: Vec<&str> = d2.child_elements(r2).map(|c| d2.name(c)).collect();
        assert_eq!(names, ["a", "c"]);
        let c = d2.child_elements(r2).nth(1).unwrap();
        let z = d2.first_child(c).unwrap();
        assert_eq!(d2.name(z), "z");
        assert_eq!(d2.parent(z), Some(c));
    }
}
