//! # xqp-storage — succinct physical storage for XML
//!
//! Implements the storage scheme of the paper's §4.2 (and its companion
//! ICDE'04 paper): **structure and content are stored separately**.
//!
//! * The tree structure is linearized in **pre-order as a balanced
//!   parentheses sequence** — 2 bits per node — kept in a [`BitVec`] with a
//!   rank/select directory and a range-min-max tree ([`bp::Bp`]) providing
//!   `find_close` / `find_open` / `enclose` in O(log n) worst case (O(1)
//!   within a block in practice). Pre-order coincides with streaming XML
//!   arrival order, so a [`SuccinctDoc`] can be built directly from a parse
//!   event stream.
//! * Tags live in a [`tags::TagTable`] symbol table plus one `TagId` per node.
//! * Element contents hang off the leaves in a [`content::ContentStore`]
//!   string arena, indexed by content rank.
//! * Content-based secondary indexes are from-scratch **B+-trees**
//!   ([`btree::BPlusTree`], wrapped by [`index::ValueIndex`]).
//! * For the join-based baselines, [`interval::TagStreams`] derives the
//!   classic **region (interval) encoding** `(start, end, level)` per element
//!   — the representation extended-relational systems shred into.
//! * [`update`] implements local subtree insertion/deletion by splicing the
//!   parentheses substring (the paper's update argument), and [`stats`]
//!   accounts storage size for the encoding-size experiment (E12).
//! * [`persist`] makes documents durable: a versioned, checksummed snapshot
//!   format plus a write-ahead log of logical updates, with crash recovery
//!   (torn-tail truncation) and atomic log compaction ([`persist::DocStore`]).

pub mod bitvec;
pub mod bp;
pub mod btree;
pub mod buffer;
pub mod content;
pub mod index;
pub mod interval;
pub mod persist;
pub mod stats;
pub mod succinct;
pub mod suffix;
pub mod tags;
pub mod update;

pub use bitvec::BitVec;
pub use bp::Bp;
pub use btree::BPlusTree;
pub use buffer::{BufferPool, BufferStats, PageRef, PAGE_BYTES};
pub use index::ValueIndex;
pub use interval::{Interval, TagStreams};
pub use persist::{DocStore, PersistError, ReplayReport, StoreCounters, WalOp};
pub use stats::StorageStats;
pub use succinct::{SKind, SNodeId, SuccinctDoc};
pub use suffix::SuffixIndex;
pub use tags::{TagId, TagTable};
pub use update::UpdateError;
