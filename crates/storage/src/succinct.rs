//! The succinct document: structure + tags + content, stored separately.
//!
//! A [`SuccinctDoc`] is the paper's physical representation (§4.2):
//!
//! * structure: a balanced-parentheses sequence over **element, attribute and
//!   text nodes** in pre-order ([`Bp`], 2 bits/node + o(n) directories);
//! * schema: one [`TagId`] per node (attribute nodes carry their attribute
//!   name; text nodes carry the reserved [`TagId::TEXT`]);
//! * content: text/attribute data in a [`ContentStore`], located via a
//!   `has_content` bit vector whose rank gives the content rank — so
//!   structure scans never touch variable-length data.
//!
//! Nodes are addressed by [`SNodeId`], the pre-order rank; comparing two ids
//! compares document order. Attribute nodes are stored as the leading
//! children of their element, preserving the XPath document-order rule.
//!
//! Comments and processing instructions are not stored: the query subset
//! under study never addresses them, and dropping them keeps the structure
//! regular (this is the same simplification the original system makes).

use crate::bitvec::BitVec;
use crate::bp::Bp;
use crate::content::ContentStore;
use crate::tags::{TagId, TagTable, TagVec};
use std::borrow::Cow;
use std::fmt;
use xqp_xml::{Atomic, Document, Event, NodeId, NodeKind};

/// Pre-order rank of a stored node. Ordering is document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SNodeId(pub u32);

impl SNodeId {
    /// The rank as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Kind of a stored node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SKind {
    /// An element.
    Element,
    /// An attribute (leading child of its element).
    Attribute,
    /// A text node (leaf).
    Text,
}

/// A document in succinct physical storage.
#[derive(Debug, Clone)]
pub struct SuccinctDoc {
    bp: Bp,
    /// Per-node tag; `TagId::TEXT` for text nodes.
    tags: TagVec,
    /// Bit per node: is this an attribute node?
    is_attr: BitVec,
    /// Bit per node: does this node carry content (text or attribute)?
    has_content: BitVec,
    content: ContentStore,
    tag_table: TagTable,
}

impl SuccinctDoc {
    // ---- construction -----------------------------------------------------

    /// Encode an arena [`Document`]. Comments and PIs are dropped.
    pub fn from_document(doc: &Document) -> Self {
        let mut b = Builder::new();
        if let Some(root) = doc.root_element() {
            b.walk(doc, root);
        }
        b.finish()
    }

    /// Build from a stream of parse events — the streaming path the paper's
    /// pre-order linearization enables. Comments and PIs are skipped.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut b = Builder::new();
        for ev in events {
            b.push_event(ev);
        }
        b.finish()
    }

    /// Parse and encode in one step.
    pub fn parse(input: &str) -> xqp_xml::Result<Self> {
        let doc = xqp_xml::parse_document(input)?;
        Ok(Self::from_document(&doc))
    }

    /// Assemble from raw parts (used by the update path).
    pub(crate) fn from_parts(
        bits: BitVec,
        tags: Vec<TagId>,
        is_attr: BitVec,
        has_content: BitVec,
        content: ContentStore,
        tag_table: TagTable,
    ) -> Self {
        SuccinctDoc {
            bp: Bp::new(bits),
            tags: TagVec::resident(tags),
            is_attr,
            has_content,
            content,
            tag_table,
        }
    }

    /// Assemble from parts whose heavy components (structure bits, tag ids,
    /// content arena) live behind the buffer pool. The [`Bp`] arrives
    /// pre-built: its directories were computed by the streaming open scan.
    pub(crate) fn from_paged_parts(
        bp: Bp,
        tags: TagVec,
        is_attr: BitVec,
        has_content: BitVec,
        content: ContentStore,
        tag_table: TagTable,
    ) -> Self {
        SuccinctDoc { bp, tags, is_attr, has_content, content, tag_table }
    }

    /// True if any component is backed by the buffer pool rather than RAM.
    pub fn is_paged(&self) -> bool {
        self.bp.bits().is_paged() || self.tags.is_paged() || self.content.is_paged()
    }

    // ---- basic accessors ----------------------------------------------------

    /// Number of stored nodes (elements + attributes + texts).
    pub fn node_count(&self) -> usize {
        self.tags.len()
    }

    /// True if the document stores nothing.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The root element (`n0`), if any.
    pub fn root(&self) -> Option<SNodeId> {
        (!self.is_empty()).then_some(SNodeId(0))
    }

    /// The balanced-parentheses structure (used by tests and stats).
    pub fn bp(&self) -> &Bp {
        &self.bp
    }

    /// The tag symbol table.
    pub fn tag_table(&self) -> &TagTable {
        &self.tag_table
    }

    /// The content store.
    pub fn content_store(&self) -> &ContentStore {
        &self.content
    }

    pub(crate) fn raw_tags(&self) -> &TagVec {
        &self.tags
    }

    pub(crate) fn raw_is_attr(&self) -> &BitVec {
        &self.is_attr
    }

    pub(crate) fn raw_has_content(&self) -> &BitVec {
        &self.has_content
    }

    /// Kind of node `n`.
    pub fn kind(&self, n: SNodeId) -> SKind {
        if self.tags.get(n.index()) == TagId::TEXT {
            SKind::Text
        } else if self.is_attr.get(n.index()) {
            SKind::Attribute
        } else {
            SKind::Element
        }
    }

    /// Tag id of node `n` (`TagId::TEXT` for text nodes).
    pub fn tag(&self, n: SNodeId) -> TagId {
        self.tags.get(n.index())
    }

    /// Tag name of node `n`.
    pub fn name(&self, n: SNodeId) -> &str {
        self.tag_table.name(self.tags.get(n.index()))
    }

    /// True if `n` is an element.
    pub fn is_element(&self, n: SNodeId) -> bool {
        self.kind(n) == SKind::Element
    }

    /// True if `n` is a text node.
    pub fn is_text(&self, n: SNodeId) -> bool {
        self.tags.get(n.index()) == TagId::TEXT
    }

    /// True if `n` is an attribute node.
    pub fn is_attribute(&self, n: SNodeId) -> bool {
        self.kind(n) == SKind::Attribute
    }

    /// The node holding content rank `r` (inverse of the `has_content`
    /// rank mapping); `None` when `r` is out of range.
    pub fn node_of_content_rank(&self, r: usize) -> Option<SNodeId> {
        self.has_content.select1(r).map(|i| SNodeId(i as u32))
    }

    /// Content of a text or attribute node; `None` for elements. Borrowed
    /// when the content arena is resident, assembled from page frames when
    /// it is paged.
    pub fn content(&self, n: SNodeId) -> Option<Cow<'_, str>> {
        if self.has_content.get(n.index()) {
            Some(self.content.get(self.has_content.rank1(n.index())))
        } else {
            None
        }
    }

    // ---- navigation (NoK axes) ---------------------------------------------

    /// Parenthesis position of node `n`.
    #[inline]
    pub fn pos(&self, n: SNodeId) -> usize {
        self.bp.node_select(n.index()).expect("node id in range")
    }

    /// Node at parenthesis position `p` (must be an open paren).
    #[inline]
    pub fn node_at(&self, p: usize) -> SNodeId {
        SNodeId(self.bp.node_rank(p) as u32)
    }

    /// First child (attributes included — they come first).
    pub fn first_child(&self, n: SNodeId) -> Option<SNodeId> {
        self.bp.first_child(self.pos(n)).map(|p| self.node_at(p))
    }

    /// Next sibling.
    pub fn next_sibling(&self, n: SNodeId) -> Option<SNodeId> {
        self.bp.next_sibling(self.pos(n)).map(|p| self.node_at(p))
    }

    /// Parent node.
    pub fn parent(&self, n: SNodeId) -> Option<SNodeId> {
        self.bp.parent(self.pos(n)).map(|p| self.node_at(p))
    }

    /// Nodes in the subtree of `n`, including `n` — contiguous in rank space.
    pub fn subtree(&self, n: SNodeId) -> impl Iterator<Item = SNodeId> {
        let size = self.subtree_size(n);
        (n.0..n.0 + size as u32).map(SNodeId)
    }

    /// Size of the subtree of `n`, including `n`.
    pub fn subtree_size(&self, n: SNodeId) -> usize {
        self.bp.subtree_size(self.pos(n))
    }

    /// Depth of `n` (root element = 1).
    pub fn depth(&self, n: SNodeId) -> usize {
        self.bp.depth(self.pos(n)) as usize
    }

    /// True if `a` is a proper ancestor of `d`.
    pub fn is_ancestor(&self, a: SNodeId, d: SNodeId) -> bool {
        a < d && d.index() < a.index() + self.subtree_size(a)
    }

    /// Children of `n` (attributes included).
    pub fn children(&self, n: SNodeId) -> ChildIter<'_> {
        ChildIter { doc: self, next: self.first_child(n) }
    }

    /// Element children of `n`.
    pub fn child_elements(&self, n: SNodeId) -> impl Iterator<Item = SNodeId> + '_ {
        self.children(n).filter(move |&c| self.is_element(c))
    }

    /// Attribute nodes of element `n` (its leading children).
    pub fn attributes(&self, n: SNodeId) -> impl Iterator<Item = SNodeId> + '_ {
        self.children(n).take_while(move |&c| self.is_attribute(c))
    }

    /// Attribute value by name test.
    pub fn attribute(&self, n: SNodeId, name: &str) -> Option<Cow<'_, str>> {
        // Collect first to drop the iterator borrow before calling content().
        let hit = self.attributes(n).find(|&a| name == "*" || self.name(a) == name)?;
        self.content(hit)
    }

    /// All element nodes in document order.
    pub fn elements(&self) -> impl Iterator<Item = SNodeId> + '_ {
        (0..self.node_count() as u32).map(SNodeId).filter(move |&n| self.is_element(n))
    }

    /// All nodes with the given tag, in document order (a per-tag scan; the
    /// indexed variant lives in [`crate::interval::TagStreams`]).
    pub fn nodes_with_tag(&self, tag: TagId) -> impl Iterator<Item = SNodeId> + '_ {
        (0..self.node_count() as u32).map(SNodeId).filter(move |&n| self.tags.get(n.index()) == tag)
    }

    // ---- values --------------------------------------------------------------

    /// XPath string value: concatenated descendant text for elements, own
    /// content for text/attribute nodes.
    pub fn string_value(&self, n: SNodeId) -> String {
        match self.kind(n) {
            SKind::Text | SKind::Attribute => {
                self.content(n).map(Cow::into_owned).unwrap_or_default()
            }
            SKind::Element => {
                let mut out = String::new();
                for d in self.subtree(n) {
                    if self.is_text(d) {
                        if let Some(c) = self.content(d) {
                            out.push_str(&c);
                        }
                    }
                }
                out
            }
        }
    }

    /// Atomized value of `n` — **untyped** (a string) per the XQuery data
    /// model; comparisons promote it to numbers when the other operand is
    /// numeric.
    pub fn typed_value(&self, n: SNodeId) -> Atomic {
        Atomic::Str(self.string_value(n))
    }

    // ---- export ---------------------------------------------------------------

    /// Region-encoding interval of `n`: `(start, end, level)` with start/end
    /// the open/close parenthesis positions.
    pub fn interval(&self, n: SNodeId) -> (u32, u32, u32) {
        let p = self.pos(n);
        (p as u32, self.bp.find_close(p) as u32, self.depth(n) as u32)
    }

    /// Reconstruct an arena [`Document`] from the stored form.
    pub fn to_document(&self) -> Document {
        let mut doc = Document::new();
        if let Some(root) = self.root() {
            self.rebuild(root, doc.root(), &mut doc);
        }
        doc
    }

    fn rebuild(&self, n: SNodeId, parent: NodeId, doc: &mut Document) {
        match self.kind(n) {
            SKind::Element => {
                let el = doc.append_element(parent, self.name(n));
                for c in self.children(n).collect::<Vec<_>>() {
                    match self.kind(c) {
                        SKind::Attribute => {
                            let name = self.name(c).to_string();
                            let value = self.content(c).map(Cow::into_owned).unwrap_or_default();
                            doc.set_attribute(el, name, value);
                        }
                        _ => self.rebuild(c, el, doc),
                    }
                }
            }
            SKind::Text => {
                doc.append_text(parent, self.content(n).as_deref().unwrap_or_default());
            }
            SKind::Attribute => {
                unreachable!("attributes handled by their element");
            }
        }
    }

    /// Heap bytes of every component (structure, tags, flags, content, table).
    /// Paged components count only their resident side (directories, spans).
    pub fn heap_bytes(&self) -> usize {
        self.bp.heap_bytes()
            + self.tags.heap_bytes()
            + self.is_attr.heap_bytes()
            + self.has_content.heap_bytes()
            + self.content.heap_bytes()
            + self.tag_table.heap_bytes()
    }
}

/// Iterator over the children of a node.
pub struct ChildIter<'a> {
    doc: &'a SuccinctDoc,
    next: Option<SNodeId>,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = SNodeId;

    fn next(&mut self) -> Option<SNodeId> {
        let n = self.next?;
        self.next = self.doc.next_sibling(n);
        Some(n)
    }
}

/// Incremental builder shared by the DOM and streaming paths.
struct Builder {
    bits: BitVec,
    tags: Vec<TagId>,
    is_attr: BitVec,
    has_content: BitVec,
    content: ContentStore,
    tag_table: TagTable,
}

impl Builder {
    fn new() -> Self {
        Builder {
            bits: BitVec::new(),
            tags: Vec::new(),
            is_attr: BitVec::new(),
            has_content: BitVec::new(),
            content: ContentStore::new(),
            tag_table: TagTable::new(),
        }
    }

    fn open(&mut self, tag: TagId, attr: bool, content: Option<&str>) {
        self.bits.push(true);
        self.tags.push(tag);
        self.is_attr.push(attr);
        match content {
            Some(s) => {
                self.has_content.push(true);
                self.content.push(s);
            }
            None => self.has_content.push(false),
        }
    }

    fn close(&mut self) {
        self.bits.push(false);
    }

    fn walk(&mut self, doc: &Document, id: NodeId) {
        match &doc.node(id).kind {
            NodeKind::Element { name, attributes } => {
                let tag = self.tag_table.intern(&name.as_lexical());
                self.open(tag, false, None);
                for &aid in attributes {
                    if let NodeKind::Attribute { name, value } = &doc.node(aid).kind {
                        let tag = self.tag_table.intern(&name.as_lexical());
                        self.open(tag, true, Some(value));
                        self.close();
                    }
                }
                for child in doc.children(id) {
                    self.walk(doc, child);
                }
                self.close();
            }
            NodeKind::Text(t) => {
                self.open(TagId::TEXT, false, Some(t));
                self.close();
            }
            // Comments and PIs are not stored.
            _ => {}
        }
    }

    fn push_event(&mut self, ev: &Event) {
        match ev {
            Event::StartElement { name, attributes, self_closing } => {
                let tag = self.tag_table.intern(&name.as_lexical());
                self.open(tag, false, None);
                for attr in attributes {
                    let tag = self.tag_table.intern(&attr.name.as_lexical());
                    self.open(tag, true, Some(&attr.value));
                    self.close();
                }
                if *self_closing {
                    self.close();
                }
            }
            Event::EndElement { .. } => self.close(),
            Event::Text(t) => {
                self.open(TagId::TEXT, false, Some(t));
                self.close();
            }
            Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
        }
    }

    fn finish(mut self) -> SuccinctDoc {
        self.bits.finish();
        self.is_attr.finish();
        self.has_content.finish();
        SuccinctDoc {
            bp: Bp::new(self.bits),
            tags: TagVec::resident(self.tags),
            is_attr: self.is_attr,
            has_content: self.has_content,
            content: self.content,
            tag_table: self.tag_table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::{parse_document, serialize, Parser};

    const SAMPLE: &str =
        "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title><author>Stevens</author></book><book year=\"2000\"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author></book></bib>";

    fn sdoc(s: &str) -> SuccinctDoc {
        SuccinctDoc::parse(s).unwrap()
    }

    #[test]
    fn node_counts() {
        let d = sdoc(SAMPLE);
        // elements: bib, 2×book, 2×title, 3×author = 8; attrs: 2; texts: 5
        assert_eq!(d.node_count(), 15);
        assert_eq!(d.elements().count(), 8);
    }

    #[test]
    fn roundtrip_through_document() {
        let original = parse_document(SAMPLE).unwrap();
        let d = SuccinctDoc::from_document(&original);
        let back = d.to_document();
        assert_eq!(serialize(&back), SAMPLE);
    }

    #[test]
    fn streaming_build_equals_dom_build() {
        let events: Vec<_> = Parser::new(SAMPLE).collect::<xqp_xml::Result<_>>().unwrap();
        let from_stream = SuccinctDoc::from_events(events.iter());
        let from_dom = sdoc(SAMPLE);
        assert_eq!(serialize(&from_stream.to_document()), serialize(&from_dom.to_document()));
        assert_eq!(from_stream.node_count(), from_dom.node_count());
    }

    #[test]
    fn navigation_matches_structure() {
        let d = sdoc("<a><b><c/></b><d/></a>");
        let a = d.root().unwrap();
        assert_eq!(d.name(a), "a");
        let b = d.first_child(a).unwrap();
        assert_eq!(d.name(b), "b");
        let c = d.first_child(b).unwrap();
        assert_eq!(d.name(c), "c");
        assert_eq!(d.next_sibling(c), None);
        let dd = d.next_sibling(b).unwrap();
        assert_eq!(d.name(dd), "d");
        assert_eq!(d.parent(dd), Some(a));
        assert_eq!(d.parent(a), None);
        assert_eq!(d.depth(c), 3);
        assert_eq!(d.subtree_size(a), 4);
    }

    #[test]
    fn attributes_are_leading_children() {
        let d = sdoc("<a x=\"1\" y=\"2\"><b/></a>");
        let a = d.root().unwrap();
        let kids: Vec<_> = d.children(a).collect();
        assert_eq!(kids.len(), 3);
        assert!(d.is_attribute(kids[0]));
        assert!(d.is_attribute(kids[1]));
        assert!(d.is_element(kids[2]));
        assert_eq!(d.attribute(a, "x").as_deref(), Some("1"));
        assert_eq!(d.attribute(a, "y").as_deref(), Some("2"));
        assert_eq!(d.attribute(a, "z"), None);
        assert_eq!(d.attributes(a).count(), 2);
    }

    #[test]
    fn string_value_excludes_attributes() {
        let d = sdoc("<a x=\"ATTR\">t1<b>t2</b></a>");
        let a = d.root().unwrap();
        assert_eq!(d.string_value(a), "t1t2");
    }

    #[test]
    fn typed_value_is_untyped_atomic() {
        let d = sdoc("<n>42</n>");
        // Untyped: numeric interpretation happens at comparison time.
        assert_eq!(d.typed_value(d.root().unwrap()), Atomic::Str("42".into()));
        assert_eq!(d.typed_value(d.root().unwrap()).as_number(), Some(42.0));
    }

    #[test]
    fn subtree_is_contiguous_rank_range() {
        let d = sdoc(SAMPLE);
        let bib = d.root().unwrap();
        let book1 = d.child_elements(bib).next().unwrap();
        let subtree: Vec<_> = d.subtree(book1).collect();
        // book + @year + title + title-text + author + author-text = 6 nodes
        assert_eq!(subtree.len(), 6);
        assert!(subtree.windows(2).all(|w| w[1].0 == w[0].0 + 1));
    }

    #[test]
    fn is_ancestor_via_ranks() {
        let d = sdoc("<a><b><c/></b><d/></a>");
        let a = d.root().unwrap();
        let b = d.first_child(a).unwrap();
        let c = d.first_child(b).unwrap();
        let dd = d.next_sibling(b).unwrap();
        assert!(d.is_ancestor(a, c));
        assert!(d.is_ancestor(b, c));
        assert!(!d.is_ancestor(b, dd));
        assert!(!d.is_ancestor(c, b));
        assert!(!d.is_ancestor(a, a));
    }

    #[test]
    fn intervals_nest_properly() {
        let d = sdoc(SAMPLE);
        let bib = d.root().unwrap();
        let (s0, e0, l0) = d.interval(bib);
        assert_eq!(l0, 1);
        for n in d.elements().skip(1) {
            let (s, e, _) = d.interval(n);
            assert!(s0 < s && e < e0, "child interval inside root");
            assert!(s < e);
        }
    }

    #[test]
    fn nodes_with_tag_scan() {
        let d = sdoc(SAMPLE);
        let author = d.tag_table().lookup("author").unwrap();
        assert_eq!(d.nodes_with_tag(author).count(), 3);
    }

    #[test]
    fn mixed_content_roundtrip() {
        let s = "<p>one <em>two</em> three</p>";
        let d = sdoc(s);
        assert_eq!(serialize(&d.to_document()), s);
        assert_eq!(d.string_value(d.root().unwrap()), "one two three");
    }

    #[test]
    fn comments_and_pis_dropped() {
        let d = sdoc("<a><!--c--><?pi x?><b/></a>");
        assert_eq!(d.node_count(), 2);
        assert_eq!(serialize(&d.to_document()), "<a><b/></a>");
    }

    #[test]
    fn node_of_content_rank_inverts_content() {
        let d = sdoc("<a x=\"v1\">t1<b>t2</b></a>");
        for r in 0..d.content_store().len() {
            let n = d.node_of_content_rank(r).unwrap();
            assert_eq!(d.content(n), Some(d.content_store().get(r)));
        }
        assert_eq!(d.node_of_content_rank(99), None);
    }

    #[test]
    fn content_by_rank_lookup() {
        let d = sdoc("<a x=\"v1\">t1<b>t2</b></a>");
        // In pre-order: a(elem), x(attr,v1), text(t1), b(elem), text(t2)
        assert_eq!(d.content(SNodeId(1)).as_deref(), Some("v1"));
        assert_eq!(d.content(SNodeId(2)).as_deref(), Some("t1"));
        assert_eq!(d.content(SNodeId(0)), None);
        assert_eq!(d.content(SNodeId(4)).as_deref(), Some("t2"));
    }

    #[test]
    fn empty_and_whitespace_text() {
        let d = sdoc("<a> </a>");
        let a = d.root().unwrap();
        assert_eq!(d.string_value(a), " ");
    }

    #[test]
    fn heap_bytes_positive() {
        let d = sdoc(SAMPLE);
        assert!(d.heap_bytes() > 0);
    }
}
