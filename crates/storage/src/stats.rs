//! Storage-size accounting (experiment E12).
//!
//! The paper's storage claim is that the succinct scheme — 2 bits/node of
//! structure plus dense tag ids — is far smaller than either a pointer-based
//! DOM or the shredded interval tables relational approaches use.
//! [`StorageStats`] measures all three representations of the same document
//! so the `report` harness can print the comparison.

use crate::interval::TagStreams;
use crate::succinct::SuccinctDoc;
use xqp_xml::{Document, NodeKind};

/// Byte sizes of one document under the three physical representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Stored nodes (elements + attributes + texts).
    pub nodes: usize,
    /// Succinct structure: parentheses + rank directory + min-max tree.
    pub succinct_structure: usize,
    /// Tag ids + kind/content bit vectors + symbol table.
    pub succinct_schema: usize,
    /// Content arena + spans.
    pub succinct_content: usize,
    /// Pointer-based arena DOM estimate for the same document.
    pub dom_bytes: usize,
    /// Interval-table (shredded relational) estimate: per-tag streams +
    /// content.
    pub interval_bytes: usize,
}

impl StorageStats {
    /// Measure `sdoc` and the equivalent DOM/interval representations.
    pub fn measure(doc: &Document, sdoc: &SuccinctDoc) -> Self {
        let streams = TagStreams::build(sdoc);
        let succinct_structure = sdoc.bp().heap_bytes();
        let succinct_schema = sdoc.raw_tags().len() * 4
            + sdoc.raw_is_attr().heap_bytes()
            + sdoc.raw_has_content().heap_bytes()
            + sdoc.tag_table().heap_bytes();
        let succinct_content = sdoc.content_store().heap_bytes();
        StorageStats {
            nodes: sdoc.node_count(),
            succinct_structure,
            succinct_schema,
            succinct_content,
            dom_bytes: dom_bytes(doc),
            interval_bytes: streams.heap_bytes() + succinct_content,
        }
    }

    /// Total bytes of the succinct representation.
    pub fn succinct_total(&self) -> usize {
        self.succinct_structure + self.succinct_schema + self.succinct_content
    }

    /// Structure bits per node in the succinct encoding (paper target: 2 + o(1)
    /// per parenthesis pair, i.e. a small constant).
    pub fn structure_bits_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        (self.succinct_structure * 8) as f64 / self.nodes as f64
    }
}

/// Estimate the heap footprint of the arena DOM.
fn dom_bytes(doc: &Document) -> usize {
    let mut total = doc.len() * std::mem::size_of::<xqp_xml::Node>();
    for i in 0..doc.len() as u32 {
        let id = xqp_xml::NodeId(i);
        match &doc.node(id).kind {
            NodeKind::Element { name, attributes } => {
                total += name.local.len() + attributes.capacity() * 4;
            }
            NodeKind::Attribute { name, value } => total += name.local.len() + value.len(),
            NodeKind::Text(t) | NodeKind::Comment(t) => total += t.len(),
            NodeKind::Pi { target, data } => total += target.len() + data.len(),
            NodeKind::Document => {}
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::parse_document;

    fn flat_doc(n: usize) -> String {
        let mut s = String::from("<root>");
        for i in 0..n {
            s.push_str(&format!("<item id=\"{i}\"><v>{i}</v></item>"));
        }
        s.push_str("</root>");
        s
    }

    #[test]
    fn succinct_structure_beats_dom_and_intervals() {
        let xml = flat_doc(2000);
        let doc = parse_document(&xml).unwrap();
        let sdoc = SuccinctDoc::from_document(&doc);
        let st = StorageStats::measure(&doc, &sdoc);
        // The structural part of the succinct encoding must be dramatically
        // smaller than the DOM (pointers) and the interval tables.
        assert!(st.succinct_structure * 8 < st.dom_bytes, "{st:?}");
        assert!(st.succinct_structure * 4 < st.interval_bytes, "{st:?}");
    }

    #[test]
    fn structure_bits_per_node_is_small_constant() {
        let xml = flat_doc(5000);
        let doc = parse_document(&xml).unwrap();
        let sdoc = SuccinctDoc::from_document(&doc);
        let st = StorageStats::measure(&doc, &sdoc);
        let bpn = st.structure_bits_per_node();
        // 2 bits of parentheses + directory + min-max tree ≈ well under 8.
        assert!(bpn > 1.9 && bpn < 8.0, "bits/node = {bpn}");
    }

    #[test]
    fn totals_add_up() {
        let doc = parse_document("<a><b>x</b></a>").unwrap();
        let sdoc = SuccinctDoc::from_document(&doc);
        let st = StorageStats::measure(&doc, &sdoc);
        assert_eq!(
            st.succinct_total(),
            st.succinct_structure + st.succinct_schema + st.succinct_content
        );
        assert_eq!(st.nodes, 3);
    }
}
