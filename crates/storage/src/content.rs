//! Content store: the "data information" half of the storage split.
//!
//! Text and attribute values are appended to one string arena; each content-
//! bearing node stores a `(offset, len)` span. Separating content from
//! structure is what lets the engine scan structure without touching
//! variable-length data, and lets content indexes (B+-trees) be built over
//! this store alone (§4.2).
//!
//! The arena is either resident (one `String`) or paged — raw UTF-8 bytes
//! fetched on demand from a [`PageFile`](crate::persist::page::PageFile)
//! section through the buffer pool. The span table is always resident (8
//! bytes per content string). [`ContentStore::get`] therefore returns a
//! [`Cow`]: borrowed from the resident arena, assembled across page frames
//! otherwise.

use crate::buffer::{BufferPool, PAGE_BYTES};
use crate::persist::page::PageFile;
use std::borrow::Cow;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Arena {
    Resident(String),
    Paged { pool: Arc<BufferPool>, file: Arc<PageFile>, first_page: u64, byte_len: usize },
}

impl Default for Arena {
    fn default() -> Self {
        Arena::Resident(String::new())
    }
}

/// Append-only string arena addressed by content rank.
#[derive(Debug, Clone, Default)]
pub struct ContentStore {
    arena: Arena,
    spans: Vec<(u32, u32)>,
}

impl ContentStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an already-assembled arena and span table (the paged read path
    /// validates spans and UTF-8 before calling this).
    pub(crate) fn from_arena_spans(arena: String, spans: Vec<(u32, u32)>) -> Self {
        ContentStore { arena: Arena::Resident(arena), spans }
    }

    /// A store whose arena bytes live in `file` starting at `first_page`,
    /// fetched through `pool`. Spans must already be validated against
    /// `byte_len`.
    pub(crate) fn paged(
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        first_page: u64,
        byte_len: usize,
        spans: Vec<(u32, u32)>,
    ) -> Self {
        ContentStore { arena: Arena::Paged { pool, file, first_page, byte_len }, spans }
    }

    /// True if the arena lives behind the buffer pool.
    pub fn is_paged(&self) -> bool {
        matches!(self.arena, Arena::Paged { .. })
    }

    /// Append one content string; returns its content rank.
    ///
    /// # Panics
    /// Panics on a paged store — paged arenas are immutable; updates splice
    /// into a fresh resident store.
    pub fn push(&mut self, s: &str) -> usize {
        let Arena::Resident(arena) = &mut self.arena else {
            panic!("push on a paged content store");
        };
        let off = arena.len() as u32;
        arena.push_str(s);
        self.spans.push((off, s.len() as u32));
        self.spans.len() - 1
    }

    /// The content string at `rank`: borrowed when resident, assembled from
    /// page frames when paged.
    ///
    /// # Panics
    /// Panics if `rank` is out of bounds, or (paged) if the stored bytes are
    /// not valid UTF-8 — the writer only emits valid UTF-8 and every frame
    /// is CRC-sealed, so that indicates corruption the CRC missed.
    pub fn get(&self, rank: usize) -> Cow<'_, str> {
        let (off, len) = self.spans[rank];
        match &self.arena {
            Arena::Resident(arena) => Cow::Borrowed(&arena[off as usize..(off + len) as usize]),
            Arena::Paged { .. } => {
                let mut bytes = Vec::with_capacity(len as usize);
                self.arena_bytes(off as usize, len as usize, &mut |chunk| {
                    bytes.extend_from_slice(chunk)
                });
                Cow::Owned(String::from_utf8(bytes).expect("paged content span is not valid UTF-8"))
            }
        }
    }

    /// Walk `len` arena bytes starting at `off`, chunk by chunk.
    fn arena_bytes(&self, off: usize, len: usize, f: &mut impl FnMut(&[u8])) {
        let Arena::Paged { pool, file, first_page, byte_len } = &self.arena else {
            unreachable!("arena_bytes is only called on paged stores");
        };
        assert!(off + len <= *byte_len, "arena range escapes the section");
        let mut pos = off;
        let end = off + len;
        while pos < end {
            let page = first_page + (pos / PAGE_BYTES) as u64;
            let in_page = pos % PAGE_BYTES;
            let take = (PAGE_BYTES - in_page).min(end - pos);
            let guard = pool.fetch(file, page);
            f(&guard[in_page..in_page + take]);
            pos += take;
        }
    }

    /// Number of stored strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total arena bytes (meaningful bytes, not page-padded).
    pub fn arena_len(&self) -> usize {
        match &self.arena {
            Arena::Resident(arena) => arena.len(),
            Arena::Paged { byte_len, .. } => *byte_len,
        }
    }

    /// The `(offset, len)` span table, in rank order.
    pub fn spans(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.spans.iter().copied()
    }

    /// Stream the raw arena bytes through `f` in order, one chunk at a time
    /// (at most a page per chunk when paged; one chunk when resident) — the
    /// serialization path, which must not materialize a paged arena whole.
    pub fn for_each_arena_chunk<E>(
        &self,
        f: &mut impl FnMut(&[u8]) -> Result<(), E>,
    ) -> Result<(), E> {
        match &self.arena {
            Arena::Resident(arena) => {
                if !arena.is_empty() {
                    f(arena.as_bytes())?;
                }
                Ok(())
            }
            Arena::Paged { byte_len, .. } => {
                let mut pending = Ok(());
                self.arena_bytes(0, *byte_len, &mut |chunk| {
                    if pending.is_ok() {
                        pending = f(chunk);
                    }
                });
                pending
            }
        }
    }

    /// Iterate `(rank, text)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Cow<'_, str>)> {
        (0..self.spans.len()).map(move |r| (r, self.get(r)))
    }

    /// Rebuild the store keeping only ranks where `keep(rank)` is true and
    /// splicing `inserted` strings at `at` (in rank space). Returns the store
    /// used by subtree updates: content is re-packed so spans stay compact.
    /// Always produces a resident store, even from a paged source.
    pub fn splice(&self, at: usize, removed: usize, inserted: &[&str]) -> ContentStore {
        let mut out = ContentStore::new();
        for r in 0..at {
            out.push(&self.get(r));
        }
        for s in inserted {
            out.push(s);
        }
        for r in at + removed..self.len() {
            out.push(&self.get(r));
        }
        out
    }

    /// Heap bytes held resident (arena + spans; a paged arena keeps only
    /// its spans resident).
    pub fn heap_bytes(&self) -> usize {
        let arena = match &self.arena {
            Arena::Resident(a) => a.len(),
            Arena::Paged { .. } => 0,
        };
        arena + self.spans.len() * 8
    }
}

impl PartialEq for ContentStore {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for ContentStore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = ContentStore::new();
        let a = c.push("hello");
        let b = c.push("");
        let d = c.push("wörld");
        assert_eq!(c.get(a), "hello");
        assert_eq!(c.get(b), "");
        assert_eq!(c.get(d), "wörld");
        assert_eq!(c.len(), 3);
        assert_eq!(c.arena_len(), "hello".len() + "wörld".len());
    }

    #[test]
    fn iter_in_rank_order() {
        let mut c = ContentStore::new();
        c.push("a");
        c.push("b");
        let v: Vec<(usize, Cow<'_, str>)> = c.iter().collect();
        assert_eq!(v, [(0, Cow::Borrowed("a")), (1, Cow::Borrowed("b"))]);
    }

    #[test]
    fn splice_replaces_middle() {
        let mut c = ContentStore::new();
        for s in ["a", "b", "c", "d"] {
            c.push(s);
        }
        let out = c.splice(1, 2, &["X", "Y", "Z"]);
        let v: Vec<String> = out.iter().map(|(_, s)| s.into_owned()).collect();
        assert_eq!(v, ["a", "X", "Y", "Z", "d"]);
    }

    #[test]
    fn splice_at_ends() {
        let mut c = ContentStore::new();
        c.push("m");
        let front = c.splice(0, 0, &["f"]);
        assert_eq!(front.iter().map(|(_, s)| s.into_owned()).collect::<Vec<_>>(), ["f", "m"]);
        let back = c.splice(1, 0, &["b"]);
        assert_eq!(back.iter().map(|(_, s)| s.into_owned()).collect::<Vec<_>>(), ["m", "b"]);
        let gone = c.splice(0, 1, &[]);
        assert!(gone.is_empty());
    }

    #[test]
    fn arena_streams_in_one_resident_chunk() {
        let mut c = ContentStore::new();
        c.push("ab");
        c.push("cd");
        let mut seen = Vec::new();
        c.for_each_arena_chunk::<()>(&mut |chunk| {
            seen.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, b"abcd");
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut c = ContentStore::new();
        let before = c.heap_bytes();
        c.push("0123456789");
        assert!(c.heap_bytes() > before);
    }
}
