//! Content store: the "data information" half of the storage split.
//!
//! Text and attribute values are appended to one string arena; each content-
//! bearing node stores a `(offset, len)` span. Separating content from
//! structure is what lets the engine scan structure without touching
//! variable-length data, and lets content indexes (B+-trees) be built over
//! this store alone (§4.2).

/// Append-only string arena addressed by content rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentStore {
    arena: String,
    spans: Vec<(u32, u32)>,
}

impl ContentStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one content string; returns its content rank.
    pub fn push(&mut self, s: &str) -> usize {
        let off = self.arena.len() as u32;
        self.arena.push_str(s);
        self.spans.push((off, s.len() as u32));
        self.spans.len() - 1
    }

    /// The content string at `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of bounds.
    pub fn get(&self, rank: usize) -> &str {
        let (off, len) = self.spans[rank];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Number of stored strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate `(rank, text)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        (0..self.spans.len()).map(move |r| (r, self.get(r)))
    }

    /// Rebuild the store keeping only ranks where `keep(rank)` is true and
    /// splicing `inserted` strings at `at` (in rank space). Returns the store
    /// used by subtree updates: content is re-packed so spans stay compact.
    pub fn splice(&self, at: usize, removed: usize, inserted: &[&str]) -> ContentStore {
        let mut out = ContentStore::new();
        for r in 0..at {
            out.push(self.get(r));
        }
        for s in inserted {
            out.push(s);
        }
        for r in at + removed..self.len() {
            out.push(self.get(r));
        }
        out
    }

    /// Heap bytes used (arena + spans).
    pub fn heap_bytes(&self) -> usize {
        self.arena.len() + self.spans.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = ContentStore::new();
        let a = c.push("hello");
        let b = c.push("");
        let d = c.push("wörld");
        assert_eq!(c.get(a), "hello");
        assert_eq!(c.get(b), "");
        assert_eq!(c.get(d), "wörld");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn iter_in_rank_order() {
        let mut c = ContentStore::new();
        c.push("a");
        c.push("b");
        let v: Vec<(usize, &str)> = c.iter().collect();
        assert_eq!(v, [(0, "a"), (1, "b")]);
    }

    #[test]
    fn splice_replaces_middle() {
        let mut c = ContentStore::new();
        for s in ["a", "b", "c", "d"] {
            c.push(s);
        }
        let out = c.splice(1, 2, &["X", "Y", "Z"]);
        let v: Vec<&str> = out.iter().map(|(_, s)| s).collect();
        assert_eq!(v, ["a", "X", "Y", "Z", "d"]);
    }

    #[test]
    fn splice_at_ends() {
        let mut c = ContentStore::new();
        c.push("m");
        let front = c.splice(0, 0, &["f"]);
        assert_eq!(front.iter().map(|(_, s)| s).collect::<Vec<_>>(), ["f", "m"]);
        let back = c.splice(1, 0, &["b"]);
        assert_eq!(back.iter().map(|(_, s)| s).collect::<Vec<_>>(), ["m", "b"]);
        let gone = c.splice(0, 1, &[]);
        assert!(gone.is_empty());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut c = ContentStore::new();
        let before = c.heap_bytes();
        c.push("0123456789");
        assert!(c.heap_bytes() > before);
    }
}
