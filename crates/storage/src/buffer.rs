//! Pinning buffer pool with clock (second-chance) eviction.
//!
//! The paged storage layer (see `persist::page`) splits a document's raw
//! byte sequences — parentheses words, tag ids, content arena — into fixed
//! [`PAGE_BYTES`] frames on disk. A [`BufferPool`] caps how many of those
//! frames are resident at once: every read goes through [`BufferPool::fetch`],
//! which returns a [`PageRef`] pin guard. While a guard is alive the frame
//! cannot be evicted; when the pool is over capacity a clock hand sweeps
//! unpinned frames, giving each a second chance via its reference bit, the
//! classic CLOCK approximation of LRU (the bustub `buffer/` idiom).
//!
//! Frames are keyed by `(file_uid, page_index)` where `file_uid` is unique
//! per *open file object*, never reused for the lifetime of the process.
//! That is what keeps MVCC snapshots safe: when a compaction renames a new
//! generation over `pages.xqp`, readers of the old generation still hold the
//! old [`PageFile`](crate::persist::page::PageFile) (and therefore the old
//! POSIX inode) — an evicted old-generation page is re-fetched from the old
//! file object under the old uid, never from the newer generation's bytes.
//!
//! The pool never blocks on pins: if every frame is pinned it temporarily
//! overcommits (and counts that in [`BufferStats::overcommits`]) rather than
//! deadlock. Page reads happen *outside* the pool lock, so a slow disk does
//! not serialize unrelated fetches.

use crate::persist::page::PageFile;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Payload bytes per page; frames on disk add a 4-byte CRC (see
/// [`crate::persist::page::FRAME_BYTES`]).
pub const PAGE_BYTES: usize = 4096;

/// A resident copy of one on-disk page.
struct Frame {
    data: Vec<u8>,
    /// Number of live [`PageRef`] guards; only unpinned frames are evictable.
    pins: AtomicU64,
    /// Second-chance bit: set on every hit, cleared by the clock hand.
    referenced: AtomicBool,
}

/// Live counters shared between the pool and its pin guards.
#[derive(Default)]
struct PoolCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_peak: AtomicU64,
    pinned_now: AtomicU64,
    pinned_peak: AtomicU64,
    overcommits: AtomicU64,
}

struct PoolInner {
    frames: HashMap<(u64, u64), Arc<Frame>>,
    /// Clock order; entries are lazily dropped when their frame is gone.
    clock: Vec<(u64, u64)>,
    hand: usize,
}

/// Snapshot of the pool's counters, surfaced through
/// `Database::buffer_stats()` and the executor's `explain` footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Configured frame capacity.
    pub capacity: u64,
    /// Frames resident right now.
    pub resident: u64,
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the page from disk.
    pub misses: u64,
    /// Frames dropped by the clock sweep.
    pub evictions: u64,
    /// High-water mark of resident frames (overcommit shows up here).
    pub resident_peak: u64,
    /// High-water mark of simultaneously pinned frames.
    pub pinned_peak: u64,
    /// Times the sweep found every frame pinned and grew past capacity
    /// instead of blocking.
    pub overcommits: u64,
}

/// Pin guard over one resident page. Derefs to the page's payload bytes;
/// dropping it unpins the frame, making it evictable again.
pub struct PageRef {
    frame: Arc<Frame>,
    counters: Arc<PoolCounters>,
}

impl Deref for PageRef {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.frame.data
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Release);
        self.counters.pinned_now.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Shared, thread-safe pool of page frames. See the module docs.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    counters: Arc<PoolCounters>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(f, "BufferPool({s:?})")
    }
}

impl BufferPool {
    /// A pool holding at most `pages` frames (minimum 2 — a single frame
    /// cannot serve a fetch that straddles two pages).
    pub fn new(pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            capacity: pages.max(2),
            inner: Mutex::new(PoolInner { frames: HashMap::new(), clock: Vec::new(), hand: 0 }),
            counters: Arc::new(PoolCounters::default()),
        })
    }

    /// Configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A panic while holding the pool lock leaves only counters/frames in
        // a consistent-enough state; recover rather than poison every reader.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn pin(&self, frame: &Arc<Frame>) {
        frame.pins.fetch_add(1, Ordering::Acquire);
        frame.referenced.store(true, Ordering::Relaxed);
        let now = self.counters.pinned_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.counters.pinned_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Fetch `page` of `file`, pinning it for the lifetime of the returned
    /// guard. Panics if the page cannot be read or fails its CRC — paged
    /// navigation APIs are infallible, so detected on-disk corruption of a
    /// sealed page is treated as fatal (see `PageFile::read_page_trusted`).
    pub fn fetch(&self, file: &PageFile, page: u64) -> PageRef {
        let key = (file.uid(), page);
        if let Some(frame) = self.lock().frames.get(&key).cloned() {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            self.pin(&frame);
            return PageRef { frame, counters: Arc::clone(&self.counters) };
        }
        // Miss: read outside the lock so disk latency never serializes the
        // pool. Two racing readers of the same page both read; one insert
        // wins and the duplicate copy is dropped.
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let data = file.read_page_trusted(page);
        let mut inner = self.lock();
        let frame = match inner.frames.get(&key) {
            Some(f) => Arc::clone(f),
            None => {
                let f = Arc::new(Frame {
                    data,
                    pins: AtomicU64::new(0),
                    referenced: AtomicBool::new(true),
                });
                inner.frames.insert(key, Arc::clone(&f));
                inner.clock.push(key);
                f
            }
        };
        self.pin(&frame);
        self.evict_to_capacity(&mut inner);
        self.counters.resident_peak.fetch_max(inner.frames.len() as u64, Ordering::Relaxed);
        drop(inner);
        PageRef { frame, counters: Arc::clone(&self.counters) }
    }

    /// Clock sweep: evict unpinned frames (second chance via the reference
    /// bit) until at or under capacity. If a full double sweep finds nothing
    /// evictable, give up and overcommit rather than deadlock on pins.
    fn evict_to_capacity(&self, inner: &mut PoolInner) {
        let mut budget = inner.clock.len().saturating_mul(2);
        while inner.frames.len() > self.capacity {
            if budget == 0 {
                self.counters.overcommits.fetch_add(1, Ordering::Relaxed);
                break;
            }
            budget -= 1;
            if inner.clock.is_empty() {
                break;
            }
            let pos = inner.hand % inner.clock.len();
            let key = inner.clock[pos];
            let Some(frame) = inner.frames.get(&key) else {
                // Stale clock entry (purged file); drop it in place.
                inner.clock.swap_remove(pos);
                continue;
            };
            if frame.pins.load(Ordering::Acquire) > 0 {
                inner.hand = pos + 1;
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                inner.hand = pos + 1;
                continue;
            }
            inner.frames.remove(&key);
            inner.clock.swap_remove(pos);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every resident frame of `file_uid`. Called when a [`PageFile`]
    /// is dropped so dead generations do not squat in the pool.
    pub(crate) fn purge(&self, file_uid: u64) {
        let mut inner = self.lock();
        inner.frames.retain(|k, _| k.0 != file_uid);
        inner.clock.retain(|k| k.0 != file_uid);
        inner.hand = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        let resident = self.lock().frames.len() as u64;
        let c = &self.counters;
        BufferStats {
            capacity: self.capacity as u64,
            resident,
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            resident_peak: c.resident_peak.load(Ordering::Relaxed),
            pinned_peak: c.pinned_peak.load(Ordering::Relaxed),
            overcommits: c.overcommits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::page::{write_paged_snapshot, PageFile};
    use crate::succinct::SuccinctDoc;

    fn paged_file(dir: &std::path::Path, items: usize) -> Arc<PageFile> {
        let mut xml = String::from("<r>");
        for i in 0..items {
            xml.push_str(&format!("<item id=\"{i}\"><v>value-{i}-padding-padding</v></item>"));
        }
        xml.push_str("</r>");
        let doc = SuccinctDoc::parse(&xml).unwrap();
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("pages.xqp");
        write_paged_snapshot(&path, &doc, 0).unwrap();
        Arc::new(PageFile::open(&path).unwrap())
    }

    #[test]
    fn hits_misses_and_cap_respected() {
        let dir = tempdir();
        let file = paged_file(&dir, 400);
        let pool = BufferPool::new(4);
        let n = file.page_count();
        assert!(n > 8, "want >8 pages, got {n}");
        for round in 0..3 {
            for p in 0..n {
                let g = pool.fetch(&file, p);
                assert_eq!(g.len(), PAGE_BYTES);
                drop(g);
                let s = pool.stats();
                assert!(s.resident <= s.capacity, "round {round}: {s:?}");
            }
        }
        let s = pool.stats();
        assert!(s.misses >= n, "{s:?}");
        assert!(s.evictions > 0, "{s:?}");
        assert!(s.resident_peak <= s.capacity, "{s:?}");
        // Repeated full scans over a tiny pool mostly miss; a pool big
        // enough to hold everything mostly hits.
        let big = BufferPool::new(n as usize + 1);
        for _ in 0..3 {
            for p in 0..n {
                drop(big.fetch(&file, p));
            }
        }
        let sb = big.stats();
        assert_eq!(sb.misses, n, "{sb:?}");
        assert_eq!(sb.hits, 2 * n, "{sb:?}");
        assert_eq!(sb.evictions, 0, "{sb:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pins_block_eviction_and_overcommit_counts() {
        let dir = tempdir();
        let file = paged_file(&dir, 400);
        let pool = BufferPool::new(2);
        let n = file.page_count();
        assert!(n >= 6);
        // Pin 4 pages at once in a pool of 2: the pool must overcommit, and
        // no pinned page may be evicted (the guards must stay readable).
        let guards: Vec<PageRef> = (0..4).map(|p| pool.fetch(&file, p)).collect();
        let s = pool.stats();
        assert!(s.resident >= 4, "{s:?}");
        assert!(s.overcommits > 0, "{s:?}");
        assert!(s.pinned_peak >= 4, "{s:?}");
        for g in &guards {
            assert_eq!(g.len(), PAGE_BYTES);
        }
        drop(guards);
        // With pins released the next fetch sweeps back under capacity.
        drop(pool.fetch(&file, 5));
        let s = pool.stats();
        assert!(s.resident <= s.capacity, "{s:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn purge_removes_only_that_file() {
        let dir = tempdir();
        let f1 = paged_file(&dir.join("a"), 100);
        let f2 = paged_file(&dir.join("b"), 100);
        let pool = BufferPool::new(64);
        drop(pool.fetch(&f1, 0));
        drop(pool.fetch(&f2, 0));
        assert_eq!(pool.stats().resident, 2);
        pool.purge(f1.uid());
        assert_eq!(pool.stats().resident, 1);
        // f2's frame is still a hit.
        drop(pool.fetch(&f2, 0));
        assert_eq!(pool.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tempdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "xqp-buffer-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
