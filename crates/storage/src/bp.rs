//! Balanced parentheses with O(log n) navigation.
//!
//! The paper's storage scheme linearizes the XML tree in pre-order and keeps
//! "balanced parentheses to denote the beginning and ending of a subtree"
//! (§4.2). [`Bp`] is that sequence — open = 1, close = 0 — augmented with a
//! **range-min-max tree** over fixed-size blocks of the excess sequence, the
//! standard succinct-tree machinery (Navarro & Sadakane): `find_close`,
//! `find_open` and `enclose` run in O(log n) worst case and O(1) when the
//! answer falls in the same block, which for the local (NoK) axes is the
//! common case.
//!
//! The block size is a build parameter: resident sequences use
//! [`BLOCK_BITS`] (256) for the tightest scans; paged sequences use
//! [`PAGED_BLOCK_BITS`] (1024), which divides the page size so one block
//! scan pins exactly one page. The min-max tree itself is always resident —
//! it is the per-block excess/min-excess *directory*; only the raw
//! parentheses live behind the pool. All block scans are word-wise through a
//! [`WordCursor`], so a paged scan costs one pool fetch per page, not per
//! bit.
//!
//! Tree-shape operations are derived from the primitives:
//! `first_child(p) = p+1` (if open), `next_sibling(p) = find_close(p)+1`
//! (if open), `parent(p) = enclose(p)` — exactly the next-of-kin
//! relationships the NoK evaluator navigates.

use crate::bitvec::{BitVec, WordCursor};

/// Bits per range-min-max block for resident sequences.
const BLOCK_BITS: usize = 256;
/// Bits per range-min-max block for paged sequences: divides the 32768-bit
/// page exactly, so no block straddles two pages.
pub(crate) const PAGED_BLOCK_BITS: usize = 1024;

/// Aggregate of one block (or subtree of blocks) of the excess sequence.
/// `min`/`max` are relative to the excess at the block's start; `total` is
/// the block's net excess change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Agg {
    total: i32,
    min: i32,
    max: i32,
}

impl Agg {
    /// Identity element: skipping this block changes nothing and can never
    /// contain a target excess.
    const NEUTRAL: Agg = Agg { total: 0, min: i32::MAX, max: i32::MIN };

    fn merge(l: Agg, r: Agg) -> Agg {
        if l.min == i32::MAX {
            return r;
        }
        if r.min == i32::MAX {
            return l;
        }
        Agg {
            total: l.total + r.total,
            min: l.min.min(l.total + r.min),
            max: l.max.max(l.total + r.max),
        }
    }
}

/// Builds per-block [`Agg`] leaves from a streamed word sequence — shared by
/// the resident build and the paged-open directory scan, so both produce
/// identical leaves without materializing bits.
pub(crate) struct AggBuilder {
    block_words: usize,
    leaves: Vec<Agg>,
    e: i32,
    mn: i32,
    mx: i32,
    words_in_block: usize,
    bits_in_block: usize,
}

impl AggBuilder {
    pub(crate) fn new(block_bits: usize, len_bits: usize) -> Self {
        assert!(block_bits.is_multiple_of(64), "block size must be whole words");
        AggBuilder {
            block_words: block_bits / 64,
            leaves: Vec::with_capacity(len_bits.div_ceil(block_bits)),
            e: 0,
            mn: i32::MAX,
            mx: i32::MIN,
            words_in_block: 0,
            bits_in_block: 0,
        }
    }

    fn flush_block(&mut self) {
        self.leaves.push(Agg { total: self.e, min: self.mn, max: self.mx });
        self.e = 0;
        self.mn = i32::MAX;
        self.mx = i32::MIN;
        self.words_in_block = 0;
        self.bits_in_block = 0;
    }

    /// Feed the next word; `bits_here` is how many of its low bits are in
    /// range (64 except possibly the last word).
    pub(crate) fn push_word(&mut self, w: u64, bits_here: usize) {
        for i in 0..bits_here {
            self.e += if (w >> i) & 1 == 1 { 1 } else { -1 };
            self.mn = self.mn.min(self.e);
            self.mx = self.mx.max(self.e);
        }
        self.bits_in_block += bits_here;
        self.words_in_block += 1;
        if self.words_in_block == self.block_words {
            self.flush_block();
        }
    }

    pub(crate) fn finish(mut self) -> Vec<Agg> {
        if self.bits_in_block > 0 {
            self.flush_block();
        }
        self.leaves
    }
}

/// A balanced-parentheses tree encoding with rank/select and range-min-max
/// navigation.
#[derive(Debug, Clone)]
pub struct Bp {
    bits: BitVec,
    /// Heap-layout segment tree over blocks; `tree[1]` is the root and the
    /// leaves start at `leaf_base`.
    tree: Vec<Agg>,
    leaf_base: usize,
    n_blocks: usize,
    block_bits: usize,
}

impl Bp {
    /// Build from a finished parentheses bit sequence (must be balanced —
    /// checked in debug builds).
    pub fn new(bits: BitVec) -> Self {
        let leaves = Self::build_leaves(&bits, BLOCK_BITS);
        Bp::from_built_parts(bits, leaves, BLOCK_BITS)
    }

    fn build_leaves(bits: &BitVec, block_bits: usize) -> Vec<Agg> {
        let mut b = AggBuilder::new(block_bits, bits.len());
        let mut cur = bits.cursor();
        for wi in 0..bits.n_words() {
            let bits_here = (bits.len() - wi * 64).min(64);
            b.push_word(cur.word(wi), bits_here);
        }
        b.finish()
    }

    /// Assemble from a bit sequence and its already-computed block leaves
    /// (the paged-open path streams the leaves while validating balance; the
    /// resident path computes them via [`Bp::build_leaves`]).
    pub(crate) fn from_built_parts(bits: BitVec, leaves: Vec<Agg>, block_bits: usize) -> Self {
        debug_assert_eq!(bits.len() % 2, 0, "parentheses sequence has odd length");
        debug_assert_eq!(leaves.len(), bits.len().div_ceil(block_bits));
        let n_blocks = bits.len().div_ceil(block_bits).max(1);
        let leaf_base = n_blocks.next_power_of_two();
        let mut tree = vec![Agg::NEUTRAL; 2 * leaf_base];
        tree[leaf_base..leaf_base + leaves.len()].copy_from_slice(&leaves);
        for v in (1..leaf_base).rev() {
            tree[v] = Agg::merge(tree[2 * v], tree[2 * v + 1]);
        }
        debug_assert_eq!(
            tree[1].total, 0,
            "parentheses sequence is unbalanced (net excess {})",
            tree[1].total
        );
        Bp { bits, tree, leaf_base, n_blocks, block_bits }
    }

    /// Build directly from a boolean iterator (open = true).
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        Bp::new(BitVec::from_bits(bits))
    }

    /// The underlying bit vector.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Length of the sequence in parentheses (bits).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of tree nodes (open parentheses).
    pub fn node_count(&self) -> usize {
        self.bits.count_ones()
    }

    /// True if position `p` holds an open parenthesis.
    #[inline]
    pub fn is_open(&self, p: usize) -> bool {
        self.bits.get(p)
    }

    /// Excess after the first `i` bits: `#open − #close` in `[0, i)`.
    #[inline]
    pub fn excess(&self, i: usize) -> i64 {
        2 * self.bits.rank1(i) as i64 - i as i64
    }

    /// Pre-order rank (0-based) of the node opened at `p`.
    #[inline]
    pub fn node_rank(&self, p: usize) -> usize {
        debug_assert!(self.is_open(p));
        self.bits.rank1(p)
    }

    /// Open-parenthesis position of the node with pre-order rank `r`.
    #[inline]
    pub fn node_select(&self, r: usize) -> Option<usize> {
        self.bits.select1(r)
    }

    /// Matching close parenthesis of the open at `p`.
    pub fn find_close(&self, p: usize) -> usize {
        debug_assert!(self.is_open(p), "find_close on a close paren at {p}");
        // Target: first j > p with excess(j+1) == excess(p+1) - 1.
        let target = self.excess(p + 1) - 1;
        self.fwd_search(p + 1, target).expect("balanced sequence always has a matching close")
    }

    /// Matching open parenthesis of the close at `c`.
    pub fn find_open(&self, c: usize) -> usize {
        debug_assert!(!self.is_open(c), "find_open on an open paren at {c}");
        let t = self.excess(c + 1);
        match self.bwd_search(c, t) {
            Some(j) => j + 1,
            // Virtual position −1 has excess 0.
            None if t == 0 => 0,
            None => unreachable!("balanced sequence always has a matching open"),
        }
    }

    /// Open position of the parent of the node opened at `p`; `None` for the
    /// root.
    pub fn enclose(&self, p: usize) -> Option<usize> {
        debug_assert!(self.is_open(p));
        let t = self.excess(p + 1) - 2;
        if t < 0 {
            return None; // root
        }
        match self.bwd_search(p, t) {
            Some(j) => Some(j + 1),
            None if t == 0 => Some(0),
            None => None,
        }
    }

    // ---- tree-shape operations --------------------------------------------

    /// First child of the node at open position `p`.
    #[inline]
    pub fn first_child(&self, p: usize) -> Option<usize> {
        let q = p + 1;
        (q < self.len() && self.is_open(q)).then_some(q)
    }

    /// Next sibling of the node at open position `p`.
    #[inline]
    pub fn next_sibling(&self, p: usize) -> Option<usize> {
        let q = self.find_close(p) + 1;
        (q < self.len() && self.is_open(q)).then_some(q)
    }

    /// Parent of the node at open position `p`.
    #[inline]
    pub fn parent(&self, p: usize) -> Option<usize> {
        self.enclose(p)
    }

    /// Number of nodes in the subtree rooted at `p` (inclusive).
    #[inline]
    pub fn subtree_size(&self, p: usize) -> usize {
        (self.find_close(p) - p).div_ceil(2)
    }

    /// True if the node at `p` has no children.
    #[inline]
    pub fn is_leaf(&self, p: usize) -> bool {
        !self.is_open(p + 1)
    }

    /// Depth of the node at `p` (the root has depth 1).
    #[inline]
    pub fn depth(&self, p: usize) -> i64 {
        self.excess(p + 1)
    }

    /// True if the node opened at `a` is a proper ancestor of the node at
    /// `d` — the containment test interval joins use, here for free from the
    /// parenthesis positions.
    #[inline]
    pub fn is_ancestor(&self, a: usize, d: usize) -> bool {
        a < d && d < self.find_close(a)
    }

    // ---- excess searches ----------------------------------------------------

    /// Scan bits `[from, end)` forward for the first `j` with running excess
    /// `e == target` after consuming bit `j`. Returns `Ok(j)` or `Err(e)`
    /// with the excess after the scan. Word-wise: one cursor fetch per word.
    fn scan_fwd(
        cur: &mut WordCursor<'_>,
        from: usize,
        end: usize,
        mut e: i64,
        target: i64,
    ) -> Result<usize, i64> {
        let mut j = from;
        while j < end {
            let take = (64 - j % 64).min(end - j);
            let w = cur.word(j / 64) >> (j % 64);
            for i in 0..take {
                e += if (w >> i) & 1 == 1 { 1 } else { -1 };
                if e == target {
                    return Ok(j + i);
                }
            }
            j += take;
        }
        Err(e)
    }

    /// Scan bits `[start, before)` backward for the largest `j` with excess
    /// `e == target` after consuming bit `j` — `e` on entry is the excess
    /// after bit `before - 1`. Returns `Ok(j)` or `Err(e)` with the excess
    /// at the start of the range.
    fn scan_bwd(
        cur: &mut WordCursor<'_>,
        start: usize,
        before: usize,
        mut e: i64,
        target: i64,
    ) -> Result<usize, i64> {
        let mut j = before;
        while j > start {
            let word_start = (j - 1) / 64 * 64;
            let low = word_start.max(start);
            let w = cur.word(word_start / 64);
            for pos in (low..j).rev() {
                if e == target {
                    return Ok(pos);
                }
                e -= if (w >> (pos - word_start)) & 1 == 1 { 1 } else { -1 };
            }
            j = low;
        }
        Err(e)
    }

    /// Smallest `j >= from` with `excess(j+1) == target`.
    fn fwd_search(&self, from: usize, target: i64) -> Option<usize> {
        if from >= self.len() {
            return None;
        }
        let mut cur = self.bits.cursor();
        let block = from / self.block_bits;
        let block_end = ((block + 1) * self.block_bits).min(self.len());
        // Scan the rest of the starting block.
        let mut e = match Self::scan_fwd(&mut cur, from, block_end, self.excess(from), target) {
            Ok(j) => return Some(j),
            Err(e) => e,
        };
        // Climb the range-min-max tree looking right.
        let mut v = self.leaf_base + block;
        loop {
            while v > 1 && (v & 1) == 1 {
                v >>= 1;
            }
            if v <= 1 {
                return None;
            }
            v += 1;
            let a = self.tree[v];
            if a.min != i32::MAX && e + a.min as i64 <= target && target <= e + a.max as i64 {
                // Descend to the leftmost leaf containing the target.
                while v < self.leaf_base {
                    let l = 2 * v;
                    let la = self.tree[l];
                    if la.min != i32::MAX
                        && e + la.min as i64 <= target
                        && target <= e + la.max as i64
                    {
                        v = l;
                    } else {
                        if la.min != i32::MAX {
                            e += la.total as i64;
                        }
                        v = 2 * v + 1;
                    }
                }
                let b = v - self.leaf_base;
                let start = b * self.block_bits;
                let end = (start + self.block_bits).min(self.len());
                return match Self::scan_fwd(&mut cur, start, end, e, target) {
                    Ok(j) => Some(j),
                    Err(_) => unreachable!("range-min-max tree said the block contains the target"),
                };
            } else if a.min != i32::MAX {
                e += a.total as i64;
            }
        }
    }

    /// Largest `j < before` with `excess(j+1) == target`; `None` if only the
    /// virtual position −1 (excess 0) would match.
    fn bwd_search(&self, before: usize, target: i64) -> Option<usize> {
        if before == 0 {
            return None;
        }
        let mut cur = self.bits.cursor();
        let block = (before - 1) / self.block_bits;
        let block_start = block * self.block_bits;
        // Scan leftwards through the starting block; excess(before) is the
        // excess after position before-1.
        let mut e = match Self::scan_bwd(&mut cur, block_start, before, self.excess(before), target)
        {
            Ok(j) => return Some(j),
            Err(e) => e,
        };
        // e is now the excess at the start of `block`.
        let mut v = self.leaf_base + block;
        loop {
            while v > 1 && (v & 1) == 0 {
                v >>= 1;
            }
            if v <= 1 {
                return None;
            }
            v -= 1;
            let a = self.tree[v];
            // Excess values inside this subtree range over
            // [e_start + min, e_start + max] with e_start = e − total, where
            // `e` is the excess at the END of this subtree's range (it abuts
            // the region already scanned).
            if a.min != i32::MAX {
                let e_start = e - a.total as i64;
                if e_start + a.min as i64 <= target && target <= e_start + a.max as i64 {
                    // Descend right-first.
                    while v < self.leaf_base {
                        let r = 2 * v + 1;
                        let ra = self.tree[r];
                        if ra.min != i32::MAX {
                            let r_start = e - ra.total as i64;
                            if r_start + ra.min as i64 <= target
                                && target <= r_start + ra.max as i64
                            {
                                v = r;
                                continue;
                            }
                            e -= ra.total as i64;
                        }
                        v *= 2;
                    }
                    let b = v - self.leaf_base;
                    let start = b * self.block_bits;
                    let end = (start + self.block_bits).min(self.len());
                    return match Self::scan_bwd(&mut cur, start, end, e, target) {
                        Ok(j) => Some(j),
                        Err(_) => {
                            unreachable!("range-min-max tree said the block contains the target")
                        }
                    };
                }
                // Not in this subtree: rewind the excess past it and keep
                // climbing leftwards.
                e -= a.total as i64;
            }
        }
    }

    /// Heap bytes of the structure (bits + directory + min-max tree).
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes() + self.tree.len() * std::mem::size_of::<Agg>()
    }

    /// Number of range-min-max blocks (for tests).
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n) matcher used as the differential oracle.
    struct Naive {
        bits: Vec<bool>,
    }

    impl Naive {
        fn find_close(&self, p: usize) -> usize {
            let mut d = 0i64;
            for (j, &b) in self.bits.iter().enumerate().skip(p) {
                d += if b { 1 } else { -1 };
                if d == 0 {
                    return j;
                }
            }
            panic!("unbalanced");
        }

        fn enclose(&self, p: usize) -> Option<usize> {
            let mut d = 0i64;
            for j in (0..p).rev() {
                d += if self.bits[j] { 1 } else { -1 };
                if d == 1 {
                    return Some(j);
                }
            }
            None
        }
    }

    /// Deterministic pseudo-random balanced sequence with n nodes.
    fn random_tree_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut x = seed | 1;
        let mut bits = Vec::with_capacity(2 * n);
        let mut opened = 0usize;
        let mut closed = 0usize;
        let mut depth = 0usize;
        while closed < n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let open = opened < n && (depth == 0 || x % 5 < 3);
            if open {
                bits.push(true);
                opened += 1;
                depth += 1;
            } else {
                bits.push(false);
                closed += 1;
                depth -= 1;
            }
        }
        bits
    }

    fn check_bp_against_naive(bp: &Bp, bits: &[bool]) {
        let naive = Naive { bits: bits.to_vec() };
        for (p, &bit) in bits.iter().enumerate() {
            if bit {
                let c = bp.find_close(p);
                assert_eq!(c, naive.find_close(p), "find_close({p})");
                assert_eq!(bp.find_open(c), p, "find_open({c})");
                assert_eq!(bp.enclose(p), naive.enclose(p), "enclose({p})");
            }
        }
    }

    fn check_against_naive(bits: Vec<bool>) {
        let bp = Bp::from_bits(bits.iter().copied());
        check_bp_against_naive(&bp, &bits);
        // The paged block size must navigate identically on the same bits.
        let v = BitVec::from_bits(bits.iter().copied());
        let leaves = Bp::build_leaves(&v, PAGED_BLOCK_BITS);
        let paged_blocks = Bp::from_built_parts(v, leaves, PAGED_BLOCK_BITS);
        check_bp_against_naive(&paged_blocks, &bits);
    }

    #[test]
    fn tiny_sequences() {
        check_against_naive(vec![true, false]);
        check_against_naive(vec![true, true, false, false]);
        check_against_naive(vec![true, true, false, true, false, false]);
    }

    #[test]
    fn forest_like_single_root_deep() {
        // ((((...))))
        let n = 600; // spans multiple blocks
        let bits: Vec<bool> =
            std::iter::repeat_n(true, n).chain(std::iter::repeat_n(false, n)).collect();
        check_against_naive(bits);
    }

    #[test]
    fn wide_flat_tree() {
        // ( ()()()... )
        let mut bits = vec![true];
        for _ in 0..1000 {
            bits.push(true);
            bits.push(false);
        }
        bits.push(false);
        check_against_naive(bits);
    }

    #[test]
    fn random_trees_match_naive() {
        for seed in 1..6u64 {
            check_against_naive(random_tree_bits(800, seed));
        }
    }

    #[test]
    fn large_random_tree_spot_checks() {
        let bits = random_tree_bits(30_000, 99);
        let naive = Naive { bits: bits.clone() };
        let bp = Bp::from_bits(bits.iter().copied());
        for p in (0..bits.len()).step_by(37) {
            if bits[p] {
                assert_eq!(bp.find_close(p), naive.find_close(p));
                assert_eq!(bp.enclose(p), naive.enclose(p));
            }
        }
    }

    #[test]
    fn navigation_on_known_tree() {
        // Tree: a(b(c), d) → ( ( ( ) ) ( ) )
        let bp = Bp::from_bits([true, true, true, false, false, true, false, false]);
        let a = 0;
        let b = bp.first_child(a).unwrap();
        assert_eq!(b, 1);
        let c = bp.first_child(b).unwrap();
        assert_eq!(c, 2);
        assert!(bp.is_leaf(c));
        assert_eq!(bp.next_sibling(c), None);
        let d = bp.next_sibling(b).unwrap();
        assert_eq!(d, 5);
        assert!(bp.is_leaf(d));
        assert_eq!(bp.next_sibling(d), None);
        assert_eq!(bp.parent(d), Some(a));
        assert_eq!(bp.parent(c), Some(b));
        assert_eq!(bp.parent(a), None);
        assert_eq!(bp.subtree_size(a), 4);
        assert_eq!(bp.subtree_size(b), 2);
        assert_eq!(bp.depth(a), 1);
        assert_eq!(bp.depth(c), 3);
    }

    #[test]
    fn node_rank_select_roundtrip() {
        let bits = random_tree_bits(500, 7);
        let bp = Bp::from_bits(bits.iter().copied());
        for r in 0..bp.node_count() {
            let p = bp.node_select(r).unwrap();
            assert!(bp.is_open(p));
            assert_eq!(bp.node_rank(p), r);
        }
    }

    #[test]
    fn is_ancestor_matches_definition() {
        let bits = random_tree_bits(200, 3);
        let bp = Bp::from_bits(bits.iter().copied());
        let opens: Vec<usize> = (0..bits.len()).filter(|&p| bits[p]).collect();
        for &a in opens.iter().step_by(7) {
            for &d in opens.iter().step_by(5) {
                let expected = {
                    // d's open position lies strictly inside a's range
                    a != d && a < d && d < bp.find_close(a)
                };
                assert_eq!(bp.is_ancestor(a, d), expected);
            }
        }
    }

    #[test]
    fn depth_equals_ancestor_count() {
        let bits = random_tree_bits(300, 11);
        let bp = Bp::from_bits(bits.iter().copied());
        for p in (0..bits.len()).filter(|&p| bits[p]).step_by(3) {
            let mut depth = 1;
            let mut cur = p;
            while let Some(par) = bp.parent(cur) {
                depth += 1;
                cur = par;
            }
            assert_eq!(bp.depth(p), depth as i64, "depth({p})");
        }
    }

    #[test]
    fn block_boundary_find_close() {
        // A node whose close is exactly at a block boundary.
        let n = BLOCK_BITS / 2; // close of root at bit 2n-1 = 255
        let bits: Vec<bool> =
            std::iter::repeat_n(true, n).chain(std::iter::repeat_n(false, n)).collect();
        let bp = Bp::from_bits(bits.iter().copied());
        assert_eq!(bp.find_close(0), 2 * n - 1);
        assert_eq!(bp.find_close(n - 1), n);
    }

    #[test]
    fn empty_sequence() {
        let bp = Bp::from_bits(std::iter::empty());
        assert!(bp.is_empty());
        assert_eq!(bp.node_count(), 0);
    }
}
