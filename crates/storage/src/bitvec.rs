//! Bit vector with a rank/select directory.
//!
//! Bits are stored in 64-bit words. The directory is the classic two-level
//! scheme: cumulative 1-counts per 512-bit superblock (`u64`) plus a popcount
//! over the words inside the superblock at query time. `rank` is O(1) modulo
//! the ≤8-word scan; `select` binary-searches superblocks then scans — O(log
//! n). Space overhead is ~12.5% over the raw bits, keeping the structure
//! "succinct" in the paper's sense.

/// Number of bits per directory superblock.
const SUPER_BITS: usize = 512;
/// Words per superblock.
const SUPER_WORDS: usize = SUPER_BITS / 64;

/// An append-only bit vector with O(1) rank and O(log n) select.
///
/// The directory is built lazily: after appending, call [`BitVec::finish`]
/// (or use [`BitVec::from_bits`]) before issuing rank/select queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    /// `super_ranks[i]` = number of 1s strictly before superblock `i`.
    super_ranks: Vec<u64>,
    ones: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of bits and finish the directory.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut v = BitVec::new();
        for b in bits {
            v.push(b);
        }
        v.finish();
        v
    }

    /// Rebuild from raw words and a bit length (the snapshot decode path).
    /// Bits at positions `>= len` in the last word are cleared, then the
    /// rank directory is built.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.truncate(len.div_ceil(64));
        debug_assert_eq!(words.len(), len.div_ceil(64), "too few words for {len} bits");
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        let mut v = BitVec { words, len, super_ranks: Vec::new(), ones: 0 };
        v.finish();
        v
    }

    /// Append one bit. Invalidates the directory until [`BitVec::finish`].
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Overwrite bit `i` (used by the update path). Invalidates the
    /// directory until [`BitVec::finish`].
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// (Re)build the rank directory. Idempotent.
    pub fn finish(&mut self) {
        let n_super = self.words.len().div_ceil(SUPER_WORDS);
        self.super_ranks.clear();
        self.super_ranks.reserve(n_super + 1);
        let mut acc = 0u64;
        for s in 0..n_super {
            self.super_ranks.push(acc);
            let start = s * SUPER_WORDS;
            let end = (start + SUPER_WORDS).min(self.words.len());
            for w in &self.words[start..end] {
                acc += w.count_ones() as u64;
            }
        }
        self.super_ranks.push(acc);
        self.ones = acc as usize;
    }

    /// Total number of 1 bits (directory must be built).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of 1 bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()` or the directory is stale.
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        debug_assert!(!self.super_ranks.is_empty(), "finish() not called");
        let sb = i / SUPER_BITS;
        let mut r = self.super_ranks[sb] as usize;
        let word_start = sb * SUPER_WORDS;
        let word_end = i / 64;
        for w in &self.words[word_start..word_end] {
            r += w.count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 && word_end < self.words.len() {
            r += (self.words[word_end] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of 0 bits in `[0, i)`.
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th 1 bit (0-based: `select1(0)` is the first 1).
    /// Returns `None` if there are not that many 1s.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let target = (k + 1) as u64;
        // Binary search the superblock whose cumulative count reaches target.
        let mut lo = 0usize;
        let mut hi = self.super_ranks.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.super_ranks[mid] < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = target - self.super_ranks[lo];
        let word_start = lo * SUPER_WORDS;
        let word_end = (word_start + SUPER_WORDS).min(self.words.len());
        for wi in word_start..word_end {
            let pc = self.words[wi].count_ones() as u64;
            if pc >= remaining {
                return Some(wi * 64 + select_in_word(self.words[wi], remaining as u32));
            }
            remaining -= pc;
        }
        None
    }

    /// Position of the `k`-th 0 bit (0-based). O(n/64) scan — only used in
    /// tests and tooling, not on hot paths.
    pub fn select0(&self, k: usize) -> Option<usize> {
        let mut remaining = (k + 1) as u64;
        for (wi, w) in self.words.iter().enumerate() {
            let bits_here = (self.len - wi * 64).min(64);
            let inv = !w & if bits_here == 64 { u64::MAX } else { (1u64 << bits_here) - 1 };
            let pc = inv.count_ones() as u64;
            if pc >= remaining {
                return Some(wi * 64 + select_in_word(inv, remaining as u32));
            }
            remaining -= pc;
        }
        None
    }

    /// The underlying words (read-only), for size accounting.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Total heap bytes used, including the directory.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.super_ranks.len() * 8
    }

    /// Remove bits `[start, start+count)` and insert `bits` at `start`.
    /// This is the primitive behind local subtree updates. The caller must
    /// call [`BitVec::finish`] afterwards.
    pub fn splice(&mut self, start: usize, count: usize, bits: &[bool]) {
        assert!(start + count <= self.len, "splice range out of bounds");
        // Straightforward re-materialization of the affected suffix. The
        // prefix [0, start) is untouched — this is the "local substring"
        // property; the suffix copy is unavoidable in a flat array.
        let mut tail: Vec<bool> = (start + count..self.len).map(|i| self.get(i)).collect();
        self.len = start;
        self.words.truncate(start.div_ceil(64));
        if !start.is_multiple_of(64) {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << (start % 64)) - 1;
        }
        for &b in bits {
            self.push(b);
        }
        for b in tail.drain(..) {
            self.push(b);
        }
    }
}

/// Position (0..63) of the `k`-th set bit in `w`, 1-based `k`.
fn select_in_word(mut w: u64, k: u32) -> usize {
    debug_assert!(k >= 1 && w.count_ones() >= k);
    let mut remaining = k;
    let mut pos = 0usize;
    loop {
        let tz = w.trailing_zeros() as usize;
        pos += tz;
        if remaining == 1 {
            return pos;
        }
        remaining -= 1;
        w >>= tz + 1;
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bits(pattern.iter().copied());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        let bits: Vec<bool> = (0..2000).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        for i in (0..=2000).step_by(13) {
            assert_eq!(v.rank1(i), naive_rank1(&bits, i), "rank1({i})");
            assert_eq!(v.rank0(i), i - naive_rank1(&bits, i), "rank0({i})");
        }
        assert_eq!(v.rank1(2000), v.count_ones());
    }

    #[test]
    fn select1_inverts_rank1() {
        let bits: Vec<bool> = (0..3000).map(|i| i % 7 == 0 || i % 11 == 0).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        let ones = v.count_ones();
        for k in 0..ones {
            let p = v.select1(k).unwrap();
            assert!(v.get(p), "select1({k}) = {p} must be a 1");
            assert_eq!(v.rank1(p), k, "rank before select1({k})");
        }
        assert_eq!(v.select1(ones), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let bits: Vec<bool> = (0..500).map(|i| i % 3 != 0).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        let zeros = v.len() - v.count_ones();
        for k in 0..zeros {
            let p = v.select0(k).unwrap();
            assert!(!v.get(p));
            assert_eq!(v.rank0(p), k);
        }
        assert_eq!(v.select0(zeros), None);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = BitVec::from_bits(std::iter::repeat_n(true, 700));
        assert_eq!(ones.rank1(700), 700);
        assert_eq!(ones.select1(699), Some(699));
        let zeros = BitVec::from_bits(std::iter::repeat_n(false, 700));
        assert_eq!(zeros.rank1(700), 0);
        assert_eq!(zeros.select1(0), None);
        assert_eq!(zeros.select0(699), Some(699));
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::from_bits(std::iter::empty());
        assert!(v.is_empty());
        assert_eq!(v.rank1(0), 0);
        assert_eq!(v.select1(0), None);
    }

    #[test]
    fn set_and_refinish() {
        let mut v = BitVec::from_bits((0..100).map(|_| false));
        v.set(42, true);
        v.finish();
        assert_eq!(v.count_ones(), 1);
        assert_eq!(v.select1(0), Some(42));
    }

    #[test]
    fn splice_replaces_range() {
        // 0..16 alternating; replace bits [4, 8) with three 1s.
        let bits: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let mut v = BitVec::from_bits(bits.iter().copied());
        v.splice(4, 4, &[true, true, true]);
        v.finish();
        let expect: Vec<bool> = bits[..4]
            .iter()
            .copied()
            .chain([true, true, true])
            .chain(bits[8..].iter().copied())
            .collect();
        assert_eq!(v.len(), expect.len());
        for (i, &b) in expect.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn splice_insert_only_and_delete_only() {
        let mut v = BitVec::from_bits([true, false, true]);
        v.splice(1, 0, &[true, true]);
        v.finish();
        assert_eq!((0..5).map(|i| v.get(i)).collect::<Vec<_>>(), [true, true, true, false, true]);
        v.splice(0, 3, &[]);
        v.finish();
        assert_eq!((0..2).map(|i| v.get(i)).collect::<Vec<_>>(), [false, true]);
    }

    #[test]
    fn select_in_word_positions() {
        assert_eq!(select_in_word(0b1, 1), 0);
        assert_eq!(select_in_word(0b1010, 1), 1);
        assert_eq!(select_in_word(0b1010, 2), 3);
        assert_eq!(select_in_word(u64::MAX, 64), 63);
    }

    #[test]
    fn heap_bytes_accounts_directory() {
        let v = BitVec::from_bits((0..4096).map(|i| i % 2 == 0));
        assert!(v.heap_bytes() >= 4096 / 8);
    }

    #[test]
    fn large_random_like_pattern() {
        // Deterministic pseudo-random pattern, no rand dependency needed here.
        let mut x = 0x9e3779b97f4a7c15u64;
        let bits: Vec<bool> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let v = BitVec::from_bits(bits.iter().copied());
        // Spot-check rank/select consistency at scale.
        for i in (0..50_000).step_by(977) {
            assert_eq!(v.rank1(i), naive_rank1(&bits, i));
        }
        for k in (0..v.count_ones()).step_by(1031) {
            let p = v.select1(k).unwrap();
            assert_eq!(v.rank1(p), k);
            assert!(v.get(p));
        }
    }
}
