//! Bit vector with a rank/select directory.
//!
//! Bits are stored in 64-bit words. The directory is the classic two-level
//! scheme: cumulative 1-counts per 512-bit superblock (`u64`) plus a popcount
//! over the words inside the superblock at query time. `rank` is O(1) modulo
//! the ≤8-word scan; `select` binary-searches superblocks then scans — O(log
//! n). Space overhead is ~12.5% over the raw bits, keeping the structure
//! "succinct" in the paper's sense.
//!
//! The raw words live either in memory ([`Words::Resident`]) or in a paged
//! snapshot behind a [`BufferPool`] ([`Words::Paged`]); the rank directory is
//! always resident. A 512-bit superblock never straddles a page (512 | 32768
//! bits per page), so every rank/select resolves by pinning at most one
//! page. Paged vectors are immutable — mutation belongs to the resident
//! scratch copies the update path builds (see [`BitVec::append_range`]).

use crate::buffer::{BufferPool, PageRef, PAGE_BYTES};
use crate::persist::page::PageFile;
use std::sync::Arc;

/// Number of bits per directory superblock.
const SUPER_BITS: usize = 512;
/// Words per superblock.
const SUPER_WORDS: usize = SUPER_BITS / 64;
/// 64-bit words per page frame.
const WORDS_PER_PAGE: usize = PAGE_BYTES / 8;

/// Where the raw words live.
#[derive(Debug, Clone)]
enum Words {
    Resident(Vec<u64>),
    Paged {
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        /// First frame of the word section (words are page-aligned).
        first_page: u64,
    },
}

impl Default for Words {
    fn default() -> Self {
        Words::Resident(Vec::new())
    }
}

/// An append-only bit vector with O(1) rank and O(log n) select.
///
/// The directory is built lazily: after appending, call [`BitVec::finish`]
/// (or use [`BitVec::from_bits`]) before issuing rank/select queries.
#[derive(Debug, Clone, Default)]
pub struct BitVec {
    words: Words,
    len: usize,
    /// `super_ranks[i]` = number of 1s strictly before superblock `i`.
    super_ranks: Vec<u64>,
    ones: usize,
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter_words().eq(other.iter_words())
    }
}

impl Eq for BitVec {}

/// Sequential word reader that pins at most one page at a time; the cheap
/// way to walk a (possibly paged) vector without a pool round-trip per word.
pub(crate) struct WordCursor<'a> {
    bv: &'a BitVec,
    cached: Option<(u64, PageRef)>,
}

impl WordCursor<'_> {
    /// Word `wi` (must exist).
    #[inline]
    pub(crate) fn word(&mut self, wi: usize) -> u64 {
        match &self.bv.words {
            Words::Resident(words) => words[wi],
            Words::Paged { pool, file, first_page } => {
                let page = first_page + (wi / WORDS_PER_PAGE) as u64;
                match &self.cached {
                    Some((p, guard)) if *p == page => word_in_page(guard, wi % WORDS_PER_PAGE),
                    _ => {
                        let guard = pool.fetch(file, page);
                        let w = word_in_page(&guard, wi % WORDS_PER_PAGE);
                        self.cached = Some((page, guard));
                        w
                    }
                }
            }
        }
    }

    /// Bit `i` (must exist), through the cached page.
    #[inline]
    pub(crate) fn get(&mut self, i: usize) -> bool {
        (self.word(i / 64) >> (i % 64)) & 1 == 1
    }
}

#[inline]
fn word_in_page(page: &[u8], idx: usize) -> u64 {
    let o = idx * 8;
    u64::from_le_bytes(page[o..o + 8].try_into().unwrap())
}

/// Builds the superblock directory from a streamed word sequence — the
/// paged-open path, which must produce exactly what [`BitVec::finish`]
/// would without materializing the words.
pub(crate) struct DirectoryBuilder {
    super_ranks: Vec<u64>,
    acc: u64,
    wi: usize,
}

impl DirectoryBuilder {
    pub(crate) fn new(len_bits: usize) -> Self {
        DirectoryBuilder {
            super_ranks: Vec::with_capacity(len_bits.div_ceil(SUPER_BITS) + 1),
            acc: 0,
            wi: 0,
        }
    }

    /// Feed the next word (`bits` = how many of its low bits are in range;
    /// higher bits must already be masked to zero).
    pub(crate) fn push_word(&mut self, w: u64, _bits: usize) {
        if self.wi.is_multiple_of(SUPER_WORDS) {
            self.super_ranks.push(self.acc);
        }
        self.acc += w.count_ones() as u64;
        self.wi += 1;
    }

    /// `(super_ranks, total ones)`.
    pub(crate) fn finish(mut self) -> (Vec<u64>, u64) {
        self.super_ranks.push(self.acc);
        (self.super_ranks, self.acc)
    }
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of bits and finish the directory.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut v = BitVec::new();
        for b in bits {
            v.push(b);
        }
        v.finish();
        v
    }

    /// Rebuild from raw words and a bit length (the snapshot decode path).
    /// Bits at positions `>= len` in the last word are cleared, then the
    /// rank directory is built.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.truncate(len.div_ceil(64));
        debug_assert_eq!(words.len(), len.div_ceil(64), "too few words for {len} bits");
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        let mut v = BitVec { words: Words::Resident(words), len, super_ranks: Vec::new(), ones: 0 };
        v.finish();
        v
    }

    /// Assemble a paged vector whose words stay on disk behind `pool`. The
    /// directory (`super_ranks`, `ones`) comes from the caller's validated
    /// streaming pass over the same words (see [`DirectoryBuilder`]).
    pub(crate) fn from_paged_parts(
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        first_page: u64,
        len: usize,
        super_ranks: Vec<u64>,
        ones: u64,
    ) -> Self {
        BitVec {
            words: Words::Paged { pool, file, first_page },
            len,
            super_ranks,
            ones: ones as usize,
        }
    }

    /// True if the raw words live behind a buffer pool.
    pub fn is_paged(&self) -> bool {
        matches!(self.words, Words::Paged { .. })
    }

    fn resident_words_mut(&mut self) -> &mut Vec<u64> {
        match &mut self.words {
            Words::Resident(w) => w,
            Words::Paged { .. } => panic!("paged bit vectors are immutable"),
        }
    }

    /// Sequential reader over the words; pins one page at a time.
    pub(crate) fn cursor(&self) -> WordCursor<'_> {
        WordCursor { bv: self, cached: None }
    }

    /// Number of 64-bit words backing the vector.
    pub fn n_words(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Iterate the backing words in order (resident or paged).
    pub fn iter_words(&self) -> impl Iterator<Item = u64> + '_ {
        let mut cur = self.cursor();
        (0..self.n_words()).map(move |wi| cur.word(wi))
    }

    /// Append one bit. Invalidates the directory until [`BitVec::finish`].
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        let words = self.resident_words_mut();
        if word == words.len() {
            words.push(0);
        }
        if bit {
            words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Append the low `n` bits of `chunk` (`1..=64`; higher bits of `chunk`
    /// must be zero). The word-wise building block behind
    /// [`BitVec::append_range`].
    fn push_bits(&mut self, chunk: u64, n: usize) {
        debug_assert!((1..=64).contains(&n));
        debug_assert!(n == 64 || chunk >> n == 0);
        let off = self.len % 64;
        let words = self.resident_words_mut();
        if off == 0 {
            words.push(chunk);
        } else {
            let last = words.len() - 1;
            words[last] |= chunk << off;
            if off + n > 64 {
                words.push(chunk >> (64 - off));
            }
        }
        self.len += n;
    }

    /// Append bits `[start, end)` of `src` — word-wise, so a paged source is
    /// walked one pinned page at a time instead of bit-by-bit. This is the
    /// page-aware primitive the update splice paths build on.
    pub fn append_range(&mut self, src: &BitVec, start: usize, end: usize) {
        assert!(start <= end && end <= src.len, "append_range out of bounds");
        let mut cur = src.cursor();
        let mut i = start;
        while i < end {
            let off = i % 64;
            let take = (64 - off).min(end - i);
            let mut chunk = cur.word(i / 64) >> off;
            if take < 64 {
                chunk &= (1u64 << take) - 1;
            }
            self.push_bits(chunk, take);
            i += take;
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.cursor().get(i)
    }

    /// Overwrite bit `i` (used by the update path). Invalidates the
    /// directory until [`BitVec::finish`].
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let wi = i / 64;
        let words = self.resident_words_mut();
        if bit {
            words[wi] |= mask;
        } else {
            words[wi] &= !mask;
        }
    }

    /// (Re)build the rank directory. Idempotent. Paged vectors carry their
    /// directory from open, so this is a no-op for them.
    pub fn finish(&mut self) {
        let Words::Resident(words) = &self.words else { return };
        let n_super = words.len().div_ceil(SUPER_WORDS);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut acc = 0u64;
        for s in 0..n_super {
            super_ranks.push(acc);
            let start = s * SUPER_WORDS;
            let end = (start + SUPER_WORDS).min(words.len());
            for w in &words[start..end] {
                acc += w.count_ones() as u64;
            }
        }
        super_ranks.push(acc);
        self.super_ranks = super_ranks;
        self.ones = acc as usize;
    }

    /// Total number of 1 bits (directory must be built).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of 1 bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()` or the directory is stale.
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        debug_assert!(!self.super_ranks.is_empty(), "finish() not called");
        let sb = i / SUPER_BITS;
        let mut r = self.super_ranks[sb] as usize;
        let word_end = i / 64;
        let mut cur = self.cursor();
        for wi in sb * SUPER_WORDS..word_end {
            r += cur.word(wi).count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 && word_end < self.n_words() {
            r += (cur.word(word_end) & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of 0 bits in `[0, i)`.
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th 1 bit (0-based: `select1(0)` is the first 1).
    /// Returns `None` if there are not that many 1s.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let target = (k + 1) as u64;
        // Binary search the superblock whose cumulative count reaches target.
        let mut lo = 0usize;
        let mut hi = self.super_ranks.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.super_ranks[mid] < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = target - self.super_ranks[lo];
        let word_start = lo * SUPER_WORDS;
        let word_end = (word_start + SUPER_WORDS).min(self.n_words());
        let mut cur = self.cursor();
        for wi in word_start..word_end {
            let w = cur.word(wi);
            let pc = w.count_ones() as u64;
            if pc >= remaining {
                return Some(wi * 64 + select_in_word(w, remaining as u32));
            }
            remaining -= pc;
        }
        None
    }

    /// Position of the `k`-th 0 bit (0-based). O(n/64) scan — only used in
    /// tests and tooling, not on hot paths.
    pub fn select0(&self, k: usize) -> Option<usize> {
        let mut remaining = (k + 1) as u64;
        let mut cur = self.cursor();
        for wi in 0..self.n_words() {
            let w = cur.word(wi);
            let bits_here = (self.len - wi * 64).min(64);
            let inv = !w & if bits_here == 64 { u64::MAX } else { (1u64 << bits_here) - 1 };
            let pc = inv.count_ones() as u64;
            if pc >= remaining {
                return Some(wi * 64 + select_in_word(inv, remaining as u32));
            }
            remaining -= pc;
        }
        None
    }

    /// Total heap bytes used, including the directory. Paged words live in
    /// the buffer pool, not this struct's heap, so only the resident
    /// directory counts for them.
    pub fn heap_bytes(&self) -> usize {
        let words = match &self.words {
            Words::Resident(w) => w.len() * 8,
            Words::Paged { .. } => 0,
        };
        words + self.super_ranks.len() * 8
    }

    /// Remove bits `[start, start+count)` and insert `bits` at `start`.
    /// This is the primitive behind local subtree updates. The caller must
    /// call [`BitVec::finish`] afterwards. Works on paged vectors too (the
    /// result is resident): both halves are copied word-wise through
    /// [`BitVec::append_range`], never bit-by-bit.
    pub fn splice(&mut self, start: usize, count: usize, bits: &[bool]) {
        assert!(start + count <= self.len, "splice range out of bounds");
        let mut out = BitVec::new();
        out.append_range(self, 0, start);
        for &b in bits {
            out.push(b);
        }
        out.append_range(self, start + count, self.len);
        *self = out;
    }
}

/// Position (0..63) of the `k`-th set bit in `w`, 1-based `k`.
fn select_in_word(mut w: u64, k: u32) -> usize {
    debug_assert!(k >= 1 && w.count_ones() >= k);
    let mut remaining = k;
    let mut pos = 0usize;
    loop {
        let tz = w.trailing_zeros() as usize;
        pos += tz;
        if remaining == 1 {
            return pos;
        }
        remaining -= 1;
        w >>= tz + 1;
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bits(pattern.iter().copied());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        let bits: Vec<bool> = (0..2000).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        for i in (0..=2000).step_by(13) {
            assert_eq!(v.rank1(i), naive_rank1(&bits, i), "rank1({i})");
            assert_eq!(v.rank0(i), i - naive_rank1(&bits, i), "rank0({i})");
        }
        assert_eq!(v.rank1(2000), v.count_ones());
    }

    #[test]
    fn select1_inverts_rank1() {
        let bits: Vec<bool> = (0..3000).map(|i| i % 7 == 0 || i % 11 == 0).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        let ones = v.count_ones();
        for k in 0..ones {
            let p = v.select1(k).unwrap();
            assert!(v.get(p), "select1({k}) = {p} must be a 1");
            assert_eq!(v.rank1(p), k, "rank before select1({k})");
        }
        assert_eq!(v.select1(ones), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let bits: Vec<bool> = (0..500).map(|i| i % 3 != 0).collect();
        let v = BitVec::from_bits(bits.iter().copied());
        let zeros = v.len() - v.count_ones();
        for k in 0..zeros {
            let p = v.select0(k).unwrap();
            assert!(!v.get(p));
            assert_eq!(v.rank0(p), k);
        }
        assert_eq!(v.select0(zeros), None);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = BitVec::from_bits(std::iter::repeat_n(true, 700));
        assert_eq!(ones.rank1(700), 700);
        assert_eq!(ones.select1(699), Some(699));
        let zeros = BitVec::from_bits(std::iter::repeat_n(false, 700));
        assert_eq!(zeros.rank1(700), 0);
        assert_eq!(zeros.select1(0), None);
        assert_eq!(zeros.select0(699), Some(699));
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::from_bits(std::iter::empty());
        assert!(v.is_empty());
        assert_eq!(v.rank1(0), 0);
        assert_eq!(v.select1(0), None);
    }

    #[test]
    fn set_and_refinish() {
        let mut v = BitVec::from_bits((0..100).map(|_| false));
        v.set(42, true);
        v.finish();
        assert_eq!(v.count_ones(), 1);
        assert_eq!(v.select1(0), Some(42));
    }

    #[test]
    fn splice_replaces_range() {
        // 0..16 alternating; replace bits [4, 8) with three 1s.
        let bits: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let mut v = BitVec::from_bits(bits.iter().copied());
        v.splice(4, 4, &[true, true, true]);
        v.finish();
        let expect: Vec<bool> = bits[..4]
            .iter()
            .copied()
            .chain([true, true, true])
            .chain(bits[8..].iter().copied())
            .collect();
        assert_eq!(v.len(), expect.len());
        for (i, &b) in expect.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn splice_insert_only_and_delete_only() {
        let mut v = BitVec::from_bits([true, false, true]);
        v.splice(1, 0, &[true, true]);
        v.finish();
        assert_eq!((0..5).map(|i| v.get(i)).collect::<Vec<_>>(), [true, true, true, false, true]);
        v.splice(0, 3, &[]);
        v.finish();
        assert_eq!((0..2).map(|i| v.get(i)).collect::<Vec<_>>(), [false, true]);
    }

    #[test]
    fn append_range_matches_bitwise_copy() {
        let bits: Vec<bool> = (0..700).map(|i| (i * 13 + 5) % 7 < 3).collect();
        let src = BitVec::from_bits(bits.iter().copied());
        for (start, end) in [(0, 700), (1, 700), (63, 130), (64, 128), (5, 6), (100, 100)] {
            let mut v = BitVec::new();
            // Unaligned destination start.
            v.push(true);
            v.push(false);
            v.append_range(&src, start, end);
            v.finish();
            assert_eq!(v.len(), 2 + end - start, "[{start}, {end})");
            for (i, &bit) in bits.iter().enumerate().take(end).skip(start) {
                assert_eq!(v.get(2 + i - start), bit, "bit {i} of [{start}, {end})");
            }
        }
    }

    #[test]
    fn select_in_word_positions() {
        assert_eq!(select_in_word(0b1, 1), 0);
        assert_eq!(select_in_word(0b1010, 1), 1);
        assert_eq!(select_in_word(0b1010, 2), 3);
        assert_eq!(select_in_word(u64::MAX, 64), 63);
    }

    #[test]
    fn heap_bytes_accounts_directory() {
        let v = BitVec::from_bits((0..4096).map(|i| i % 2 == 0));
        assert!(v.heap_bytes() >= 4096 / 8);
    }

    #[test]
    fn large_random_like_pattern() {
        // Deterministic pseudo-random pattern, no rand dependency needed here.
        let mut x = 0x9e3779b97f4a7c15u64;
        let bits: Vec<bool> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let v = BitVec::from_bits(bits.iter().copied());
        // Spot-check rank/select consistency at scale.
        for i in (0..50_000).step_by(977) {
            assert_eq!(v.rank1(i), naive_rank1(&bits, i));
        }
        for k in (0..v.count_ones()).step_by(1031) {
            let p = v.select1(k).unwrap();
            assert_eq!(v.rank1(p), k);
            assert!(v.get(p));
        }
    }
}
