//! Content-based value indexes.
//!
//! A [`ValueIndex`] is the paper's "content-based indexes … created only on
//! the content information" (§4.2): B+-trees over the content store keyed by
//! `(tag, value)`, one lexicographic (string) tree and one numeric tree. The
//! executor's σv operator probes these instead of scanning when a predicate
//! compares a tagged value against a literal.
//!
//! What gets indexed:
//! * every **attribute** node under `(attribute-tag, value)`;
//! * every **element** under `(element-tag, string-value)` — predicates
//!   compare full string values, so completeness requires indexing even
//!   elements whose text lives deeper in their subtree.

use crate::btree::BPlusTree;
use crate::succinct::{SKind, SNodeId, SuccinctDoc};
use crate::tags::TagId;
use std::cmp::Ordering;
use std::ops::Bound;
use xqp_xml::Atomic;

/// Totally ordered `f64` key (orders NaN last, like `f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Secondary index over a document's values.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    strings: BPlusTree<(TagId, String), SNodeId>,
    numbers: BPlusTree<(TagId, OrdF64), SNodeId>,
    entries: usize,
}

impl ValueIndex {
    /// Build both trees in one pass over the document.
    pub fn build(doc: &SuccinctDoc) -> Self {
        let mut strings = BPlusTree::new();
        let mut numbers = BPlusTree::new();
        let mut entries = 0usize;
        for n in (0..doc.node_count() as u32).map(SNodeId) {
            let (tag, value): (TagId, String) = match doc.kind(n) {
                SKind::Attribute => {
                    (doc.tag(n), doc.content(n).map(|c| c.into_owned()).unwrap_or_default())
                }
                SKind::Element => (doc.tag(n), doc.string_value(n)),
                SKind::Text => continue,
            };
            strings.insert((tag, value.clone()), n);
            if let Ok(num) = value.trim().parse::<f64>() {
                numbers.insert((tag, OrdF64(num)), n);
            }
            entries += 1;
        }
        ValueIndex { strings, numbers, entries }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Nodes whose tag is `tag` and whose value equals `value`, in document
    /// order. Numeric atoms probe the numeric tree (so `42` matches `"42.0"`),
    /// strings probe the string tree.
    pub fn lookup_eq(&self, tag: TagId, value: &Atomic) -> Vec<SNodeId> {
        let mut out: Vec<SNodeId> = match value {
            Atomic::Integer(_) | Atomic::Double(_) => {
                let k = (tag, OrdF64(value.as_number().expect("numeric atom")));
                self.numbers.get(&k).to_vec()
            }
            _ => {
                let k = (tag, value.as_string());
                self.strings.get(&k).to_vec()
            }
        };
        out.sort_unstable();
        out
    }

    /// Nodes whose tag is `tag` and whose numeric value lies in the bounds,
    /// in document order.
    pub fn lookup_numeric_range(&self, tag: TagId, lo: Bound<f64>, hi: Bound<f64>) -> Vec<SNodeId> {
        let lo_key = match lo {
            Bound::Included(v) => Bound::Included((tag, OrdF64(v))),
            Bound::Excluded(v) => Bound::Excluded((tag, OrdF64(v))),
            Bound::Unbounded => Bound::Included((tag, OrdF64(f64::NEG_INFINITY))),
        };
        let hi_key = match hi {
            Bound::Included(v) => Bound::Included((tag, OrdF64(v))),
            Bound::Excluded(v) => Bound::Excluded((tag, OrdF64(v))),
            Bound::Unbounded => Bound::Included((tag, OrdF64(f64::INFINITY))),
        };
        let mut out: Vec<SNodeId> = self
            .numbers
            .range(as_ref_bound(&lo_key), as_ref_bound(&hi_key))
            .flat_map(|(_, nodes)| nodes.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// All string-tree entries for `tag` within a lexicographic range —
    /// supports prefix probes by the caller.
    pub fn lookup_string_range(
        &self,
        tag: TagId,
        lo: Bound<&str>,
        hi: Bound<&str>,
    ) -> Vec<SNodeId> {
        let lo_key = match lo {
            Bound::Included(v) => Bound::Included((tag, v.to_string())),
            Bound::Excluded(v) => Bound::Excluded((tag, v.to_string())),
            Bound::Unbounded => Bound::Included((tag, String::new())),
        };
        let hi_key = match hi {
            Bound::Included(v) => Bound::Included((tag, v.to_string())),
            Bound::Excluded(v) => Bound::Excluded((tag, v.to_string())),
            // No string is above (tag, \u{10FFFF}...) for keys of this tag —
            // use the exclusive next tag id instead.
            Bound::Unbounded => Bound::Excluded((TagId(tag.0 + 1), String::new())),
        };
        let mut out: Vec<SNodeId> = self
            .strings
            .range(as_ref_bound(&lo_key), as_ref_bound(&hi_key))
            .flat_map(|(_, nodes)| nodes.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Heap bytes of both trees.
    pub fn heap_bytes(&self) -> usize {
        self.strings.heap_bytes() + self.numbers.heap_bytes()
    }
}

fn as_ref_bound<K>(b: &Bound<K>) -> Bound<&K> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<inventory>\
        <item sku=\"A1\"><price>10</price><name>bolt</name></item>\
        <item sku=\"A2\"><price>25</price><name>nut</name></item>\
        <item sku=\"B1\"><price>25.0</price><name>washer</name></item>\
        <item sku=\"B2\"><price>99</price><name>bolt</name></item>\
    </inventory>";

    fn setup() -> (SuccinctDoc, ValueIndex) {
        let doc = SuccinctDoc::parse(SAMPLE).unwrap();
        let idx = ValueIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn index_covers_attributes_and_all_elements() {
        let (_, idx) = setup();
        // 4 sku attrs + 13 elements (inventory, 4×item, 4×price, 4×name)
        assert_eq!(idx.len(), 17);
    }

    #[test]
    fn string_eq_lookup() {
        let (doc, idx) = setup();
        let name = doc.tag_table().lookup("name").unwrap();
        let hits = idx.lookup_eq(name, &Atomic::Str("bolt".into()));
        assert_eq!(hits.len(), 2);
        for h in &hits {
            assert_eq!(doc.string_value(*h), "bolt");
        }
        assert!(idx.lookup_eq(name, &Atomic::Str("screw".into())).is_empty());
    }

    #[test]
    fn attribute_eq_lookup() {
        let (doc, idx) = setup();
        let sku = doc.tag_table().lookup("sku").unwrap();
        let hits = idx.lookup_eq(sku, &Atomic::Str("B1".into()));
        assert_eq!(hits.len(), 1);
        assert!(doc.is_attribute(hits[0]));
    }

    #[test]
    fn numeric_eq_matches_across_lexical_forms() {
        let (doc, idx) = setup();
        let price = doc.tag_table().lookup("price").unwrap();
        // 25 matches both "25" and "25.0".
        let hits = idx.lookup_eq(price, &Atomic::Integer(25));
        assert_eq!(hits.len(), 2);
        for h in hits {
            assert_eq!(doc.typed_value(h).as_number(), Some(25.0));
        }
    }

    #[test]
    fn numeric_range_lookup() {
        let (doc, idx) = setup();
        let price = doc.tag_table().lookup("price").unwrap();
        let hits = idx.lookup_numeric_range(price, Bound::Excluded(10.0), Bound::Included(99.0));
        assert_eq!(hits.len(), 3); // 25, 25.0, 99
        let unbounded = idx.lookup_numeric_range(price, Bound::Unbounded, Bound::Unbounded);
        assert_eq!(unbounded.len(), 4);
        // Results in document order.
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
        let _ = doc;
    }

    #[test]
    fn string_range_scopes_to_tag() {
        let (doc, idx) = setup();
        let sku = doc.tag_table().lookup("sku").unwrap();
        let a_prefixed = idx.lookup_string_range(sku, Bound::Included("A"), Bound::Excluded("B"));
        assert_eq!(a_prefixed.len(), 2);
        let all = idx.lookup_string_range(sku, Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn range_does_not_leak_other_tags() {
        let (doc, idx) = setup();
        let name = doc.tag_table().lookup("name").unwrap();
        // names are not numeric, so a numeric sweep over `name` finds nothing
        let hits = idx.lookup_numeric_range(name, Bound::Unbounded, Bound::Unbounded);
        assert!(hits.is_empty());
    }

    #[test]
    fn deep_text_elements_are_indexed_by_string_value() {
        let doc = SuccinctDoc::parse("<a><b><c>leaf</c></b></a>").unwrap();
        let idx = ValueIndex::build(&doc);
        assert_eq!(idx.len(), 3); // a, b, c — all by their string values
        let b = doc.tag_table().lookup("b").unwrap();
        // `b[. = "leaf"]` must be answerable from the index.
        assert_eq!(idx.lookup_eq(b, &Atomic::Str("leaf".into())).len(), 1);
    }
}
