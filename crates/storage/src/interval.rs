//! Region (interval) encoding and per-tag streams.
//!
//! The join-based baselines — binary structural joins, PathStack, TwigStack —
//! all consume, per tag, a document-order stream of `(start, end, level)`
//! regions (Zhang et al. SIGMOD'01; Al-Khalifa et al. ICDE'02). This is
//! exactly what extended-relational systems shred documents into, and the
//! encoding the paper contrasts its succinct scheme against. [`TagStreams`]
//! derives these streams from a [`SuccinctDoc`] once; the operators then
//! never touch the document again.

use crate::succinct::{SNodeId, SuccinctDoc};
use crate::tags::TagId;
use std::collections::HashMap;

/// One element's region: `start < d.start && d.end < end` ⇔ this element is
/// an ancestor of `d`; `level` distinguishes parent-child from
/// ancestor-descendant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Position of the open parenthesis (pre-order).
    pub start: u32,
    /// Position of the matching close parenthesis.
    pub end: u32,
    /// Depth (root element = 1).
    pub level: u32,
    /// The node this region describes.
    pub node: SNodeId,
}

impl Interval {
    /// True if `self` is a proper ancestor of `other`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start < other.start && other.end < self.end
    }

    /// True if `self` is the parent of `other`.
    #[inline]
    pub fn is_parent_of(&self, other: &Interval) -> bool {
        self.contains(other) && self.level + 1 == other.level
    }

    /// True if `self` ends before `other` begins (document-order disjoint).
    #[inline]
    pub fn before(&self, other: &Interval) -> bool {
        self.end < other.start
    }
}

/// Per-tag, document-ordered interval lists for a document.
#[derive(Debug, Clone)]
pub struct TagStreams {
    streams: HashMap<TagId, Vec<Interval>>,
    total: usize,
}

impl TagStreams {
    /// Build streams for all element and attribute tags in `doc`.
    pub fn build(doc: &SuccinctDoc) -> Self {
        let mut streams: HashMap<TagId, Vec<Interval>> = HashMap::new();
        let mut total = 0usize;
        for n in (0..doc.node_count() as u32).map(SNodeId) {
            if doc.is_text(n) {
                continue;
            }
            let (start, end, level) = doc.interval(n);
            streams.entry(doc.tag(n)).or_default().push(Interval { start, end, level, node: n });
            total += 1;
        }
        // Pre-order construction already yields document order, but make the
        // invariant explicit and cheap to verify.
        debug_assert!(streams.values().all(|s| s.windows(2).all(|w| w[0].start < w[1].start)));
        TagStreams { streams, total }
    }

    /// The document-ordered stream for `tag` (empty if the tag is absent).
    pub fn stream(&self, tag: TagId) -> &[Interval] {
        self.streams.get(&tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Stream looked up by tag name through the document's symbol table.
    pub fn stream_by_name<'a>(&'a self, doc: &SuccinctDoc, name: &str) -> &'a [Interval] {
        match doc.tag_table().lookup(name) {
            Some(t) => self.stream(t),
            None => &[],
        }
    }

    /// Total intervals across all streams.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Number of distinct tags with at least one interval.
    pub fn tag_count(&self) -> usize {
        self.streams.len()
    }

    /// Heap bytes (for the storage-size experiment): each interval costs
    /// 16 bytes — the shredded-relational representation the paper compares
    /// its 2-bits-per-node structure against.
    pub fn heap_bytes(&self) -> usize {
        self.streams.values().map(|s| s.capacity() * std::mem::size_of::<Interval>()).sum::<usize>()
            + self.streams.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<bib><book year=\"1994\"><title>t1</title><author>a1</author></book><book year=\"2000\"><title>t2</title><author>a2</author><author>a3</author></book></bib>";

    fn setup() -> (SuccinctDoc, TagStreams) {
        let doc = SuccinctDoc::parse(SAMPLE).unwrap();
        let streams = TagStreams::build(&doc);
        (doc, streams)
    }

    #[test]
    fn stream_sizes() {
        let (doc, s) = setup();
        assert_eq!(s.stream_by_name(&doc, "book").len(), 2);
        assert_eq!(s.stream_by_name(&doc, "author").len(), 3);
        assert_eq!(s.stream_by_name(&doc, "year").len(), 2); // attributes too
        assert_eq!(s.stream_by_name(&doc, "absent").len(), 0);
        // 8 elements + 2 attributes
        assert_eq!(s.total_len(), 10);
    }

    #[test]
    fn streams_are_document_ordered() {
        let (doc, s) = setup();
        for name in ["book", "author", "title"] {
            let st = s.stream_by_name(&doc, name);
            assert!(st.windows(2).all(|w| w[0].start < w[1].start), "{name}");
        }
    }

    #[test]
    fn containment_matches_tree() {
        let (doc, s) = setup();
        let books = s.stream_by_name(&doc, "book").to_vec();
        let authors = s.stream_by_name(&doc, "author").to_vec();
        // book1 contains author1 only; book2 contains author2, author3.
        assert!(books[0].contains(&authors[0]));
        assert!(!books[0].contains(&authors[1]));
        assert!(books[1].contains(&authors[1]));
        assert!(books[1].contains(&authors[2]));
        // Cross-check against the tree.
        for b in &books {
            for a in &authors {
                assert_eq!(b.contains(a), doc.is_ancestor(b.node, a.node));
            }
        }
    }

    #[test]
    fn parent_child_needs_level() {
        let (doc, s) = setup();
        let bib = &s.stream_by_name(&doc, "bib")[0];
        let books = s.stream_by_name(&doc, "book");
        let titles = s.stream_by_name(&doc, "title");
        assert!(bib.is_parent_of(&books[0]));
        assert!(bib.contains(&titles[0]));
        assert!(!bib.is_parent_of(&titles[0])); // grandchild
    }

    #[test]
    fn before_relation() {
        let (doc, s) = setup();
        let books = s.stream_by_name(&doc, "book");
        assert!(books[0].before(&books[1]));
        assert!(!books[1].before(&books[0]));
        assert!(!books[0].before(books.first().unwrap()));
    }

    #[test]
    fn interval_identity_roundtrip() {
        let (doc, s) = setup();
        for st in ["bib", "book", "title", "author", "year"] {
            for iv in s.stream_by_name(&doc, st) {
                let (a, b, l) = doc.interval(iv.node);
                assert_eq!((a, b, l), (iv.start, iv.end, iv.level));
            }
        }
    }
}
