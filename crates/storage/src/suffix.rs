//! Substring (contains) index over the content store.
//!
//! §4.2 motivates the structure/content split precisely so that
//! "content-based indexes (such as B+ trees and suffix trees) can be created
//! only on the content information". This is the suffix-side companion to
//! [`crate::index::ValueIndex`]: a **suffix array** over the content arena
//! (the classical array form of the suffix tree — same queries, a fraction
//! of the space). `find` answers "which nodes' content contains this
//! substring?" with binary search, in O(|pattern| · log n) comparisons.
//!
//! Construction sorts every suffix of every content string — O(n log n)
//! comparisons of average O(|overlap|) cost, fine for the document sizes the
//! engine targets and entirely offline. The index stores `(content-rank,
//! offset)` pairs only; the text stays in the content store.

use crate::succinct::{SNodeId, SuccinctDoc};

/// A suffix array over a document's content store.
#[derive(Debug, Clone)]
pub struct SuffixIndex {
    /// `(content_rank, byte_offset)` per suffix, sorted lexicographically by
    /// the suffix text.
    suffixes: Vec<(u32, u32)>,
}

impl SuffixIndex {
    /// Build the index for `doc`'s content store.
    pub fn build(doc: &SuccinctDoc) -> Self {
        let store = doc.content_store();
        let mut suffixes: Vec<(u32, u32)> = Vec::new();
        for (rank, text) in store.iter() {
            for (off, _) in text.char_indices() {
                suffixes.push((rank as u32, off as u32));
            }
        }
        suffixes.sort_by(|&(ra, oa), &(rb, ob)| {
            let ca = store.get(ra as usize);
            let cb = store.get(rb as usize);
            ca[oa as usize..].cmp(&cb[ob as usize..])
        });
        SuffixIndex { suffixes }
    }

    /// Number of indexed suffixes.
    pub fn len(&self) -> usize {
        self.suffixes.len()
    }

    /// True if no content is indexed.
    pub fn is_empty(&self) -> bool {
        self.suffixes.is_empty()
    }

    /// Run `f` on the text of suffix `i`. The content may be assembled from
    /// page frames (paged stores), so the text is only valid for the call.
    fn with_suffix<R>(&self, doc: &SuccinctDoc, i: usize, f: impl FnOnce(&str) -> R) -> R {
        let (rank, off) = self.suffixes[i];
        let c = doc.content_store().get(rank as usize);
        f(&c[off as usize..])
    }

    /// Content-bearing nodes (text and attribute nodes) whose content
    /// contains `pattern`, in document order. The empty pattern matches
    /// every content node.
    pub fn find(&self, doc: &SuccinctDoc, pattern: &str) -> Vec<SNodeId> {
        if pattern.is_empty() {
            let mut all: Vec<SNodeId> = (0..doc.content_store().len())
                .filter_map(|r| doc.node_of_content_rank(r))
                .collect();
            all.sort_unstable();
            return all;
        }
        // Binary search the range of suffixes starting with `pattern`.
        let lo = self.partition(doc, |s| s < pattern);
        let hi = self.partition(doc, |s| s < pattern || s.starts_with(pattern));
        let mut ranks: Vec<u32> = self.suffixes[lo..hi].iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let mut nodes: Vec<SNodeId> =
            ranks.into_iter().filter_map(|r| doc.node_of_content_rank(r as usize)).collect();
        nodes.sort_unstable();
        nodes
    }

    /// Elements (in document order) whose **string value** contains
    /// `pattern` — the accelerated form of `…[contains(., "pattern")]`,
    /// derived by walking matching content nodes up to their ancestors.
    pub fn find_elements(&self, doc: &SuccinctDoc, pattern: &str) -> Vec<SNodeId> {
        let mut out: Vec<SNodeId> = Vec::new();
        for n in self.find(doc, pattern) {
            if doc.is_attribute(n) {
                continue; // attribute content is not part of element string values
            }
            let mut cur = doc.parent(n);
            while let Some(p) = cur {
                out.push(p);
                cur = doc.parent(p);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn partition(&self, doc: &SuccinctDoc, mut below: impl FnMut(&str) -> bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.suffixes.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.with_suffix(doc, mid, &mut below) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Heap bytes of the index (8 bytes per suffix).
    pub fn heap_bytes(&self) -> usize {
        self.suffixes.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<lib>\
        <book title=\"banana republic\"><note>yellow banana</note></book>\
        <book title=\"anagram\"><note>nan bread</note></book>\
        <book title=\"plain\"><note>nothing here</note></book>\
        </lib>";

    fn setup() -> (SuccinctDoc, SuffixIndex) {
        let doc = SuccinctDoc::parse(DOC).unwrap();
        let idx = SuffixIndex::build(&doc);
        (doc, idx)
    }

    /// Brute-force oracle: scan every content node.
    fn brute(doc: &SuccinctDoc, pattern: &str) -> Vec<SNodeId> {
        let mut out: Vec<SNodeId> = (0..doc.node_count() as u32)
            .map(SNodeId)
            .filter(|&n| doc.content(n).is_some_and(|c| c.contains(pattern)))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn find_matches_brute_force() {
        let (doc, idx) = setup();
        for pat in ["banana", "nan", "an", "bread", "x", "nothing here", "republic", ""] {
            assert_eq!(idx.find(&doc, pat), brute(&doc, pat), "pattern `{pat}`");
        }
    }

    #[test]
    fn overlapping_occurrences_dedup() {
        let doc = SuccinctDoc::parse("<a>aaaa</a>").unwrap();
        let idx = SuffixIndex::build(&doc);
        // "aa" occurs 3 times in the single text node — one hit.
        assert_eq!(idx.find(&doc, "aa").len(), 1);
    }

    #[test]
    fn attributes_are_searchable() {
        let (doc, idx) = setup();
        let hits = idx.find(&doc, "republic");
        assert_eq!(hits.len(), 1);
        assert!(doc.is_attribute(hits[0]));
    }

    #[test]
    fn find_elements_walks_ancestors() {
        let (doc, idx) = setup();
        let els = idx.find_elements(&doc, "banana");
        // note → book → lib for the text hit; the attribute hit is excluded.
        let names: Vec<&str> = els.iter().map(|&n| doc.name(n)).collect();
        assert_eq!(names, ["lib", "book", "note"]);
    }

    #[test]
    fn missing_pattern_is_empty() {
        let (doc, idx) = setup();
        assert!(idx.find(&doc, "zebra").is_empty());
        assert!(idx.find_elements(&doc, "zebra").is_empty());
    }

    #[test]
    fn unicode_content() {
        let doc = SuccinctDoc::parse("<a>héllo wörld</a>").unwrap();
        let idx = SuffixIndex::build(&doc);
        assert_eq!(idx.find(&doc, "ör").len(), 1);
        assert_eq!(idx.find(&doc, "é").len(), 1);
    }

    #[test]
    fn empty_document() {
        let doc = SuccinctDoc::parse("<a/>").unwrap();
        let idx = SuffixIndex::build(&doc);
        assert!(idx.is_empty());
        assert!(idx.find(&doc, "x").is_empty());
    }
}
