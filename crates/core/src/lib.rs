//! # xqp — XML query processing and optimization
//!
//! The public face of the system reproduced from *"XML Query Processing and
//! Optimization"* (Ning Zhang, EDBT 2004 PhD Workshop): a native XML store
//! with succinct physical storage, a logical algebra over pattern graphs,
//! schema trees and environments, rewrite-rule optimization, and four
//! interchangeable physical access methods for tree patterns.
//!
//! ```
//! use xqp::Database;
//!
//! let mut db = Database::new();
//! db.load_str("bib", "<bib><book year=\"1994\"><title>TCP/IP</title></book></bib>")
//!     .unwrap();
//! let titles = db.query("bib", "/bib/book[@year = 1994]/title").unwrap();
//! assert_eq!(titles, "<title>TCP/IP</title>");
//!
//! let out = db
//!     .query(
//!         "bib",
//!         "for $b in doc()/bib/book return <r>{$b/title}</r>",
//!     )
//!     .unwrap();
//! assert_eq!(out, "<r><title>TCP/IP</title></r>");
//! ```
//!
//! Lower layers are re-exported for power users: [`storage`] (succinct
//! structures, B+-trees, updates), [`algebra`] (sorts, operators, rewrite
//! rules, cost model), [`xpath`] (pattern graphs, NoK partitioning),
//! [`exec`] (the physical operators) and [`gen`]-erated workloads live in
//! their own crates.

pub use xqp_algebra as algebra;
pub use xqp_exec as exec;
pub use xqp_storage as storage;
pub use xqp_xml as xml;
pub use xqp_xpath as xpath;
pub use xqp_xquery as xquery;

pub use xqp_algebra::{RewriteReport, RuleSet};
pub use xqp_exec::{ExecCounters, PlanCache as ExecPlanCache, Strategy};
pub use xqp_storage::{SNodeId, StorageStats, SuccinctDoc, SuffixIndex, ValueIndex};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use xqp_exec::{Executor, PlanCache};
use xqp_xml::Document;

/// Unified error type of the public API.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// XML parsing failed.
    Xml(xqp_xml::Error),
    /// Query parsing or execution failed.
    Query(String),
    /// No document with that name is loaded.
    UnknownDocument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::UnknownDocument(d) => write!(f, "unknown document `{d}`"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xqp_xml::Error> for Error {
    fn from(e: xqp_xml::Error) -> Self {
        Error::Xml(e)
    }
}

impl From<xqp_exec::XqError> for Error {
    fn from(e: xqp_exec::XqError) -> Self {
        Error::Query(e.to_string())
    }
}

/// One stored document plus its optional content indexes and its
/// compiled-plan cache (shared by every executor built for the document;
/// invalidated whenever the document is updated).
struct Stored {
    sdoc: SuccinctDoc,
    index: Option<ValueIndex>,
    suffix: Option<SuffixIndex>,
    cache: Arc<PlanCache>,
}

impl Stored {
    fn new(sdoc: SuccinctDoc) -> Self {
        Stored { sdoc, index: None, suffix: None, cache: Arc::new(PlanCache::default()) }
    }
}

/// A collection of named documents with query, update and index management.
#[derive(Default)]
pub struct Database {
    docs: BTreeMap<String, Stored>,
    strategy: Strategy,
    rules: RuleSet,
}

impl Database {
    /// An empty database (auto strategy, all rewrite rules on).
    pub fn new() -> Self {
        Database { docs: BTreeMap::new(), strategy: Strategy::Auto, rules: RuleSet::all() }
    }

    /// Set the physical strategy for subsequent queries.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Set the rewrite-rule set for subsequent queries.
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// Parse and store a document under `name` (replacing any previous one).
    pub fn load_str(&mut self, name: &str, xml: &str) -> Result<(), Error> {
        let sdoc = SuccinctDoc::parse(xml)?;
        self.docs.insert(name.to_string(), Stored::new(sdoc));
        Ok(())
    }

    /// Store an already-built DOM under `name`.
    pub fn load_document(&mut self, name: &str, doc: &Document) {
        let sdoc = SuccinctDoc::from_document(doc);
        self.docs.insert(name.to_string(), Stored::new(sdoc));
    }

    /// Names of loaded documents, sorted.
    pub fn document_names(&self) -> Vec<&str> {
        self.docs.keys().map(String::as_str).collect()
    }

    /// Remove a document.
    pub fn drop_document(&mut self, name: &str) -> bool {
        self.docs.remove(name).is_some()
    }

    /// Access the stored form of a document.
    pub fn document(&self, name: &str) -> Result<&SuccinctDoc, Error> {
        self.docs
            .get(name)
            .map(|s| &s.sdoc)
            .ok_or_else(|| Error::UnknownDocument(name.to_string()))
    }

    fn stored(&self, name: &str) -> Result<&Stored, Error> {
        self.docs.get(name).ok_or_else(|| Error::UnknownDocument(name.to_string()))
    }

    /// Build (or rebuild) the content index for `name`.
    pub fn create_index(&mut self, name: &str) -> Result<(), Error> {
        let s = self
            .docs
            .get_mut(name)
            .ok_or_else(|| Error::UnknownDocument(name.to_string()))?;
        s.index = Some(ValueIndex::build(&s.sdoc));
        Ok(())
    }

    /// Drop the content index for `name`.
    pub fn drop_index(&mut self, name: &str) -> Result<(), Error> {
        let s = self
            .docs
            .get_mut(name)
            .ok_or_else(|| Error::UnknownDocument(name.to_string()))?;
        s.index = None;
        Ok(())
    }

    /// Build (or rebuild) the substring (suffix-array) index for `name`.
    pub fn create_suffix_index(&mut self, name: &str) -> Result<(), Error> {
        let s = self
            .docs
            .get_mut(name)
            .ok_or_else(|| Error::UnknownDocument(name.to_string()))?;
        s.suffix = Some(SuffixIndex::build(&s.sdoc));
        Ok(())
    }

    /// Content-bearing nodes whose content contains `needle` (suffix index
    /// when built, content-store scan otherwise), in document order.
    pub fn contains_search(&self, doc: &str, needle: &str) -> Result<Vec<SNodeId>, Error> {
        let s = self.stored(doc)?;
        if let Some(idx) = &s.suffix {
            return Ok(idx.find(&s.sdoc, needle));
        }
        let mut out: Vec<SNodeId> = (0..s.sdoc.node_count() as u32)
            .map(SNodeId)
            .filter(|&n| {
                s.sdoc.content(n).is_some_and(|c| c.contains(needle))
            })
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Elements whose string value contains `needle` (requires the suffix
    /// index for sub-linear search; falls back to a scan).
    pub fn contains_elements(&self, doc: &str, needle: &str) -> Result<Vec<SNodeId>, Error> {
        let s = self.stored(doc)?;
        if let Some(idx) = &s.suffix {
            return Ok(idx.find_elements(&s.sdoc, needle));
        }
        let mut out: Vec<SNodeId> = (0..s.sdoc.node_count() as u32)
            .map(SNodeId)
            .filter(|&n| {
                s.sdoc.is_element(n) && s.sdoc.string_value(n).contains(needle)
            })
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    fn executor<'a>(&'a self, s: &'a Stored) -> Executor<'a> {
        let mut ex = Executor::new(&s.sdoc)
            .with_strategy(self.strategy)
            .with_rules(self.rules)
            .with_plan_cache(Arc::clone(&s.cache));
        if let Some(idx) = &s.index {
            ex = ex.with_index(idx);
        }
        ex
    }

    /// Plan-cache traffic for `doc`: (hits, misses, evictions).
    pub fn plan_cache_stats(&self, doc: &str) -> Result<(u64, u64, u64), Error> {
        Ok(self.stored(doc)?.cache.stats())
    }

    /// Run an XQuery (or bare path) against `doc`, returning serialized XML.
    pub fn query(&self, doc: &str, query: &str) -> Result<String, Error> {
        let s = self.stored(doc)?;
        Ok(self.executor(s).query(query)?)
    }

    /// Evaluate a bare path to node ids.
    pub fn select(&self, doc: &str, path: &str) -> Result<Vec<SNodeId>, Error> {
        let s = self.stored(doc)?;
        Ok(self.executor(s).eval_path_str(path)?)
    }

    /// Show the optimized plan and the rules that fired.
    pub fn explain(&self, doc: &str, query: &str) -> Result<(String, RewriteReport), Error> {
        let s = self.stored(doc)?;
        Ok(self.executor(s).explain(query)?)
    }

    /// Storage-size report for a document (succinct vs. DOM vs. intervals).
    pub fn storage_stats(&self, doc: &str) -> Result<StorageStats, Error> {
        let s = self.stored(doc)?;
        let dom = s.sdoc.to_document();
        Ok(StorageStats::measure(&dom, &s.sdoc))
    }

    // ---- updates (local splices on the succinct store) -----------------------

    /// Delete every subtree matched by `path`. Returns how many were
    /// removed. The root element cannot be deleted.
    pub fn delete_matching(&mut self, doc: &str, path: &str) -> Result<usize, Error> {
        let hits = self.select(doc, path)?;
        let s = self
            .docs
            .get_mut(doc)
            .ok_or_else(|| Error::UnknownDocument(doc.to_string()))?;
        // Descending rank order keeps earlier ranks stable across splices;
        // nested matches vanish with their ancestors (subtree_size guards).
        let mut removed = 0usize;
        let mut targets: Vec<SNodeId> = hits;
        targets.sort_unstable_by(|a, b| b.cmp(a));
        for t in targets {
            if t.index() == 0 {
                return Err(Error::Query("cannot delete the document root".into()));
            }
            if t.index() >= s.sdoc.node_count() {
                continue; // vanished inside a previously deleted subtree
            }
            s.sdoc = xqp_storage::update::delete_subtree(&s.sdoc, t);
            removed += 1;
        }
        if removed > 0 {
            if let Some(idx) = &mut s.index {
                *idx = ValueIndex::build(&s.sdoc);
            }
            if let Some(sfx) = &mut s.suffix {
                *sfx = SuffixIndex::build(&s.sdoc);
            }
            s.cache.invalidate();
        }
        Ok(removed)
    }

    /// Insert `fragment` (an XML string with one root element) as the last
    /// child of every element matched by `path`. Returns the number of
    /// insertions.
    pub fn insert_into(
        &mut self,
        doc: &str,
        path: &str,
        fragment: &str,
    ) -> Result<usize, Error> {
        let frag = xqp_xml::parse_document(fragment)?;
        let hits = self.select(doc, path)?;
        let s = self
            .docs
            .get_mut(doc)
            .ok_or_else(|| Error::UnknownDocument(doc.to_string()))?;
        // Descending order keeps earlier target ranks valid.
        let mut targets = hits;
        targets.sort_unstable_by(|a, b| b.cmp(a));
        let mut inserted = 0usize;
        for t in &targets {
            if !s.sdoc.is_element(*t) {
                continue;
            }
            s.sdoc = xqp_storage::update::insert_subtree(&s.sdoc, *t, &frag);
            inserted += 1;
        }
        if inserted > 0 {
            if let Some(idx) = &mut s.index {
                *idx = ValueIndex::build(&s.sdoc);
            }
            if let Some(sfx) = &mut s.suffix {
                *sfx = SuffixIndex::build(&s.sdoc);
            }
            s.cache.invalidate();
        }
        Ok(inserted)
    }

    /// Serialize a whole document back to XML.
    pub fn serialize(&self, doc: &str) -> Result<String, Error> {
        let s = self.stored(doc)?;
        Ok(xqp_xml::serialize(&s.sdoc.to_document()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><price>39</price></book>\
        </bib>";

    fn db() -> Database {
        let mut d = Database::new();
        d.load_str("bib", BIB).unwrap();
        d
    }

    #[test]
    fn load_query_roundtrip() {
        let d = db();
        assert_eq!(d.query("bib", "/bib/book[1]/title").unwrap(), "<title>TCP</title>");
        assert_eq!(d.document_names(), ["bib"]);
    }

    #[test]
    fn flwor_query() {
        let d = db();
        let out = d
            .query("bib", "for $b in doc()/bib/book where $b/price < 50 return $b/title")
            .unwrap();
        assert_eq!(out, "<title>Data</title>");
    }

    #[test]
    fn unknown_document_error() {
        let d = db();
        assert!(matches!(d.query("nope", "/a"), Err(Error::UnknownDocument(_))));
    }

    #[test]
    fn select_returns_node_ids() {
        let d = db();
        let hits = d.select("bib", "//book").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_lifecycle() {
        let mut d = db();
        d.create_index("bib").unwrap();
        assert_eq!(d.query("bib", "/bib/book[price > 50]/title").unwrap(), "<title>TCP</title>");
        d.drop_index("bib").unwrap();
        assert!(d.create_index("ghost").is_err());
    }

    #[test]
    fn delete_matching_updates_document() {
        let mut d = db();
        let removed = d.delete_matching("bib", "/bib/book[@year = 1994]").unwrap();
        assert_eq!(removed, 1);
        assert_eq!(d.select("bib", "//book").unwrap().len(), 1);
        assert_eq!(
            d.serialize("bib").unwrap(),
            "<bib><book year=\"2000\"><title>Data</title><price>39</price></book></bib>"
        );
    }

    #[test]
    fn delete_nested_matches_is_safe() {
        let mut d = Database::new();
        d.load_str("x", "<r><a><a/></a><a/></r>").unwrap();
        let removed = d.delete_matching("x", "//a").unwrap();
        // Outer deletions swallow inner ones; at least the two top-level
        // subtrees go away and the result is empty of `a`s.
        assert!(removed >= 2);
        assert_eq!(d.select("x", "//a").unwrap().len(), 0);
        assert_eq!(d.serialize("x").unwrap(), "<r/>");
    }

    #[test]
    fn insert_into_appends_fragments() {
        let mut d = db();
        let n = d.insert_into("bib", "/bib/book", "<tag>new</tag>").unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.select("bib", "//tag").unwrap().len(), 2);
        // Queries see the update.
        let out = d.query("bib", "/bib/book[1]/tag").unwrap();
        assert_eq!(out, "<tag>new</tag>");
    }

    #[test]
    fn explain_surfaces_plan() {
        let d = db();
        let (plan, report) = d
            .explain("bib", "for $b in doc()/bib/book let $t := $b/title return $t")
            .unwrap();
        assert!(plan.contains("tpm-bind"));
        assert!(report.count("R5") > 0);
    }

    #[test]
    fn strategy_and_rules_are_configurable() {
        let mut d = db();
        d.set_strategy(Strategy::BinaryJoin);
        d.set_rules(RuleSet::all_except(5));
        let out = d.query("bib", "/bib/book[price > 50]/title").unwrap();
        assert_eq!(out, "<title>TCP</title>");
    }

    #[test]
    fn storage_stats_report() {
        let d = db();
        let st = d.storage_stats("bib").unwrap();
        assert!(st.nodes > 0);
        assert!(st.succinct_total() > 0);
    }

    #[test]
    fn substring_search_with_and_without_suffix_index() {
        let mut d = db();
        let plain = d.contains_search("bib", "TCP").unwrap();
        assert_eq!(plain.len(), 1);
        d.create_suffix_index("bib").unwrap();
        assert_eq!(d.contains_search("bib", "TCP").unwrap(), plain);
        // Element form: title → book → bib chain.
        let els = d.contains_elements("bib", "TCP").unwrap();
        assert_eq!(els.len(), 3);
        // Suffix index survives updates.
        d.insert_into("bib", "/bib", "<book><title>TCP turbo</title></book>")
            .unwrap();
        assert_eq!(d.contains_search("bib", "TCP").unwrap().len(), 2);
    }

    #[test]
    fn drop_document() {
        let mut d = db();
        assert!(d.drop_document("bib"));
        assert!(!d.drop_document("bib"));
        assert!(d.document("bib").is_err());
    }

    #[test]
    fn root_delete_rejected() {
        let mut d = db();
        let err = d.delete_matching("bib", "/bib").unwrap_err();
        assert!(matches!(err, Error::Query(_)));
    }
}
