//! # xqp — XML query processing and optimization
//!
//! The public face of the system reproduced from *"XML Query Processing and
//! Optimization"* (Ning Zhang, EDBT 2004 PhD Workshop): a native XML store
//! with succinct physical storage, a logical algebra over pattern graphs,
//! schema trees and environments, rewrite-rule optimization, and four
//! interchangeable physical access methods for tree patterns.
//!
//! ```
//! use xqp::Database;
//!
//! let db = Database::new();
//! db.load_str("bib", "<bib><book year=\"1994\"><title>TCP/IP</title></book></bib>")
//!     .unwrap();
//! let titles = db.query("bib", "/bib/book[@year = 1994]/title").unwrap();
//! assert_eq!(titles, "<title>TCP/IP</title>");
//!
//! let out = db
//!     .query(
//!         "bib",
//!         "for $b in doc()/bib/book return <r>{$b/title}</r>",
//!     )
//!     .unwrap();
//! assert_eq!(out, "<r><title>TCP/IP</title></r>");
//! ```
//!
//! Lower layers are re-exported for power users: [`storage`] (succinct
//! structures, B+-trees, updates), [`algebra`] (sorts, operators, rewrite
//! rules, cost model), [`xpath`] (pattern graphs, NoK partitioning),
//! [`exec`] (the physical operators) and [`gen`]-erated workloads live in
//! their own crates.

pub mod fuzz;
pub mod torture;

pub use xqp_algebra as algebra;
pub use xqp_exec as exec;
pub use xqp_storage as storage;
pub use xqp_xml as xml;
pub use xqp_xpath as xpath;
pub use xqp_xquery as xquery;

pub use xqp_algebra::{DocStatistics, RewriteReport, RuleSet};
pub use xqp_exec::{
    CancelToken, EvalMode, ExecCounters, PlanCache as ExecPlanCache, QueryLimits, Strategy,
};
pub use xqp_storage::{
    BufferPool, BufferStats, PersistError, ReplayReport, SNodeId, StorageStats, StoreCounters,
    SuccinctDoc, SuffixIndex, UpdateError, ValueIndex, WalOp,
};

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xqp_exec::{DocVersion, Executor, PlanCache, ResourceGovernor, VersionedDoc};
use xqp_storage::persist::format::{crc32, put_str, put_u32, Reader};
use xqp_storage::persist::{failpoint, spill_paged, DocStore, IoOp};
use xqp_xml::Document;

/// Unified error type of the public API.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// XML parsing failed.
    Xml(xqp_xml::Error),
    /// Query parsing or execution failed.
    Query(String),
    /// No document with that name is loaded.
    UnknownDocument(String),
    /// A structural update was rejected (root deletion, bad target…).
    Update(UpdateError),
    /// The durable store failed (I/O, corrupt file, unappliable WAL).
    Persist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::UnknownDocument(d) => write!(f, "unknown document `{d}`"),
            Error::Update(e) => write!(f, "update rejected: {e}"),
            Error::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xqp_xml::Error> for Error {
    fn from(e: xqp_xml::Error) -> Self {
        Error::Xml(e)
    }
}

impl From<xqp_exec::XqError> for Error {
    fn from(e: xqp_exec::XqError) -> Self {
        Error::Query(e.to_string())
    }
}

impl From<UpdateError> for Error {
    fn from(e: UpdateError) -> Self {
        Error::Update(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Persist(e.to_string())
    }
}

/// One stored document: its MVCC version chain (structure + indexes +
/// statistics + plan cache, see [`xqp_exec::mvcc`]) plus the writer-side
/// state — the durable [`DocStore`], when attached — behind a mutex that
/// serializes updates per document. Readers never take the writer mutex:
/// they snapshot the version chain and run lock-free.
struct DocHandle {
    /// Process-unique handle id. Folded into shared-plan-cache scopes so a
    /// document *replaced* under the same name (fresh handle, generation
    /// back at 0) can never match plans compiled against its predecessor.
    uid: u64,
    versions: VersionedDoc,
    writer: Mutex<WriterState>,
}

/// State only the (single, per-document) writer touches.
struct WriterState {
    store: Option<DocStore>,
}

impl DocHandle {
    fn new(sdoc: SuccinctDoc, store: Option<DocStore>) -> Self {
        static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        DocHandle {
            uid: NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            versions: VersionedDoc::new(sdoc),
            writer: Mutex::new(WriterState { store }),
        }
    }

    /// Lock the writer state, recovering from poison: a panicking update
    /// thread must not wedge the document for every later session (the
    /// version chain itself is only ever advanced by whole, committed
    /// installs, so the data stays valid).
    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Persistence counters without blocking behind an in-flight update:
    /// query paths must not wait on writers, so a busy writer just means
    /// "no persistence line in this explain".
    fn persist_counters(&self) -> Option<StoreCounters> {
        let w = match self.writer.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        w.store.as_ref().map(|st| st.counters())
    }
}

/// Default WAL-records threshold above which updates trigger a compaction.
const DEFAULT_COMPACT_THRESHOLD: u64 = 1024;

/// Manifest file name at the root of a durable database directory.
const MANIFEST_FILE: &str = "MANIFEST";
/// First 8 bytes of the manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"XQPMANI1";
/// Current manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// Write the `name → slot directory` manifest atomically (temp + rename),
/// framed and checksummed like the other persisted files.
fn write_manifest(root: &Path, entries: &[(String, String)]) -> Result<(), Error> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, MANIFEST_VERSION);
    put_u32(&mut out, entries.len() as u32);
    for (name, slot) in entries {
        put_str(&mut out, name);
        put_str(&mut out, slot);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    let io = |e: std::io::Error| Error::Persist(format!("manifest write: {e}"));
    let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
    {
        failpoint::check(IoOp::Create).map_err(io)?;
        let mut f = fs::File::create(&tmp).map_err(io)?;
        failpoint::write_all(&mut f, &out).map_err(io)?;
        failpoint::check(IoOp::Fsync).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    failpoint::check(IoOp::Rename).map_err(io)?;
    fs::rename(&tmp, root.join(MANIFEST_FILE)).map_err(io)?;
    // Best-effort directory fsync (see write_snapshot for the rationale).
    if failpoint::check(IoOp::Fsync).is_ok() {
        if let Ok(d) = fs::File::open(root) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read and validate the manifest at `root`.
fn read_manifest(root: &Path) -> Result<Vec<(String, String)>, Error> {
    let path = root.join(MANIFEST_FILE);
    failpoint::check(IoOp::Read)
        .map_err(|e| Error::Persist(format!("cannot read {}: {e}", path.display())))?;
    let bytes = fs::read(&path)
        .map_err(|e| Error::Persist(format!("cannot read {}: {e}", path.display())))?;
    let fail = |m: String| Error::Persist(format!("manifest: {m}"));
    if bytes.len() < 4 {
        return Err(fail("shorter than its checksum".into()));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if stored != crc32(payload) {
        return Err(fail("checksum mismatch".into()));
    }
    let mut r = Reader::new(payload);
    r.expect_magic(MANIFEST_MAGIC).map_err(Error::from)?;
    let version = r.u32("manifest version").map_err(Error::from)?;
    if version != MANIFEST_VERSION {
        return Err(fail(format!("unsupported version {version}")));
    }
    let count = r.u32("entry count").map_err(Error::from)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = r.len_str("document name").map_err(Error::from)?.to_string();
        let slot = r.len_str("slot directory").map_err(Error::from)?.to_string();
        if slot.contains(['/', '\\']) || slot == ".." {
            return Err(fail(format!("slot {slot:?} escapes the database root")));
        }
        entries.push((name, slot));
    }
    if r.remaining() != 0 {
        return Err(fail(format!("{} trailing bytes", r.remaining())));
    }
    Ok(entries)
}

/// A collection of named documents with query, update and index management,
/// optionally durable ([`Database::open`] / [`Database::persist_to`]).
///
/// `Send + Sync`, and every query *and* update path takes `&self`: a
/// serving process shares one `Database` across all connection threads.
/// Reads are snapshot-isolated (MVCC, see [`xqp_exec::mvcc`]) — a query
/// captures the document version current when it starts and never blocks
/// behind, or observes a half-applied, update. Updates serialize per
/// document behind a writer mutex and publish their result as one atomic
/// version install. Configuration setters (`set_strategy`, `set_rules`, …)
/// and [`Database::persist_to`] keep `&mut self`: they reconfigure the
/// whole database and are meant for set-up, not for the serving hot path.
pub struct Database {
    docs: RwLock<BTreeMap<String, Arc<DocHandle>>>,
    strategy: Strategy,
    rules: RuleSet,
    mode: EvalMode,
    limits: QueryLimits,
    root: Option<PathBuf>,
    compact_threshold: u64,
    /// Page buffer pool all paged documents read through; `None` serves
    /// everything resident.
    pool: Option<Arc<BufferPool>>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

/// Per-session execution options for [`Database::query_session`]: the
/// session's resource limits, an optional externally held cancel token
/// (the server trips it when the client disconnects) and an optional
/// process-wide plan cache shared across documents and sessions.
#[derive(Clone, Default)]
pub struct SessionOptions {
    /// Resource limits for this query (deadline clock starts per query).
    pub limits: QueryLimits,
    /// Cancellation handle owned by the caller; `None` for uncancellable.
    pub cancel: Option<CancelToken>,
    /// Shared plan cache; `None` uses the document's own cache.
    pub cache: Option<Arc<PlanCache>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// An empty, in-memory database (auto strategy, all rewrite rules on).
    pub fn new() -> Self {
        Database {
            docs: RwLock::new(BTreeMap::new()),
            strategy: Strategy::Auto,
            rules: RuleSet::all(),
            mode: EvalMode::default(),
            limits: QueryLimits::none(),
            root: None,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            pool: None,
        }
    }

    /// Serve documents through a bounded page buffer pool of `pages`
    /// frames (4 KiB each, minimum 2). Documents stored *after* this call
    /// go to disk in the paged format and read through the pool — resident
    /// memory for their raw structure/tags/content stays capped at the
    /// pool size however large the document is. Non-durable documents are
    /// spilled to unlink-on-drop temp files so they too serve through the
    /// pool. Already-loaded documents are unaffected until re-stored.
    pub fn set_buffer_pool(&mut self, pages: usize) {
        self.pool = Some(BufferPool::new(pages));
    }

    /// The configured page buffer pool, if any.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Buffer-pool traffic counters (hits, misses, evictions, resident and
    /// pinned peaks); `None` when no pool is configured.
    pub fn buffer_stats(&self) -> Option<BufferStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Read the catalog, recovering from poison (see
    /// [`DocHandle::lock_writer`] for the rationale).
    fn read_docs(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<DocHandle>>> {
        self.docs.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write-lock the catalog, recovering from poison.
    fn write_docs(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Arc<DocHandle>>> {
        self.docs.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The handle for `name`, cloned out of the catalog so the catalog lock
    /// is released before any per-document work starts.
    fn handle(&self, name: &str) -> Result<Arc<DocHandle>, Error> {
        self.read_docs()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| Error::UnknownDocument(name.to_string()))
    }

    /// Set the physical strategy for subsequent queries.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Set how FLWOR plans execute: streamed through the physical pipeline
    /// (default) or materialized clause-at-a-time.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
    }

    /// Set the rewrite-rule set for subsequent queries.
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// Set default resource limits for subsequent queries. Each query gets
    /// a fresh [`xqp_exec::ResourceGovernor`], so the deadline clock starts
    /// when the query starts, not when the limits were set. Pass
    /// [`QueryLimits::none`] to lift all limits.
    pub fn set_limits(&mut self, limits: QueryLimits) {
        self.limits = limits;
    }

    /// The database-wide default resource limits.
    pub fn limits(&self) -> QueryLimits {
        self.limits
    }

    /// Parse and store a document under `name` (replacing any previous
    /// one). On a durable database the newcomer gets its own slot
    /// (snapshot + WAL) and a manifest entry, so it survives
    /// [`Database::open`] like every other document. Replacement is
    /// wholesale: the new document starts a fresh version chain (and plan
    /// cache) at generation 0; sessions still reading the old chain finish
    /// against it undisturbed.
    pub fn load_str(&self, name: &str, xml: &str) -> Result<(), Error> {
        let sdoc = SuccinctDoc::parse(xml)?;
        self.insert_stored(name, sdoc)
    }

    /// Store an already-built DOM under `name`. Durable like
    /// [`Database::load_str`]; the `Err` case can only occur on a durable
    /// database (slot creation or manifest write failing).
    pub fn load_document(&self, name: &str, doc: &Document) -> Result<(), Error> {
        self.insert_stored(name, SuccinctDoc::from_document(doc))
    }

    /// Store `sdoc` under `name`; on a durable database, attach a
    /// `DocStore` (reusing the replaced document's slot when there is one)
    /// and rewrite the manifest before acknowledging. Catalog changes hold
    /// the catalog write lock end-to-end so the manifest always describes
    /// a consistent name → slot mapping.
    fn insert_stored(&self, name: &str, sdoc: SuccinctDoc) -> Result<(), Error> {
        if let Some(root) = self.root.clone() {
            let mut docs = self.write_docs();
            let slot_dir = docs
                .get(name)
                .and_then(|old| {
                    let w = old.lock_writer();
                    w.store.as_ref().map(|st| st.dir().to_path_buf())
                })
                .unwrap_or_else(|| root.join(Self::fresh_slot(&root)));
            // With a pool the slot is written page-granular and the handle
            // serves the pool-backed document; the parsed resident copy is
            // dropped here.
            let (store, served) = match &self.pool {
                Some(pool) => DocStore::create_paged(&slot_dir, &sdoc, pool)?,
                None => (DocStore::create(&slot_dir, &sdoc)?, sdoc),
            };
            docs.insert(name.to_string(), Arc::new(DocHandle::new(served, Some(store))));
            rewrite_manifest(&root, &docs)?;
        } else {
            // Non-durable documents spill to an unlink-on-drop temp file so
            // a pool-configured database stays memory-bounded for them too.
            let served = match &self.pool {
                Some(pool) => spill_paged(&Self::fresh_spill_path(), &sdoc, pool)?,
                None => sdoc,
            };
            self.write_docs().insert(name.to_string(), Arc::new(DocHandle::new(served, None)));
        }
        Ok(())
    }

    /// A process-unique path for one non-durable document's page spill.
    fn fresh_spill_path() -> PathBuf {
        static NEXT_SPILL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = NEXT_SPILL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("xqp-spill-{}-{seq}.xqp", std::process::id()))
    }

    /// First `dNNN` slot name with no directory under `root` yet.
    fn fresh_slot(root: &Path) -> String {
        (0u32..)
            .map(|i| format!("d{i:03}"))
            .find(|slot| !root.join(slot).exists())
            .expect("u32 slot space exhausted")
    }

    /// Names of loaded documents, sorted.
    pub fn document_names(&self) -> Vec<String> {
        self.read_docs().keys().cloned().collect()
    }

    /// Remove a document (and, on a durable database, its manifest entry
    /// and slot directory, so it does not reappear on reopen). Returns
    /// whether a document with that name existed. Sessions still holding a
    /// snapshot finish against it; the version chain is freed when the
    /// last of them drops.
    pub fn drop_document(&self, name: &str) -> Result<bool, Error> {
        let mut docs = self.write_docs();
        let Some(old) = docs.remove(name) else { return Ok(false) };
        let dir = {
            let w = old.lock_writer();
            w.store.as_ref().map(|st| st.dir().to_path_buf())
        };
        if let Some(dir) = dir {
            if let Some(root) = &self.root {
                rewrite_manifest(root, &docs)?;
            }
            // The manifest no longer references the slot; removing the
            // files is cleanup, not correctness.
            let _ = fs::remove_dir_all(dir);
        }
        Ok(true)
    }

    /// A read snapshot of a document: the current MVCC version, navigable
    /// like the raw succinct doc (it `Deref`s to [`SuccinctDoc`]). The
    /// snapshot stays valid — and byte-identical — however many updates
    /// commit after it was taken.
    pub fn document(&self, name: &str) -> Result<Arc<DocVersion>, Error> {
        Ok(self.handle(name)?.versions.snapshot())
    }

    /// The current MVCC generation of `doc` (0 after load, +1 per
    /// committed update or index toggle).
    pub fn generation(&self, doc: &str) -> Result<u64, Error> {
        Ok(self.handle(doc)?.versions.generation())
    }

    /// Document versions still reachable for `doc`: the current one plus
    /// any retired versions pinned by live reader snapshots. 1 at rest.
    pub fn live_versions(&self, doc: &str) -> Result<usize, Error> {
        Ok(self.handle(doc)?.versions.live_versions())
    }

    /// Build (or rebuild) the content index for `name`.
    pub fn create_index(&self, name: &str) -> Result<(), Error> {
        let h = self.handle(name)?;
        let _w = h.lock_writer(); // index toggles serialize with updates
        h.versions.set_value_index(true);
        Ok(())
    }

    /// Drop the content index for `name`.
    pub fn drop_index(&self, name: &str) -> Result<(), Error> {
        let h = self.handle(name)?;
        let _w = h.lock_writer();
        h.versions.set_value_index(false);
        Ok(())
    }

    /// Build (or rebuild) the substring (suffix-array) index for `name`.
    pub fn create_suffix_index(&self, name: &str) -> Result<(), Error> {
        let h = self.handle(name)?;
        let _w = h.lock_writer();
        h.versions.set_suffix_index(true);
        Ok(())
    }

    /// Content-bearing nodes whose content contains `needle` (suffix index
    /// when built, content-store scan otherwise), in document order.
    pub fn contains_search(&self, doc: &str, needle: &str) -> Result<Vec<SNodeId>, Error> {
        let snap = self.document(doc)?;
        if let Some(idx) = snap.suffix_index() {
            return Ok(idx.find(snap.sdoc(), needle));
        }
        let sdoc = snap.sdoc();
        let mut out: Vec<SNodeId> = (0..sdoc.node_count() as u32)
            .map(SNodeId)
            .filter(|&n| sdoc.content(n).is_some_and(|c| c.contains(needle)))
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Elements whose string value contains `needle` (requires the suffix
    /// index for sub-linear search; falls back to a scan).
    pub fn contains_elements(&self, doc: &str, needle: &str) -> Result<Vec<SNodeId>, Error> {
        let snap = self.document(doc)?;
        if let Some(idx) = snap.suffix_index() {
            return Ok(idx.find_elements(snap.sdoc(), needle));
        }
        let sdoc = snap.sdoc();
        let mut out: Vec<SNodeId> = (0..sdoc.node_count() as u32)
            .map(SNodeId)
            .filter(|&n| sdoc.is_element(n) && sdoc.string_value(n).contains(needle))
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// An executor over `snap` with the database's configuration and
    /// per-session `opts` layered on: the session's cache (scoped by
    /// document name + generation) or the document's own (scoped by
    /// generation), a governor when limits or a cancel token call for one,
    /// and persistence counters when the writer side is idle enough to
    /// share them.
    fn session_executor<'a>(
        &'a self,
        handle: &'a DocHandle,
        name: &str,
        snap: &'a DocVersion,
        opts: &SessionOptions,
    ) -> Executor<'a> {
        let mut ex = match &opts.cache {
            Some(cache) => snap.executor_with_cache(
                Arc::clone(cache),
                format!("{name}.{}@g{}", handle.uid, snap.generation()),
            ),
            None => snap.executor(),
        };
        ex = ex.with_strategy(self.strategy).with_rules(self.rules).with_eval_mode(self.mode);
        if let Some(counters) = handle.persist_counters() {
            ex = ex.with_persist_stats(counters);
        }
        if let Some(pool) = &self.pool {
            ex = ex.with_buffer_stats(pool.stats());
        }
        if !opts.limits.is_unlimited() || opts.cancel.is_some() {
            let gov = match &opts.cancel {
                Some(tok) => ResourceGovernor::with_cancel(opts.limits, tok.clone()),
                None => ResourceGovernor::new(opts.limits),
            };
            ex = ex.with_governor(Arc::new(gov));
        }
        ex
    }

    fn default_opts(&self) -> SessionOptions {
        SessionOptions { limits: self.limits, cancel: None, cache: None }
    }

    /// Cost-model statistics the planner sees for `doc` (cached per
    /// document generation; recomputed after updates).
    pub fn statistics(&self, doc: &str) -> Result<Arc<DocStatistics>, Error> {
        Ok(self.document(doc)?.statistics())
    }

    /// Plan-cache traffic for `doc`: (hits, misses, evictions). The cache
    /// is shared across the document's versions, so counters accumulate
    /// over updates.
    pub fn plan_cache_stats(&self, doc: &str) -> Result<(u64, u64, u64), Error> {
        Ok(self.document(doc)?.plan_cache().stats())
    }

    /// Run an XQuery (or bare path) against `doc`, returning serialized XML.
    pub fn query(&self, doc: &str, query: &str) -> Result<String, Error> {
        self.query_session(doc, query, &self.default_opts()).map(|(_, out)| out)
    }

    /// Run an XQuery against `doc` under per-query resource `limits`,
    /// overriding (not merging with) the database-wide defaults from
    /// [`Database::set_limits`].
    pub fn query_with_limits(
        &self,
        doc: &str,
        query: &str,
        limits: QueryLimits,
    ) -> Result<String, Error> {
        self.query_session(doc, query, &SessionOptions { limits, ..SessionOptions::default() })
            .map(|(_, out)| out)
    }

    /// Run an XQuery against the *current* snapshot of `doc` under full
    /// session options (limits, cancellation, shared plan cache). Returns
    /// the generation the query ran at alongside the serialized result —
    /// the server reports it to clients so they can correlate reads with
    /// the writer's commits.
    pub fn query_session(
        &self,
        doc: &str,
        query: &str,
        opts: &SessionOptions,
    ) -> Result<(u64, String), Error> {
        let handle = self.handle(doc)?;
        let snap = handle.versions.snapshot();
        let out = self.session_executor(&handle, doc, &snap, opts).query(query)?;
        Ok((snap.generation(), out))
    }

    /// Evaluate a bare path to node ids.
    pub fn select(&self, doc: &str, path: &str) -> Result<Vec<SNodeId>, Error> {
        self.select_session(doc, path, &self.default_opts()).map(|(_, hits)| hits)
    }

    /// [`Database::select`] under full session options, returning the
    /// generation alongside the node ids (which are only meaningful
    /// against that generation's snapshot).
    pub fn select_session(
        &self,
        doc: &str,
        path: &str,
        opts: &SessionOptions,
    ) -> Result<(u64, Vec<SNodeId>), Error> {
        let handle = self.handle(doc)?;
        let snap = handle.versions.snapshot();
        let hits = self.session_executor(&handle, doc, &snap, opts).eval_path_str(path)?;
        Ok((snap.generation(), hits))
    }

    /// Show the optimized plan and the rules that fired.
    pub fn explain(&self, doc: &str, query: &str) -> Result<(String, RewriteReport), Error> {
        let handle = self.handle(doc)?;
        let snap = handle.versions.snapshot();
        Ok(self.session_executor(&handle, doc, &snap, &self.default_opts()).explain(query)?)
    }

    /// Storage-size report for a document (succinct vs. DOM vs. intervals).
    pub fn storage_stats(&self, doc: &str) -> Result<StorageStats, Error> {
        let snap = self.document(doc)?;
        let dom = snap.sdoc().to_document();
        Ok(StorageStats::measure(&dom, snap.sdoc()))
    }

    // ---- updates (local splices on the succinct store) -----------------------
    //
    // Updates take `&self`: they serialize per document behind the writer
    // mutex, build the successor document on scratch copies, and publish
    // the final state as ONE atomic version install. Readers that started
    // before the install keep their snapshot; readers that start after see
    // the whole update. Mid-loop errors (e.g. DeleteRoot behind applied
    // deletions) keep the paper's partial-application semantics — the
    // splices that committed to the WAL are installed, then the error is
    // returned — but concurrent readers still never see an intermediate
    // splice, only pre-update or final state.

    /// Delete every subtree matched by `path`. Returns how many were
    /// removed. The root element cannot be deleted.
    pub fn delete_matching(&self, doc: &str, path: &str) -> Result<usize, Error> {
        let handle = self.handle(doc)?;
        let mut w = handle.lock_writer();
        let snap = handle.versions.snapshot();
        let hits =
            self.session_executor(&handle, doc, &snap, &self.default_opts()).eval_path_str(path)?;
        // Descending rank order keeps earlier ranks stable across splices;
        // nested matches vanish with their ancestors (subtree_size guards).
        let mut removed = 0usize;
        let mut failed: Option<Error> = None;
        let mut scratch: Option<SuccinctDoc> = None;
        let mut ops: Vec<WalOp> = Vec::new();
        let mut targets: Vec<SNodeId> = hits;
        targets.sort_unstable_by(|a, b| b.cmp(a));
        for t in targets {
            let cur: &SuccinctDoc = scratch.as_ref().unwrap_or_else(|| snap.sdoc());
            if t.index() != 0 && t.index() >= cur.node_count() {
                continue; // vanished inside a previously deleted subtree
            }
            let next = match xqp_storage::update::delete_subtree(cur, t) {
                Ok(d) => d,
                Err(e) => {
                    failed = Some(e.into());
                    break;
                }
            };
            ops.push(WalOp::Delete { node: t.0 });
            scratch = Some(next);
            removed += 1;
        }
        // Group-commit the applied splices (one write, one fsync), then
        // install: the acknowledged state must equal replay state, so
        // nothing becomes visible before it is durable. The batch is
        // all-or-nothing — on a log failure the WAL is back at its
        // pre-batch length and the pre-update state stays published, in
        // memory and on disk alike. A mid-loop splice error (e.g.
        // DeleteRoot) still keeps the paper's partial-application
        // semantics: the splices before it commit and install.
        self.commit_batch(&handle, &mut w, ops, scratch)?;
        if let Some(e) = failed {
            return Err(e);
        }
        if removed > 0 {
            self.maybe_compact(&handle, &mut w)?;
        }
        Ok(removed)
    }

    /// Commit one update batch: durably group-commit `ops` (when the
    /// document has a store), then publish `scratch` as the new version.
    fn commit_batch(
        &self,
        handle: &DocHandle,
        w: &mut WriterState,
        ops: Vec<WalOp>,
        scratch: Option<SuccinctDoc>,
    ) -> Result<(), Error> {
        let Some(scratch) = scratch else { return Ok(()) };
        if let Some(st) = &mut w.store {
            st.log_batch(&ops)?;
        }
        handle.versions.install_document(scratch);
        Ok(())
    }

    /// Insert `fragment` (an XML string with one root element) as the last
    /// child of every element matched by `path`. Returns the number of
    /// insertions.
    pub fn insert_into(&self, doc: &str, path: &str, fragment: &str) -> Result<usize, Error> {
        let frag = xqp_xml::parse_document(fragment)?;
        // Canonical fragment text for the WAL: replay re-parses exactly this.
        let frag_xml = xqp_xml::serialize(&frag);
        let handle = self.handle(doc)?;
        let mut w = handle.lock_writer();
        let snap = handle.versions.snapshot();
        let hits =
            self.session_executor(&handle, doc, &snap, &self.default_opts()).eval_path_str(path)?;
        // Descending order keeps earlier target ranks valid.
        let mut targets = hits;
        targets.sort_unstable_by(|a, b| b.cmp(a));
        let mut inserted = 0usize;
        let mut failed: Option<Error> = None;
        let mut scratch: Option<SuccinctDoc> = None;
        let mut ops: Vec<WalOp> = Vec::new();
        for t in &targets {
            let cur: &SuccinctDoc = scratch.as_ref().unwrap_or_else(|| snap.sdoc());
            if !cur.is_element(*t) {
                continue;
            }
            let next = match xqp_storage::update::insert_subtree(cur, *t, &frag) {
                Ok(d) => d,
                Err(e) => {
                    failed = Some(e.into());
                    break;
                }
            };
            ops.push(WalOp::Insert { parent: t.0, fragment_xml: frag_xml.clone() });
            scratch = Some(next);
            inserted += 1;
        }
        // Same commit discipline as delete_matching: group-commit the
        // batch durably, only then publish.
        self.commit_batch(&handle, &mut w, ops, scratch)?;
        if let Some(e) = failed {
            return Err(e);
        }
        if inserted > 0 {
            self.maybe_compact(&handle, &mut w)?;
        }
        Ok(inserted)
    }

    // ---- persistence (snapshot + WAL via xqp_storage::persist) ---------------

    /// Open a durable database previously created with
    /// [`Database::persist_to`]. Each document's snapshot is loaded, its
    /// WAL replayed (recovering from a torn tail), and the handle stays
    /// attached: subsequent updates are logged durably before returning.
    pub fn open(path: &Path) -> Result<Database, Error> {
        Self::open_with_pool(path, None)
    }

    /// [`Database::open`] behind a page buffer pool of `pages` frames:
    /// paged documents stay on disk and fault in through the pool, so a
    /// database holding documents far larger than memory opens (and
    /// serves) with resident memory bounded by the pool. Snapshot-backed
    /// documents still load resident but convert to the paged format at
    /// their next compaction.
    pub fn open_with_buffer(path: &Path, pages: usize) -> Result<Database, Error> {
        Self::open_with_pool(path, Some(BufferPool::new(pages)))
    }

    fn open_with_pool(path: &Path, pool: Option<Arc<BufferPool>>) -> Result<Database, Error> {
        let mut db = Database::new();
        db.pool = pool;
        for (name, slot) in read_manifest(path)? {
            let slot_dir = path.join(&slot);
            if !slot_dir.is_dir() {
                return Err(Error::Persist(format!(
                    "manifest references missing slot directory `{slot}` for document \
                     `{name}` under {} — the slot was deleted or the manifest is stale",
                    path.display()
                )));
            }
            // The replay report is informational here: the handle starts a
            // fresh version chain (and plan cache) at generation 0 either
            // way, so no stale compiled plan can survive a reopen.
            let (store, sdoc, _report) = match &db.pool {
                Some(pool) => DocStore::open_with_pool(&slot_dir, pool)?,
                None => DocStore::open(&slot_dir)?,
            };
            db.docs
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name, Arc::new(DocHandle::new(sdoc, Some(store))));
        }
        db.root = Some(path.to_path_buf());
        Ok(db)
    }

    /// Persist every loaded document under `path` (created if needed):
    /// one slot directory per document (snapshot + empty WAL) plus a
    /// manifest mapping names to slots. The database becomes durable —
    /// later updates are WAL-logged, and compaction folds the log back
    /// into the snapshot.
    pub fn persist_to(&mut self, path: &Path) -> Result<(), Error> {
        fs::create_dir_all(path)
            .map_err(|e| Error::Persist(format!("cannot create {}: {e}", path.display())))?;
        let mut entries = Vec::new();
        let docs = self.docs.get_mut().unwrap_or_else(|e| e.into_inner());
        for (i, (name, h)) in docs.iter().enumerate() {
            let slot = format!("d{i:03}");
            let snap = h.versions.snapshot();
            let store = match &self.pool {
                Some(pool) => {
                    let (store, paged) =
                        DocStore::create_paged(&path.join(&slot), snap.sdoc(), pool)?;
                    // Swap serving over to the pool-backed copy; readers
                    // still on the resident snapshot finish against it.
                    h.versions.install_document(paged);
                    store
                }
                None => DocStore::create(&path.join(&slot), snap.sdoc())?,
            };
            h.lock_writer().store = Some(store);
            entries.push((name.clone(), slot));
        }
        write_manifest(path, &entries)?;
        self.root = Some(path.to_path_buf());
        Ok(())
    }

    /// The durable root directory, if this database is persistent.
    pub fn persist_root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Whether `doc` has a durable store attached.
    pub fn is_durable(&self, doc: &str) -> Result<bool, Error> {
        Ok(self.handle(doc)?.lock_writer().store.is_some())
    }

    /// Persistence-traffic counters for `doc` (zeros when not durable).
    pub fn persist_stats(&self, doc: &str) -> Result<StoreCounters, Error> {
        Ok(self
            .handle(doc)?
            .lock_writer()
            .store
            .as_ref()
            .map(|st| st.counters())
            .unwrap_or_default())
    }

    /// WAL records pending since the last compaction (0 when not durable).
    pub fn wal_records(&self, doc: &str) -> Result<u64, Error> {
        Ok(self.handle(doc)?.lock_writer().store.as_ref().map(|st| st.wal_records()).unwrap_or(0))
    }

    /// Updates between compactions: once a document's WAL holds this many
    /// records, the next update folds it into a fresh snapshot.
    pub fn set_compaction_threshold(&mut self, records: u64) {
        self.compact_threshold = records.max(1);
    }

    /// Fold `doc`'s WAL into a fresh snapshot now. No-op when not durable.
    /// On a pool-backed paged store the freshly compacted state is
    /// reopened through the pool and installed as the served version (one
    /// extra generation bump), so updated documents return to bounded
    /// resident memory instead of serving the update's in-memory copy.
    pub fn compact(&self, doc: &str) -> Result<(), Error> {
        let handle = self.handle(doc)?;
        let mut w = handle.lock_writer();
        Self::compact_now(&handle, &mut w)
    }

    /// Compact when the WAL has grown past the threshold. Caller holds the
    /// writer lock, so the current snapshot is exactly the WAL's state.
    fn maybe_compact(&self, handle: &DocHandle, w: &mut WriterState) -> Result<(), Error> {
        match &w.store {
            Some(st) if st.wal_records() >= self.compact_threshold => Self::compact_now(handle, w),
            _ => Ok(()),
        }
    }

    /// Compact under the writer lock, swapping serving over to the
    /// pool-backed reopened state when the store is paged (see
    /// [`Database::compact`]).
    fn compact_now(handle: &DocHandle, w: &mut WriterState) -> Result<(), Error> {
        if let Some(st) = &mut w.store {
            let snap = handle.versions.snapshot();
            st.compact(snap.sdoc())?;
            if let Some(paged) = st.reopen_paged()? {
                handle.versions.install_document(paged);
            }
        }
        Ok(())
    }

    /// Serialize a whole document back to XML.
    pub fn serialize(&self, doc: &str) -> Result<String, Error> {
        let snap = self.document(doc)?;
        Ok(xqp_xml::serialize(&snap.sdoc().to_document()))
    }
}

/// Re-derive the manifest from a (locked) catalog view and write it
/// atomically. Lock order is catalog → writer, matching every other path.
fn rewrite_manifest(root: &Path, docs: &BTreeMap<String, Arc<DocHandle>>) -> Result<(), Error> {
    let mut entries = Vec::new();
    for (name, h) in docs {
        let w = h.lock_writer();
        if let Some(st) = &w.store {
            let slot = st
                .dir()
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .ok_or_else(|| Error::Persist("slot directory has no name".into()))?;
            entries.push((name.clone(), slot));
        }
    }
    write_manifest(root, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><price>39</price></book>\
        </bib>";

    fn db() -> Database {
        let d = Database::new();
        d.load_str("bib", BIB).unwrap();
        d
    }

    #[test]
    fn load_query_roundtrip() {
        let d = db();
        assert_eq!(d.query("bib", "/bib/book[1]/title").unwrap(), "<title>TCP</title>");
        assert_eq!(d.document_names(), ["bib"]);
    }

    #[test]
    fn flwor_query() {
        let d = db();
        let out =
            d.query("bib", "for $b in doc()/bib/book where $b/price < 50 return $b/title").unwrap();
        assert_eq!(out, "<title>Data</title>");
    }

    #[test]
    fn unknown_document_error() {
        let d = db();
        assert!(matches!(d.query("nope", "/a"), Err(Error::UnknownDocument(_))));
    }

    #[test]
    fn select_returns_node_ids() {
        let d = db();
        let hits = d.select("bib", "//book").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_lifecycle() {
        let d = db();
        d.create_index("bib").unwrap();
        assert_eq!(d.query("bib", "/bib/book[price > 50]/title").unwrap(), "<title>TCP</title>");
        d.drop_index("bib").unwrap();
        assert!(d.create_index("ghost").is_err());
    }

    #[test]
    fn delete_matching_updates_document() {
        let d = db();
        let removed = d.delete_matching("bib", "/bib/book[@year = 1994]").unwrap();
        assert_eq!(removed, 1);
        assert_eq!(d.select("bib", "//book").unwrap().len(), 1);
        assert_eq!(
            d.serialize("bib").unwrap(),
            "<bib><book year=\"2000\"><title>Data</title><price>39</price></book></bib>"
        );
    }

    #[test]
    fn delete_nested_matches_is_safe() {
        let d = Database::new();
        d.load_str("x", "<r><a><a/></a><a/></r>").unwrap();
        let removed = d.delete_matching("x", "//a").unwrap();
        // Outer deletions swallow inner ones; at least the two top-level
        // subtrees go away and the result is empty of `a`s.
        assert!(removed >= 2);
        assert_eq!(d.select("x", "//a").unwrap().len(), 0);
        assert_eq!(d.serialize("x").unwrap(), "<r/>");
    }

    #[test]
    fn insert_into_appends_fragments() {
        let d = db();
        let n = d.insert_into("bib", "/bib/book", "<tag>new</tag>").unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.select("bib", "//tag").unwrap().len(), 2);
        // Queries see the update.
        let out = d.query("bib", "/bib/book[1]/tag").unwrap();
        assert_eq!(out, "<tag>new</tag>");
    }

    #[test]
    fn explain_surfaces_plan() {
        let d = db();
        let (plan, report) =
            d.explain("bib", "for $b in doc()/bib/book let $t := $b/title return $t").unwrap();
        assert!(plan.contains("tpm-bind"));
        assert!(report.count("R5") > 0);
    }

    #[test]
    fn statistics_refresh_after_updates() {
        let d = db();
        assert_eq!(d.statistics("bib").unwrap().tag_count("book"), 2);
        d.insert_into("bib", "/bib", "<book><title>New</title></book>").unwrap();
        assert_eq!(d.statistics("bib").unwrap().tag_count("book"), 3);
        d.delete_matching("bib", "/bib/book[@year = 1994]").unwrap();
        assert_eq!(d.statistics("bib").unwrap().tag_count("book"), 2);
    }

    #[test]
    fn eval_mode_is_configurable() {
        let mut d = db();
        let q = "for $b in doc()/bib/book order by $b/price return $b/title";
        let streaming = d.query("bib", q).unwrap();
        d.set_eval_mode(EvalMode::Materializing);
        assert_eq!(d.query("bib", q).unwrap(), streaming);
        let (plan, _) = d.explain("bib", q).unwrap();
        assert!(plan.contains("materializing"), "{plan}");
    }

    #[test]
    fn strategy_and_rules_are_configurable() {
        let mut d = db();
        d.set_strategy(Strategy::BinaryJoin);
        d.set_rules(RuleSet::all_except(5));
        let out = d.query("bib", "/bib/book[price > 50]/title").unwrap();
        assert_eq!(out, "<title>TCP</title>");
    }

    #[test]
    fn storage_stats_report() {
        let d = db();
        let st = d.storage_stats("bib").unwrap();
        assert!(st.nodes > 0);
        assert!(st.succinct_total() > 0);
    }

    #[test]
    fn substring_search_with_and_without_suffix_index() {
        let d = db();
        let plain = d.contains_search("bib", "TCP").unwrap();
        assert_eq!(plain.len(), 1);
        d.create_suffix_index("bib").unwrap();
        assert_eq!(d.contains_search("bib", "TCP").unwrap(), plain);
        // Element form: title → book → bib chain.
        let els = d.contains_elements("bib", "TCP").unwrap();
        assert_eq!(els.len(), 3);
        // Suffix index survives updates.
        d.insert_into("bib", "/bib", "<book><title>TCP turbo</title></book>").unwrap();
        assert_eq!(d.contains_search("bib", "TCP").unwrap().len(), 2);
    }

    #[test]
    fn drop_document() {
        let d = db();
        assert!(d.drop_document("bib").unwrap());
        assert!(!d.drop_document("bib").unwrap());
        assert!(d.document("bib").is_err());
    }

    #[test]
    fn root_delete_rejected() {
        let d = db();
        let err = d.delete_matching("bib", "/bib").unwrap_err();
        assert_eq!(err, Error::Update(UpdateError::DeleteRoot));
    }

    fn tmp_db_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xqp-core-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_open_roundtrip() {
        let dir = tmp_db_dir("roundtrip");
        let mut d = db();
        d.load_str("tiny", "<t><x/></t>").unwrap();
        d.persist_to(&dir).unwrap();
        assert!(d.is_durable("bib").unwrap());

        let back = Database::open(&dir).unwrap();
        assert_eq!(back.document_names(), ["bib", "tiny"]);
        assert_eq!(back.serialize("bib").unwrap(), d.serialize("bib").unwrap());
        assert_eq!(back.query("bib", "/bib/book[1]/title").unwrap(), "<title>TCP</title>");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn updates_are_logged_and_survive_reopen() {
        let dir = tmp_db_dir("wal");
        let mut d = db();
        d.persist_to(&dir).unwrap();
        d.insert_into("bib", "/bib/book", "<tag>new</tag>").unwrap();
        d.delete_matching("bib", "/bib/book[@year = 1994]").unwrap();
        assert_eq!(d.wal_records("bib").unwrap(), 3);
        let expect = d.serialize("bib").unwrap();
        drop(d);

        let back = Database::open(&dir).unwrap();
        assert_eq!(back.serialize("bib").unwrap(), expect);
        assert_eq!(back.persist_stats("bib").unwrap().records_replayed, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_update_mid_loop_still_rebuilds_derived_state() {
        // `//*` matches the root too; descending rank order deletes the
        // children first, then hits DeleteRoot. The error must not leave
        // the indexes describing the pre-delete ranks.
        let d = Database::new();
        d.load_str("x", "<r><a>alpha</a><b>beta</b></r>").unwrap();
        d.create_index("x").unwrap();
        d.create_suffix_index("x").unwrap();
        let err = d.delete_matching("x", "//*").unwrap_err();
        assert_eq!(err, Error::Update(UpdateError::DeleteRoot));
        // The children were already spliced out before the root failed…
        assert_eq!(d.serialize("x").unwrap(), "<r/>");
        // …and every piece of derived state followed the document.
        assert_eq!(d.contains_search("x", "alpha").unwrap(), Vec::<SNodeId>::new());
        assert_eq!(d.select("x", "//a").unwrap().len(), 0);
        assert_eq!(d.query("x", "/r").unwrap(), "<r/>");
    }

    #[test]
    fn documents_loaded_after_persist_are_durable() {
        let dir = tmp_db_dir("late-load");
        let mut d = db();
        d.persist_to(&dir).unwrap();
        d.load_str("extra", "<e><f/></e>").unwrap();
        assert!(d.is_durable("extra").unwrap());
        d.insert_into("extra", "/e", "<g/>").unwrap();
        let expect = d.serialize("extra").unwrap();
        drop(d);

        let back = Database::open(&dir).unwrap();
        assert_eq!(back.document_names(), ["bib", "extra"]);
        assert_eq!(back.serialize("extra").unwrap(), expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_documents_stay_dropped_after_reopen() {
        let dir = tmp_db_dir("drop-durable");
        let mut d = db();
        d.load_str("extra", "<e/>").unwrap();
        d.persist_to(&dir).unwrap();
        assert!(d.drop_document("extra").unwrap());
        drop(d);

        let back = Database::open(&dir).unwrap();
        assert_eq!(back.document_names(), ["bib"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_threshold_folds_wal() {
        let dir = tmp_db_dir("compact");
        let mut d = db();
        d.persist_to(&dir).unwrap();
        d.set_compaction_threshold(2);
        d.insert_into("bib", "/bib/book", "<tag>new</tag>").unwrap();
        // Two records ≥ threshold → auto-compaction emptied the WAL.
        assert_eq!(d.wal_records("bib").unwrap(), 0);
        assert_eq!(d.persist_stats("bib").unwrap().compactions, 1);
        let expect = d.serialize("bib").unwrap();
        drop(d);

        let back = Database::open(&dir).unwrap();
        assert_eq!(back.serialize("bib").unwrap(), expect);
        assert_eq!(back.persist_stats("bib").unwrap().records_replayed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
