//! The I/O fault-injection torture harness (`xqp torture`).
//!
//! Each scenario derives a deterministic update workload from a seed — a
//! base document plus a short sequence of insert / delete / compact /
//! reopen operations against a durable [`Database`] — and then injects a
//! fault at **every reachable I/O point** of that workload, twice: once as
//! a *soft* fault (one operation fails, the process lives on) and once as a
//! *crash* (the operation fails and so does all I/O after it, modeling a
//! power cut). See [`xqp_storage::persist::failpoint`] for the injection
//! mechanics.
//!
//! After each injected fault the harness re-opens the store from disk and
//! checks the recovery invariants:
//!
//! 1. **Reopen succeeds.** A fault must never leave the store unreadable.
//! 2. **Atomic updates.** The recovered document equals the model state
//!    either *before* or *after* the faulted operation — never a torn
//!    in-between. (The "after" branch is legal: a WAL record can reach the
//!    disk and survive even though its fsync — the acknowledgement — failed.)
//! 3. **Convergence.** Resuming the remaining operations fault-free lands
//!    on exactly the model's final state.
//!
//! Everything is deterministic: `torture(config)` with the same seed
//! replays the same scenarios and the same fault schedule.

use crate::{Database, Error};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use xqp_gen::Prng;
use xqp_storage::persist::{failpoint, FaultKind};

/// Torture-run configuration.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Master seed: per-scenario seeds derive from it.
    pub seed: u64,
    /// Budget of injected fault points (each is one full replay). The run
    /// finishes the scenario in flight, so slightly more points than this
    /// may execute.
    pub iters: u64,
    /// Run every durable database in the harness behind a buffer pool of
    /// this many pages (`xqp torture --buffer-pages N`). Stores then use
    /// the paged format, so the injected faults land on page writes,
    /// paged opens and the format-conversion paths instead of the
    /// monolithic snapshot. The in-memory model stays unpooled.
    pub buffer_pages: Option<usize>,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig { seed: 1, iters: 500, buffer_pages: None }
    }
}

/// One recovery-invariant violation.
#[derive(Debug, Clone)]
pub struct TortureViolation {
    /// Seed of the scenario that produced it.
    pub scenario_seed: u64,
    /// Index of the faulted I/O point within the scenario.
    pub fault_point: u64,
    /// Soft fault or crash?
    pub crash: bool,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for TortureViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario seed {} fault point {} ({}): {}",
            self.scenario_seed,
            self.fault_point,
            if self.crash { "crash" } else { "soft" },
            self.detail
        )
    }
}

/// Aggregate result of a torture run.
#[derive(Debug, Default)]
pub struct TortureReport {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Faults injected (scenario replays with one armed fault each).
    pub fault_points: u64,
    /// Invariant violations found (empty on a clean run).
    pub violations: Vec<TortureViolation>,
}

impl TortureReport {
    /// Did every injected fault recover cleanly?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One logical operation of a torture scenario.
#[derive(Debug, Clone)]
enum TortureOp {
    /// Insert a fragment under every node matched by `path`.
    Insert { path: String, fragment: String },
    /// Delete every subtree matched by `path`.
    Delete { path: String },
    /// Fold the WAL into a fresh snapshot.
    Compact,
    /// Drop the handle and recover from disk.
    Reopen,
}

const DOC: &str = "t";

/// A deterministic workload: base document + operation sequence.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    base_xml: String,
    ops: Vec<TortureOp>,
}

fn gen_scenario(seed: u64) -> Scenario {
    let mut rng = Prng::seed_from_u64(seed);
    let width = 2 + (rng.next_u64() % 3) as usize;
    let mut base = String::from("<db>");
    for i in 0..width {
        base.push_str(&format!("<item id=\"{i}\"><v>{}</v></item>", rng.next_u64() % 10));
    }
    base.push_str("</db>");

    let n_ops = 3 + (rng.next_u64() % 3) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for k in 0..n_ops {
        ops.push(match rng.next_u64() % 5 {
            0 | 1 => TortureOp::Insert {
                path: "/db".into(),
                fragment: format!("<item id=\"n{k}\"><v>{}</v></item>", rng.next_u64() % 10),
            },
            2 => TortureOp::Delete { path: format!("/db/item[{}]", 1 + rng.next_u64() % 3) },
            3 => TortureOp::Compact,
            _ => TortureOp::Reopen,
        });
    }
    Scenario { seed, base_xml: base, ops }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xqp-torture-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serialized state fingerprint of the document (full tree).
fn state(db: &Database) -> Result<String, Error> {
    db.query(DOC, "/db")
}

/// Open the durable store, behind a pool when the run is paged.
fn open_db(dir: &Path, pages: Option<usize>) -> Result<Database, Error> {
    match pages {
        Some(n) => Database::open_with_buffer(dir, n),
        None => Database::open(dir),
    }
}

/// Apply one op to a live durable database. `Reopen` replaces the handle.
fn apply_op(
    db: &mut Database,
    dir: &Path,
    op: &TortureOp,
    pages: Option<usize>,
) -> Result<(), Error> {
    match op {
        TortureOp::Insert { path, fragment } => {
            db.insert_into(DOC, path, fragment)?;
        }
        TortureOp::Delete { path } => {
            db.delete_matching(DOC, path)?;
        }
        TortureOp::Compact => db.compact(DOC)?,
        TortureOp::Reopen => {
            // Replace the handle via a fresh recovery; on error the caller
            // re-opens after disarming, so a half-dead handle is never used.
            let fresh = open_db(dir, pages)?;
            *db = fresh;
        }
    }
    Ok(())
}

/// Run the scenario fault-free on an in-memory model database, returning
/// the serialized state after the base load and after each op. `states[i]`
/// is the state *before* `ops[i]`; `states[ops.len()]` is the final state.
fn model_states(sc: &Scenario) -> Result<Vec<String>, Error> {
    let db = Database::new();
    db.load_str(DOC, &sc.base_xml)?;
    let mut states = Vec::with_capacity(sc.ops.len() + 1);
    states.push(state(&db)?);
    for op in &sc.ops {
        match op {
            TortureOp::Insert { path, fragment } => {
                db.insert_into(DOC, path, fragment)?;
            }
            TortureOp::Delete { path } => {
                db.delete_matching(DOC, path)?;
            }
            // No durable side to fold or recover in the model.
            TortureOp::Compact | TortureOp::Reopen => {}
        }
        states.push(state(&db)?);
    }
    Ok(states)
}

/// Create a fresh durable store for the scenario, fault-free.
fn setup(sc: &Scenario, dir: &Path, pages: Option<usize>) -> Result<Database, Error> {
    let mut db = Database::new();
    if let Some(n) = pages {
        db.set_buffer_pool(n);
    }
    db.load_str(DOC, &sc.base_xml)?;
    db.persist_to(dir)?;
    Ok(db)
}

/// Count the I/O points reachable while replaying the scenario's ops
/// (setup excluded — faults target the update/compact/reopen paths).
fn count_io_points(sc: &Scenario, pages: Option<usize>) -> Result<u64, Error> {
    let dir = fresh_dir("count");
    let mut db = setup(sc, &dir, pages)?;
    failpoint::arm_count();
    for op in &sc.ops {
        apply_op(&mut db, &dir, op, pages)?;
    }
    let n = failpoint::ops_seen();
    failpoint::disarm();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(n)
}

/// Replay the scenario with a fault armed at I/O point `f`, checking the
/// recovery invariants. Returns a violation description on failure.
fn run_fault_point(
    sc: &Scenario,
    states: &[String],
    f: u64,
    kind: FaultKind,
    crash: bool,
    pages: Option<usize>,
) -> Result<(), String> {
    let dir = fresh_dir("run");
    let result = (|| {
        let mut db = setup(sc, &dir, pages).map_err(|e| format!("fault-free setup failed: {e}"))?;
        failpoint::arm_fail_nth(f, kind, crash);

        let mut resume_from = sc.ops.len();
        for (i, op) in sc.ops.iter().enumerate() {
            let r = apply_op(&mut db, &dir, op, pages);
            if failpoint::is_armed() {
                // Fault not reached yet: the op must have succeeded.
                if let Err(e) = r {
                    failpoint::disarm();
                    return Err(format!("op {i} failed before the armed fault: {e}"));
                }
                continue;
            }
            // The fault fired inside op `i` (whether or not the op
            // surfaced it — best-effort paths swallow injected errors by
            // design). Recovery protocol: drop the handle, reopen from
            // disk, and check the atomicity invariant.
            failpoint::disarm();
            drop(db);
            db = open_db(&dir, pages)
                .map_err(|e| format!("reopen after fault in op {i} failed: {e}"))?;
            let got = state(&db).map_err(|e| format!("query after recovery failed: {e}"))?;
            let (before, after) = (&states[i], &states[i + 1]);
            if &got == after {
                resume_from = i + 1; // the faulted op landed durably
            } else if &got == before {
                resume_from = i; // the faulted op was rolled back
            } else {
                return Err(format!(
                    "recovered state after fault in op {i} ({op:?}) is neither \
                     before nor after the op:\n  before: {before}\n  after:  {after}\n  \
                     got:    {got}"
                ));
            }
            break;
        }

        if failpoint::is_armed() {
            // Deterministic replays always reach the counted point; if not,
            // treat it as exhausted rather than a violation.
            failpoint::disarm();
            return Ok(());
        }

        // Convergence: finish the remaining ops fault-free and land on the
        // model's final state.
        for (i, op) in sc.ops.iter().enumerate().skip(resume_from) {
            apply_op(&mut db, &dir, op, pages)
                .map_err(|e| format!("op {i} failed during fault-free resume: {e}"))?;
        }
        let final_got = state(&db).map_err(|e| format!("final query after resume failed: {e}"))?;
        let final_want = &states[sc.ops.len()];
        if &final_got != final_want {
            return Err(format!(
                "final state diverged after recovery:\n  want: {final_want}\n  got:  {final_got}"
            ));
        }

        // The durable image must agree with the live handle, too.
        drop(db);
        let db = open_db(&dir, pages).map_err(|e| format!("final reopen failed: {e}"))?;
        let reopened = state(&db).map_err(|e| format!("final reopened query failed: {e}"))?;
        if &reopened != final_want {
            return Err(format!(
                "reopened final state diverged:\n  want: {final_want}\n  got:  {reopened}"
            ));
        }
        Ok(())
    })();
    failpoint::disarm();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

const KINDS: [FaultKind; 3] = [FaultKind::Error, FaultKind::DiskFull, FaultKind::ShortWrite];

/// Torture one scenario: every reachable I/O point × {soft, crash}.
/// Returns (fault points executed, violations).
fn torture_scenario(sc: &Scenario, pages: Option<usize>) -> (u64, Vec<TortureViolation>) {
    let mut violations = Vec::new();
    let states = match model_states(sc) {
        Ok(s) => s,
        Err(e) => {
            violations.push(TortureViolation {
                scenario_seed: sc.seed,
                fault_point: 0,
                crash: false,
                detail: format!("model replay failed (scenario bug): {e}"),
            });
            return (0, violations);
        }
    };
    let total = match count_io_points(sc, pages) {
        Ok(n) => n,
        Err(e) => {
            violations.push(TortureViolation {
                scenario_seed: sc.seed,
                fault_point: 0,
                crash: false,
                detail: format!("fault-free counting pass failed: {e}"),
            });
            return (0, violations);
        }
    };
    let mut points = 0;
    for f in 0..total {
        for crash in [false, true] {
            points += 1;
            let kind = KINDS[(f % 3) as usize];
            if let Err(detail) = run_fault_point(sc, &states, f, kind, crash, pages) {
                violations.push(TortureViolation {
                    scenario_seed: sc.seed,
                    fault_point: f,
                    crash,
                    detail,
                });
            }
        }
    }
    (points, violations)
}

/// Run the torture harness until `config.iters` fault points have been
/// injected (finishing the scenario in flight).
pub fn torture(config: &TortureConfig) -> TortureReport {
    let mut master = Prng::seed_from_u64(config.seed);
    let mut report = TortureReport::default();
    while report.fault_points < config.iters {
        let scenario_seed = master.next_u64();
        let sc = gen_scenario(scenario_seed);
        let (points, violations) = torture_scenario(&sc, config.buffer_pages);
        report.scenarios += 1;
        report.fault_points += points;
        report.violations.extend(violations);
        if report.violations.len() >= 5 {
            break; // enough signal; stop burning time
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let a = gen_scenario(42);
        let b = gen_scenario(42);
        assert_eq!(a.base_xml, b.base_xml);
        assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
        let c = gen_scenario(43);
        assert_ne!(format!("{}{:?}", a.base_xml, a.ops), format!("{}{:?}", c.base_xml, c.ops));
    }

    #[test]
    fn model_states_track_each_op() {
        let sc = gen_scenario(7);
        let states = model_states(&sc).unwrap();
        assert_eq!(states.len(), sc.ops.len() + 1);
        for s in &states {
            assert!(s.starts_with("<db>") || s.starts_with("<db/>"), "state: {s}");
        }
    }

    #[test]
    fn counting_pass_sees_io() {
        let sc = gen_scenario(3);
        let n = count_io_points(&sc, None).unwrap();
        // Every scenario has >= 3 ops, each touching the WAL (or the
        // snapshot, for compaction) — there must be plenty of I/O points.
        assert!(n >= 3, "only {n} I/O points counted");
    }

    #[test]
    fn small_torture_run_is_clean() {
        let report = torture(&TortureConfig { seed: 0xdecaf, iters: 60, buffer_pages: None });
        assert!(report.fault_points >= 60);
        assert!(report.scenarios >= 1);
        assert!(
            report.is_clean(),
            "violations:\n{}",
            report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn paged_torture_run_is_clean() {
        // Same invariants over the paged store format: every database in
        // the harness runs behind a 4-page pool, so faults land on page
        // writes, paged opens and the snapshot→paged conversion paths.
        let report = torture(&TortureConfig { seed: 0xbeef, iters: 40, buffer_pages: Some(4) });
        assert!(report.fault_points >= 40);
        assert!(
            report.is_clean(),
            "violations:\n{}",
            report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
