//! The differential query fuzzer (`xqp fuzz`).
//!
//! Each iteration derives a random *(document, query)* case from a seed
//! ([`xqp_gen::qgen`]), executes it under the full `Strategy × EvalMode`
//! matrix ([`xqp_exec::differential`]), and additionally pushes it through
//! the durable store — fresh load, a `persist_to`/`Database::open` round
//! trip, and an index-accelerated re-run — so persistence and σv probes sit
//! inside the oracle too. Any disagreement (or panic, anywhere) is shrunk
//! greedily to a minimal repro and reported with the case seed, which can
//! be checked into `tests/differential.rs` as a named regression.
//!
//! Everything is deterministic: `fuzz(seed, iters)` replays identically,
//! and a single failing case replays through [`run_seed`].

use crate::Database;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xqp_exec::differential::{
    check_budget_matrix, check_matrix, check_rules_matrix, check_select_matrix, Outcome,
};
use xqp_gen::qgen::{gen_case, gen_fn_case, gen_join_case, GenCase};
use xqp_gen::Prng;
use xqp_storage::persist::spill_paged;
use xqp_storage::{BufferPool, SuccinctDoc};

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: per-iteration case seeds derive from it.
    pub seed: u64,
    /// Iterations to run.
    pub iters: u64,
    /// Also run each case through the durable-store round trip.
    pub check_persistence: bool,
    /// Cap on re-checks spent shrinking one failure.
    pub max_shrink_steps: usize,
    /// Stop after this many distinct failures.
    pub max_failures: usize,
    /// Join mode: derive join-shaped cases ([`gen_join_case`]) and push
    /// each through the optimizer-rule ablation leg as well — every rule
    /// set (all, none, each new rule knocked out) must agree across the
    /// full engine matrix.
    pub joins: bool,
    /// Function mode: derive function-surface cases ([`gen_fn_case`] —
    /// aggregates over nested FLWORs, positional predicates, quantifiers,
    /// typed-error hazards) and push each through the rule-ablation leg,
    /// so the aggregate order-by prune sits inside the oracle.
    pub functions: bool,
    /// Paged mode (`xqp fuzz --tiny-pool`): spill each case's document to
    /// a paged file behind a buffer pool of this many pages and re-run the
    /// full strategy × mode matrix over the paged document; the durable
    /// legs also open their stores behind the same-sized pool. A tiny
    /// value (the CLI uses 4) forces constant eviction, so every page is
    /// faulted, dropped and re-faulted mid-query.
    pub buffer_pages: Option<usize>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iters: 100,
            check_persistence: true,
            max_shrink_steps: 160,
            max_failures: 5,
            joins: false,
            functions: false,
            buffer_pages: None,
        }
    }
}

/// One minimized fuzz failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case seed that produced it (replayable via [`run_seed`]).
    pub case_seed: u64,
    /// Minimized document.
    pub doc_xml: String,
    /// Minimized query.
    pub query: String,
    /// Minimized select-plane probe path, when one survived shrinking.
    pub probe: Option<String>,
    /// The divergence report for the minimized case.
    pub report: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case seed {}:", self.case_seed)?;
        writeln!(f, "  doc:   {}", self.doc_xml)?;
        writeln!(f, "  query: {}", self.query)?;
        if let Some(probe) = &self.probe {
            writeln!(f, "  probe: {probe}")?;
        }
        for line in self.report.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Iterations executed.
    pub iters_run: u64,
    /// Minimized failures, at most `max_failures`.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// True when every iteration agreed across the whole matrix.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check one explicit (document, query) pair across the full engine matrix
/// plus (optionally) the durable-store round trip. `Err` carries a
/// human-readable divergence report.
pub fn check_case(xml: &str, query: &str, persistence: bool) -> Result<(), String> {
    check_case_pooled(xml, query, persistence, None)
}

/// [`check_case`] with an optional buffer pool: when `buffer_pages` is set
/// the document is additionally spilled to a paged file behind a pool of
/// that many pages and the full strategy × mode matrix re-runs over the
/// paged document (which must agree with the resident reference), and the
/// durable-store legs open their stores behind the same-sized pool.
pub fn check_case_pooled(
    xml: &str,
    query: &str,
    persistence: bool,
    buffer_pages: Option<usize>,
) -> Result<(), String> {
    let doc = match SuccinctDoc::parse(xml) {
        Ok(d) => d,
        Err(e) => return Err(format!("document failed to parse: {e}")),
    };
    let want = match check_matrix(&doc, query) {
        Ok(outcome) => outcome,
        Err(divergence) => return Err(divergence.to_string()),
    };
    // Budget leg: the same case under tight resource limits. Every
    // configuration must trip as a limit-class error or return the full
    // value — a silently truncated result is a divergence.
    if let Err(divergence) = check_budget_matrix(&doc, query) {
        return Err(format!("governor budget leg:\n{divergence}"));
    }
    if let Some(pages) = buffer_pages {
        // Paged leg: the same matrix over the document served from pages
        // behind a deliberately starved pool. Every navigation primitive
        // now faults pages in (and evicts them mid-query), so a paged
        // rank/select or content-access bug shows up as a divergence here.
        let pool = BufferPool::new(pages);
        let path = fresh_tmp_dir().with_extension("paged.xqp");
        let spilled = catch_unwind(AssertUnwindSafe(|| {
            spill_paged(&path, &doc, &pool).map_err(|e| format!("paged spill failed: {e}"))
        }))
        .map_err(|p| {
            format!("paged leg panicked: {}", xqp_exec::differential::panic_message(p))
        })??;
        match check_matrix(&spilled, query) {
            Ok(got) if got.agrees_with(&want) => {}
            Ok(got) => {
                return Err(format!(
                    "paged leg ({pages}-page pool) diverged from the resident reference:\n  \
                     resident: {want}\n  paged:    {got}"
                ));
            }
            Err(divergence) => return Err(format!("paged leg ({pages}-page pool):\n{divergence}")),
        }
    }
    if persistence {
        let legs = persistence_outcomes(xml, query, buffer_pages)?;
        let mut report = String::new();
        for (label, got) in &legs {
            if !got.agrees_with(&want) {
                report.push_str(&format!("  {label}: {got}\n"));
            }
        }
        if !report.is_empty() {
            return Err(format!("reference naive+materializing: {want}\n{report}"));
        }
    }
    Ok(())
}

/// Check one bare path across every pattern-matching strategy on the
/// select plane (`Executor::eval_path_str`). Paths bypass the FLWOR
/// evaluation modes, so this matrix is strategy-only, with `Naive` as the
/// reference. `Err` carries a human-readable divergence report.
pub fn check_path(xml: &str, path: &str) -> Result<(), String> {
    let doc = match SuccinctDoc::parse(xml) {
        Ok(d) => d,
        Err(e) => return Err(format!("document failed to parse: {e}")),
    };
    match check_select_matrix(&doc, path) {
        Ok(_) => Ok(()),
        Err(divergence) => Err(format!("select probe `{path}`:\n{divergence}")),
    }
}

/// Unique-per-process scratch directories for the persistence leg.
fn fresh_tmp_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xqp-fuzz-{}-{n}", std::process::id()))
}

/// Run `query` through the `Database` layer three ways: freshly loaded,
/// after a save/open round trip, and with value + suffix indexes built.
/// With `buffer_pages` set, every database in the chain runs behind a
/// buffer pool of that many pages (paged store format, spilled non-durable
/// documents). `Err` reports a panic (panics inside the legs are caught).
fn persistence_outcomes(
    xml: &str,
    query: &str,
    buffer_pages: Option<usize>,
) -> Result<Vec<(&'static str, Outcome)>, String> {
    let dir = fresh_tmp_dir();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut out = Vec::new();
        let mut db = Database::new();
        if let Some(pages) = buffer_pages {
            db.set_buffer_pool(pages);
        }
        if let Err(e) = db.load_str("doc", xml) {
            let err = Outcome::Error(e.to_string());
            return vec![
                ("persist:fresh", err.clone()),
                ("persist:reopened", err.clone()),
                ("persist:indexed", err),
            ];
        }
        out.push(("persist:fresh", outcome_of(db.query("doc", query))));
        let reopened = db
            .persist_to(&dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                drop(db);
                match buffer_pages {
                    Some(pages) => Database::open_with_buffer(&dir, pages),
                    None => Database::open(&dir),
                }
                .map_err(|e| e.to_string())
            })
            .map_err(Outcome::Error);
        match reopened {
            Ok(db) => {
                out.push(("persist:reopened", outcome_of(db.query("doc", query))));
                let indexed = db
                    .create_index("doc")
                    .and_then(|()| db.create_suffix_index("doc"))
                    .map_err(|e| Outcome::Error(e.to_string()));
                match indexed {
                    Ok(()) => out.push(("persist:indexed", outcome_of(db.query("doc", query)))),
                    Err(e) => out.push(("persist:indexed", e)),
                }
            }
            Err(e) => {
                out.push(("persist:reopened", e.clone()));
                out.push(("persist:indexed", e));
            }
        }
        out
    }));
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(legs) => Ok(legs),
        Err(payload) => Err(format!(
            "persistence leg panicked: {}",
            xqp_exec::differential::panic_message(payload)
        )),
    }
}

fn outcome_of(res: Result<String, crate::Error>) -> Outcome {
    match res {
        Ok(v) => Outcome::Value(v),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Generate, check, and (on failure) shrink the case for one seed.
pub fn run_seed(case_seed: u64, cfg: &FuzzConfig) -> Option<FuzzFailure> {
    let case = if cfg.joins {
        gen_join_case(case_seed)
    } else if cfg.functions {
        gen_fn_case(case_seed)
    } else {
        gen_case(case_seed)
    };
    let report = check_one(&case, cfg)?;
    let (min_case, min_report) = shrink(case, report, cfg);
    Some(FuzzFailure {
        case_seed,
        doc_xml: min_case.doc_xml(),
        query: min_case.query_text(),
        probe: min_case.probe.as_ref().map(|p| p.render()),
        report: min_report,
    })
}

fn check_one(case: &GenCase, cfg: &FuzzConfig) -> Option<String> {
    let xml = case.doc_xml();
    if let Err(report) =
        check_case_pooled(&xml, &case.query_text(), cfg.check_persistence, cfg.buffer_pages)
    {
        return Some(report);
    }
    if cfg.joins || cfg.functions {
        if let Err(report) = check_rules(&xml, &case.query_text()) {
            return Some(report);
        }
    }
    if let Some(probe) = &case.probe {
        if let Err(report) = check_path(&xml, &probe.render()) {
            return Some(report);
        }
    }
    None
}

/// Check one (document, query) pair across the optimizer-rule ablation
/// matrix: the all-rules reference versus each named ablation under every
/// engine configuration. `Err` carries a human-readable divergence report.
pub fn check_rules(xml: &str, query: &str) -> Result<(), String> {
    let doc = match SuccinctDoc::parse(xml) {
        Ok(d) => d,
        Err(e) => return Err(format!("document failed to parse: {e}")),
    };
    check_rules_matrix(&doc, query).map_err(|report| format!("optimizer rule leg:\n{report}"))
}

/// Greedy shrink: keep the first candidate that still fails, iterate to a
/// fixpoint (or the step budget).
fn shrink(mut case: GenCase, mut report: String, cfg: &FuzzConfig) -> (GenCase, String) {
    let mut steps = 0usize;
    'outer: loop {
        for cand in case.shrink_candidates() {
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            steps += 1;
            if let Some(r) = check_one(&cand, cfg) {
                case = cand;
                report = r;
                continue 'outer;
            }
        }
        break;
    }
    (case, report)
}

/// Run the fuzzer: `cfg.iters` random cases derived from `cfg.seed`.
/// Panics raised inside engines are captured (and silenced — the default
/// panic hook is suspended for the duration of the run).
pub fn fuzz(cfg: &FuzzConfig) -> FuzzSummary {
    with_quiet_panics(|| {
        let mut master = Prng::seed_from_u64(cfg.seed);
        let mut summary = FuzzSummary::default();
        for _ in 0..cfg.iters {
            let case_seed = master.next_u64();
            summary.iters_run += 1;
            if let Some(failure) = run_seed(case_seed, cfg) {
                summary.failures.push(failure);
                if summary.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
        summary
    })
}

/// Suspend the default panic hook (which prints a backtrace per panic —
/// noise, when the fuzzer catches panics by design) around `f`.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);
    out
}

/// Test helper: assert one (document, query) pair agrees across the full
/// engine matrix *and* the durable-store round trip. Panics with the full
/// divergence report on disagreement.
pub fn assert_all_engines_agree(xml: &str, query: &str) {
    if let Err(report) = check_case(xml, query, true) {
        panic!("engines disagree\n  doc:   {xml}\n  query: {query}\n{report}");
    }
}

/// Test helper: assert one bare path selects identical node sequences under
/// every pattern-matching strategy. Panics with the divergence report on
/// disagreement.
pub fn assert_all_strategies_select(xml: &str, path: &str) {
    if let Err(report) = check_path(xml, path) {
        panic!("strategies disagree\n  doc:  {xml}\n  path: {path}\n{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_case_agrees() {
        assert_all_engines_agree("<r><a>1</a></r>", "for $v0 in doc()/a return $v0");
    }

    #[test]
    fn check_case_reports_unparseable_documents() {
        let err = check_case("<r>", "for $v0 in doc()/a return $v0", false).unwrap_err();
        assert!(err.contains("parse"), "{err}");
    }

    #[test]
    fn tiny_pool_leg_agrees() {
        // A 2-page pool (the minimum) under the full matrix: every paged
        // navigation faults and evicts constantly, and must still agree
        // with the resident reference.
        let xml = "<r><a>alpha</a><b><a>beta</a></b><a>gamma</a></r>";
        let q = "for $v0 in doc()//a return $v0";
        if let Err(report) = check_case_pooled(xml, q, true, Some(2)) {
            panic!("paged legs diverged:\n{report}");
        }
    }

    #[test]
    fn fuzz_is_deterministic() {
        let cfg = FuzzConfig { iters: 5, check_persistence: false, ..FuzzConfig::default() };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.iters_run, b.iters_run);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn with_quiet_panics_restores_hook() {
        let caught = with_quiet_panics(|| catch_unwind(|| panic!("silent")).is_err());
        assert!(caught);
        // After restoration a caught panic still works.
        assert!(catch_unwind(|| panic!("loud")).is_err());
    }
}
