//! Qualified names.
//!
//! The engine keeps namespace handling deliberately light: a [`QName`] is a
//! `prefix:local` pair compared textually. This matches the paper's data
//! model, where pattern-graph vertices are labeled with plain element names
//! drawn from a finite alphabet Σ (Definition 1). Full URI-based namespace
//! resolution is orthogonal to the query-processing techniques under study
//! and would only obscure the tag symbol table in `xqp-storage`.

use std::fmt;

/// A qualified XML name: optional prefix plus local part.
///
/// Ordering and equality are textual on `(prefix, local)`, which makes
/// `QName` directly usable as a key in the storage layer's tag symbol table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Optional namespace prefix (the part before `:`), e.g. `xs` in `xs:int`.
    pub prefix: Option<String>,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// A name with no prefix.
    pub fn local(name: impl Into<String>) -> Self {
        QName { prefix: None, local: name.into() }
    }

    /// A name with a prefix.
    pub fn prefixed(prefix: impl Into<String>, name: impl Into<String>) -> Self {
        QName { prefix: Some(prefix.into()), local: name.into() }
    }

    /// Parse `prefix:local` or `local` from a raw lexical name.
    ///
    /// The split is on the first `:`; further colons stay in the local part
    /// (they are invalid XML anyway and the parser rejects them upstream).
    pub fn parse(raw: &str) -> Self {
        match raw.find(':') {
            Some(i) => QName::prefixed(&raw[..i], &raw[i + 1..]),
            None => QName::local(raw),
        }
    }

    /// The full lexical form, `prefix:local` or `local`.
    pub fn as_lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.clone(),
        }
    }

    /// Whether this name matches a name test, where the test may be the
    /// wildcard `*`, a plain local name, or a full `prefix:local` form.
    pub fn matches_test(&self, test: &str) -> bool {
        if test == "*" {
            return true;
        }
        match test.find(':') {
            Some(i) => self.prefix.as_deref() == Some(&test[..i]) && self.local == test[i + 1..],
            None => self.prefix.is_none() && self.local == test,
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{}:{}", p, self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

/// Returns true if `c` may start an XML name.
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Returns true if `c` may continue an XML name (colon excluded — the parser
/// handles prefix splitting itself).
pub fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_unprefixed() {
        let q = QName::parse("book");
        assert_eq!(q, QName::local("book"));
        assert_eq!(q.to_string(), "book");
    }

    #[test]
    fn parse_prefixed() {
        let q = QName::parse("bib:book");
        assert_eq!(q, QName::prefixed("bib", "book"));
        assert_eq!(q.as_lexical(), "bib:book");
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(QName::local("a").matches_test("*"));
        assert!(QName::prefixed("p", "a").matches_test("*"));
    }

    #[test]
    fn name_test_respects_prefix() {
        assert!(QName::local("a").matches_test("a"));
        assert!(!QName::prefixed("p", "a").matches_test("a"));
        assert!(QName::prefixed("p", "a").matches_test("p:a"));
        assert!(!QName::local("a").matches_test("p:a"));
    }

    #[test]
    fn ordering_is_textual() {
        assert!(QName::local("a") < QName::local("b"));
        // `None` prefix sorts before `Some`.
        assert!(QName::local("z") < QName::prefixed("a", "a"));
    }

    #[test]
    fn name_char_classes() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('1'));
        assert!(is_name_char('1'));
        assert!(is_name_char('-'));
        assert!(is_name_char('.'));
        assert!(!is_name_char(' '));
    }
}
