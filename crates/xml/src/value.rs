//! Atomic values of the XQuery data model.
//!
//! The paper's value-based operators (σv, ⋈v in Table 1) compare element and
//! attribute contents against literals. Content in XML is untyped text, so
//! the comparison semantics follow XQuery general comparisons: when one
//! operand is numeric, the untyped operand is cast to a number; otherwise
//! comparison is on strings. [`Atomic`] carries that logic so the algebra,
//! executor and storage index all agree on it.

use std::cmp::Ordering;
use std::fmt;

/// An atomic value: the primitive sorts of §3.2 plus `Double`, which the
/// XQuery data model requires for non-integral numerics.
#[derive(Debug, Clone, PartialEq)]
pub enum Atomic {
    /// `xs:integer`.
    Integer(i64),
    /// `xs:double`.
    Double(f64),
    /// `xs:boolean`.
    Boolean(bool),
    /// `xs:string` — also the type of untyped node content.
    Str(String),
}

impl Atomic {
    /// Interpret a lexical token the way XQuery casts untyped data: integer
    /// if it parses as one, double if it parses as one, otherwise a string.
    pub fn from_lexical(s: &str) -> Atomic {
        let t = s.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Atomic::Integer(i);
        }
        if let Ok(d) = t.parse::<f64>() {
            return Atomic::Double(d);
        }
        Atomic::Str(s.to_string())
    }

    /// The numeric view of this value, if it has one (strings are parsed;
    /// booleans are not numbers).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Atomic::Integer(i) => Some(*i as f64),
            Atomic::Double(d) => Some(*d),
            Atomic::Str(s) => s.trim().parse::<f64>().ok(),
            Atomic::Boolean(_) => None,
        }
    }

    /// The string view (XQuery `fn:string`).
    pub fn as_string(&self) -> String {
        match self {
            Atomic::Integer(i) => i.to_string(),
            Atomic::Double(d) => format_double(*d),
            Atomic::Boolean(b) => b.to_string(),
            Atomic::Str(s) => s.clone(),
        }
    }

    /// Effective boolean value of a single atomic (XQuery `fn:boolean`):
    /// false for `false`, zero, NaN and the empty string.
    pub fn effective_boolean(&self) -> bool {
        match self {
            Atomic::Boolean(b) => *b,
            Atomic::Integer(i) => *i != 0,
            Atomic::Double(d) => *d != 0.0 && !d.is_nan(),
            Atomic::Str(s) => !s.is_empty(),
        }
    }

    /// True if this is a numeric type (not merely numeric-parsable).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Atomic::Integer(_) | Atomic::Double(_))
    }

    /// XQuery general-comparison ordering with untyped promotion:
    ///
    /// * two numerics (or numeric vs. numeric-parsable string) compare as
    ///   doubles — `None` if the string side does not parse;
    /// * two strings compare lexicographically;
    /// * booleans compare with booleans only;
    /// * anything else is incomparable (`None`), which general comparisons
    ///   treat as "this pair does not match".
    pub fn compare(&self, other: &Atomic) -> Option<Ordering> {
        use Atomic::*;
        match (self, other) {
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Boolean(_), _) | (_, Boolean(_)) => None,
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            _ => {
                // At least one side is a declared number: promote both.
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering used by `order by`: booleans, then numbers (NaN
    /// last), then strings lexicographically.
    ///
    /// Unlike [`Atomic::compare`], this must be a genuine total order —
    /// `sort` requires transitivity, and mixing the numeric promotion of
    /// `compare` (`5 = "5"`, `7 < "30"`) with lexicographic string
    /// comparison (`"30" < "5"`) creates cycles. The standard library's
    /// sort detects such cycles on large enough inputs and panics with
    /// "comparison function does not correctly implement a total order";
    /// the differential fuzzer hit exactly that with heterogeneous `order
    /// by` keys. So here types never promote across the number/string
    /// divide: a numeric *string* sorts as a string, after every declared
    /// number.
    pub fn order_key_cmp(&self, other: &Atomic) -> Ordering {
        use Atomic::*;
        fn rank(a: &Atomic) -> u8 {
            match a {
                Boolean(_) => 0,
                Integer(_) | Double(_) => 1,
                Str(_) => 2,
            }
        }
        match (self, other) {
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_str().cmp(b.as_str()),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (x, y) = (a.as_number().unwrap_or(f64::NAN), b.as_number().unwrap_or(f64::NAN));
                // NaN sorts after every number and equal to itself.
                x.partial_cmp(&y).unwrap_or_else(|| x.is_nan().cmp(&y.is_nan()))
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Numeric addition with integer preservation.
    pub fn add(&self, other: &Atomic) -> Option<Atomic> {
        numeric_op(self, other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Numeric subtraction with integer preservation.
    pub fn sub(&self, other: &Atomic) -> Option<Atomic> {
        numeric_op(self, other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication with integer preservation.
    pub fn mul(&self, other: &Atomic) -> Option<Atomic> {
        numeric_op(self, other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division — always a double, per XQuery `div` on mixed input; integer
    /// division by zero yields `None`.
    pub fn div(&self, other: &Atomic) -> Option<Atomic> {
        let a = self.as_number()?;
        let b = other.as_number()?;
        if b == 0.0 {
            return None;
        }
        Some(Atomic::Double(a / b))
    }

    /// Integer modulus (`mod`); `None` on zero divisor or non-integers.
    pub fn int_mod(&self, other: &Atomic) -> Option<Atomic> {
        match (self.as_integer(), other.as_integer()) {
            (Some(a), Some(b)) if b != 0 => Some(Atomic::Integer(a % b)),
            _ => None,
        }
    }

    /// The integer view, if exactly representable.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Atomic::Integer(i) => Some(*i),
            Atomic::Double(d) if d.fract() == 0.0 && d.is_finite() => Some(*d as i64),
            Atomic::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }
}

fn numeric_op(
    a: &Atomic,
    b: &Atomic,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    dbl_op: impl Fn(f64, f64) -> f64,
) -> Option<Atomic> {
    if let (Atomic::Integer(x), Atomic::Integer(y)) = (a, b) {
        if let Some(r) = int_op(*x, *y) {
            return Some(Atomic::Integer(r));
        }
    }
    Some(Atomic::Double(dbl_op(a.as_number()?, b.as_number()?)))
}

/// XQuery-style double formatting: integral doubles print without `.0`.
fn format_double(d: f64) -> String {
    if d.is_finite() && d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for Atomic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_string())
    }
}

impl From<i64> for Atomic {
    fn from(v: i64) -> Self {
        Atomic::Integer(v)
    }
}

impl From<f64> for Atomic {
    fn from(v: f64) -> Self {
        Atomic::Double(v)
    }
}

impl From<bool> for Atomic {
    fn from(v: bool) -> Self {
        Atomic::Boolean(v)
    }
}

impl From<&str> for Atomic {
    fn from(v: &str) -> Self {
        Atomic::Str(v.to_string())
    }
}

impl From<String> for Atomic {
    fn from(v: String) -> Self {
        Atomic::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lexical_detects_types() {
        assert_eq!(Atomic::from_lexical("42"), Atomic::Integer(42));
        assert_eq!(Atomic::from_lexical(" -7 "), Atomic::Integer(-7));
        assert_eq!(Atomic::from_lexical("3.5"), Atomic::Double(3.5));
        assert_eq!(Atomic::from_lexical("abc"), Atomic::Str("abc".into()));
        // Leading zeros still parse as integers.
        assert_eq!(Atomic::from_lexical("007"), Atomic::Integer(7));
    }

    #[test]
    fn numeric_string_promotion_in_compare() {
        let n = Atomic::Integer(10);
        let s = Atomic::Str("9.5".into());
        assert_eq!(n.compare(&s), Some(Ordering::Greater));
        assert_eq!(s.compare(&n), Some(Ordering::Less));
    }

    #[test]
    fn string_string_is_lexicographic() {
        // "10" < "9" as strings even though 10 > 9 numerically.
        let a = Atomic::Str("10".into());
        let b = Atomic::Str("9".into());
        assert_eq!(a.compare(&b), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_pairs() {
        assert_eq!(Atomic::Integer(1).compare(&Atomic::Str("abc".into())), None);
        assert_eq!(Atomic::Boolean(true).compare(&Atomic::Integer(1)), None);
    }

    #[test]
    fn boolean_compare() {
        assert_eq!(Atomic::Boolean(false).compare(&Atomic::Boolean(true)), Some(Ordering::Less));
    }

    #[test]
    fn effective_boolean_values() {
        assert!(!Atomic::Integer(0).effective_boolean());
        assert!(Atomic::Integer(-1).effective_boolean());
        assert!(!Atomic::Double(f64::NAN).effective_boolean());
        assert!(!Atomic::Str("".into()).effective_boolean());
        assert!(Atomic::Str("false".into()).effective_boolean()); // non-empty string
        assert!(!Atomic::Boolean(false).effective_boolean());
    }

    #[test]
    fn arithmetic_preserves_integers() {
        assert_eq!(Atomic::Integer(2).add(&Atomic::Integer(3)), Some(Atomic::Integer(5)));
        assert_eq!(Atomic::Integer(2).mul(&Atomic::Double(1.5)), Some(Atomic::Double(3.0)));
        // Untyped (string) operands promote to double, per XQuery arithmetic.
        assert_eq!(Atomic::Integer(7).sub(&Atomic::Str("2".into())), Some(Atomic::Double(5.0)));
    }

    #[test]
    fn integer_overflow_widens_to_double() {
        let big = Atomic::Integer(i64::MAX);
        match big.add(&Atomic::Integer(1)) {
            Some(Atomic::Double(d)) => assert!(d >= i64::MAX as f64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn division_semantics() {
        assert_eq!(Atomic::Integer(7).div(&Atomic::Integer(2)), Some(Atomic::Double(3.5)));
        assert_eq!(Atomic::Integer(1).div(&Atomic::Integer(0)), None);
        assert_eq!(Atomic::Integer(7).int_mod(&Atomic::Integer(3)), Some(Atomic::Integer(1)));
        assert_eq!(Atomic::Integer(7).int_mod(&Atomic::Integer(0)), None);
    }

    #[test]
    fn string_rendering() {
        assert_eq!(Atomic::Double(3.0).as_string(), "3");
        assert_eq!(Atomic::Double(3.25).as_string(), "3.25");
        assert_eq!(Atomic::Boolean(true).as_string(), "true");
        assert_eq!(Atomic::Integer(-4).to_string(), "-4");
    }

    #[test]
    fn order_key_is_total() {
        let mut vals = [
            Atomic::Str("b".into()),
            Atomic::Integer(2),
            Atomic::Boolean(true),
            Atomic::Str("a".into()),
            Atomic::Double(1.5),
            Atomic::Boolean(false),
        ];
        vals.sort_by(|a, b| a.order_key_cmp(b));
        // booleans, then numbers, then non-numeric strings
        assert_eq!(vals[0], Atomic::Boolean(false));
        assert_eq!(vals[1], Atomic::Boolean(true));
        assert_eq!(vals[2], Atomic::Double(1.5));
        assert_eq!(vals[3], Atomic::Integer(2));
        assert_eq!(vals[4], Atomic::Str("a".into()));
    }

    #[test]
    fn as_integer_views() {
        assert_eq!(Atomic::Double(4.0).as_integer(), Some(4));
        assert_eq!(Atomic::Double(4.5).as_integer(), None);
        assert_eq!(Atomic::Str(" 12 ".into()).as_integer(), Some(12));
        assert_eq!(Atomic::Boolean(true).as_integer(), None);
    }
}
