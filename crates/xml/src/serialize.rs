//! Document serialization.
//!
//! Two modes: compact ([`serialize`]) writes with no added whitespace and
//! round-trips through the parser; pretty ([`serialize_pretty`]) indents
//! element-only content for human output (examples, EXPLAIN).

use crate::tree::{Document, NodeId, NodeKind};

/// Escape character data for text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for inclusion in double quotes.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialize the whole document compactly.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for child in doc.children(doc.root()) {
        write_node(doc, child, &mut out);
    }
    out
}

/// Serialize the subtree rooted at `id` compactly.
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for child in doc.children(id) {
                write_node(doc, child, out);
            }
        }
        NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(&name.as_lexical());
            for &aid in attributes {
                if let NodeKind::Attribute { name, value } = &doc.node(aid).kind {
                    out.push(' ');
                    out.push_str(&name.as_lexical());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(value));
                    out.push('"');
                }
            }
            if doc.node(id).first_child.is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                for child in doc.children(id) {
                    write_node(doc, child, out);
                }
                out.push_str("</");
                out.push_str(&name.as_lexical());
                out.push('>');
            }
        }
        NodeKind::Attribute { name, value } => {
            // A bare attribute serializes as name="value" (useful when query
            // results contain attribute items).
            out.push_str(&name.as_lexical());
            out.push_str("=\"");
            out.push_str(&escape_attr(value));
            out.push('"');
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeKind::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// Serialize with indentation. Text nodes suppress indentation of their
/// siblings so mixed content keeps its exact character data.
pub fn serialize_pretty(doc: &Document, indent: usize) -> String {
    let mut out = String::new();
    for child in doc.children(doc.root()) {
        write_pretty(doc, child, 0, indent, &mut out);
        out.push('\n');
    }
    out
}

fn has_text_child(doc: &Document, id: NodeId) -> bool {
    doc.children(id).any(|c| doc.is_text(c))
}

fn write_pretty(doc: &Document, id: NodeId, level: usize, indent: usize, out: &mut String) {
    let pad = " ".repeat(level * indent);
    match &doc.node(id).kind {
        NodeKind::Element { .. }
            if !has_text_child(doc, id) && doc.node(id).first_child.is_some() =>
        {
            // Element-only content: open tag, children each on own line.
            let name = doc.name(id).expect("element has name").as_lexical();
            out.push_str(&pad);
            out.push('<');
            out.push_str(&name);
            write_attrs(doc, id, out);
            out.push('>');
            for child in doc.children(id) {
                out.push('\n');
                write_pretty(doc, child, level + 1, indent, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
        _ => {
            // Leaf or mixed content: compact form on one line.
            out.push_str(&pad);
            write_node(doc, id, out);
        }
    }
}

fn write_attrs(doc: &Document, id: NodeId, out: &mut String) {
    for &aid in doc.attributes(id) {
        if let NodeKind::Attribute { name, value } = &doc.node(aid).kind {
            out.push(' ');
            out.push_str(&name.as_lexical());
            out.push_str("=\"");
            out.push_str(&escape_attr(value));
            out.push('"');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn roundtrip(s: &str) -> String {
        serialize(&parse_document(s).unwrap())
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>hi</b></a>"), "<a><b>hi</b></a>");
    }

    #[test]
    fn empty_element_collapses() {
        assert_eq!(roundtrip("<a></a>"), "<a/>");
        assert_eq!(roundtrip("<a/>"), "<a/>");
    }

    #[test]
    fn attributes_normalize_to_double_quotes() {
        assert_eq!(roundtrip("<a x='1'/>"), "<a x=\"1\"/>");
    }

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(roundtrip("<a>&lt;&amp;&gt;</a>"), "<a>&lt;&amp;&gt;</a>");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr(r#"say "hi" & <go>"#), "say &quot;hi&quot; &amp; &lt;go>");
        let d = parse_document("<a x='&quot;&amp;'/>").unwrap();
        assert_eq!(serialize(&d), "<a x=\"&quot;&amp;\"/>");
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        assert_eq!(roundtrip("<a><!--note--><?go fast?></a>"), "<a><!--note--><?go fast?></a>");
    }

    #[test]
    fn serialize_subtree() {
        let d = parse_document("<a><b>x</b><c/></a>").unwrap();
        let a = d.root_element().unwrap();
        let b = d.children(a).next().unwrap();
        assert_eq!(serialize_node(&d, b), "<b>x</b>");
    }

    #[test]
    fn serialize_preserves_whitespace_text() {
        assert_eq!(roundtrip("<a> x </a>"), "<a> x </a>");
    }

    #[test]
    fn double_roundtrip_is_fixpoint() {
        let once = roundtrip("<a  x='1'><b/>t<!--c--></a>");
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn pretty_indents_element_content() {
        let d = parse_document("<a><b><c/></b><d>text</d></a>").unwrap();
        let p = serialize_pretty(&d, 2);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines[0], "<a>");
        assert_eq!(lines[1], "  <b>");
        assert_eq!(lines[2], "    <c/>");
        assert_eq!(lines[3], "  </b>");
        assert_eq!(lines[4], "  <d>text</d>");
        assert_eq!(lines[5], "</a>");
    }

    #[test]
    fn pretty_keeps_mixed_content_compact() {
        let d = parse_document("<a>x<b/>y</a>").unwrap();
        let p = serialize_pretty(&d, 2);
        assert_eq!(p.trim_end(), "<a>x<b/>y</a>");
    }
}
