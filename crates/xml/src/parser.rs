//! A hand-written, pull-based XML parser.
//!
//! [`Parser`] is an iterator over [`Event`]s; [`parse_document`] drives it to
//! completion and builds an arena [`Document`](crate::tree::Document).
//!
//! Supported: prolog, `DOCTYPE` (skipped, including an internal subset),
//! elements, attributes (single or double quoted), character data, CDATA
//! sections, comments, processing instructions, the five predefined entities
//! and decimal/hex character references. Well-formedness is enforced: tags
//! must nest, attribute names must be unique per element, exactly one root
//! element must exist.
//!
//! Not supported (rejected or ignored by design — see DESIGN.md): external
//! entities, custom entity definitions, namespace URI resolution.

use crate::error::{Error, Result};
use crate::event::{Attribute, Event};
use crate::name::{is_name_char, is_name_start, QName};
use crate::tree::{Document, TreeBuilder};

/// Pull parser over an in-memory XML string.
///
/// ```
/// use xqp_xml::{Parser, Event};
/// let mut p = Parser::new("<a x='1'>hi</a>");
/// let ev = p.next_event().unwrap().unwrap();
/// assert!(matches!(ev, Event::StartElement { .. }));
/// ```
pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Open-element stack for well-formedness checking.
    stack: Vec<QName>,
    /// Whether the single root element has been seen and closed.
    root_done: bool,
    /// Whether any root element has been opened yet.
    root_seen: bool,
    finished: bool,
}

impl<'a> Parser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            root_done: false,
            root_seen: false,
            finished: false,
        }
    }

    /// Current byte offset (for error reporting and testing).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Read a raw XML name (possibly containing one colon).
    fn read_name(&mut self) -> Result<QName> {
        let start = self.pos;
        let mut chars = self.input[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => return Err(self.err("expected name")),
        }
        let mut end = self.input.len();
        let mut colons = 0usize;
        for (i, c) in self.input[self.pos..].char_indices() {
            let ok = if i == 0 {
                is_name_start(c)
            } else if c == ':' {
                colons += 1;
                colons <= 1
            } else {
                is_name_char(c)
            };
            if !ok {
                if c == ':' {
                    return Err(self.err("multiple colons in name"));
                }
                end = self.pos + i;
                break;
            }
        }
        let raw = &self.input[start..end];
        self.pos = end;
        if raw.ends_with(':') {
            return Err(self.err("name may not end with `:`"));
        }
        Ok(QName::parse(raw))
    }

    /// Resolve entity and character references in `raw`.
    fn unescape(&self, raw: &str, base: usize) -> Result<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        let mut off = base;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            off += i;
            let tail = &rest[i..];
            let semi =
                tail.find(';').ok_or_else(|| Error::new(off, "unterminated entity reference"))?;
            let ent = &tail[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let cp = u32::from_str_radix(&ent[2..], 16)
                        .map_err(|_| Error::new(off, "bad hex character reference"))?;
                    out.push(
                        char::from_u32(cp).ok_or_else(|| Error::new(off, "invalid code point"))?,
                    );
                }
                _ if ent.starts_with('#') => {
                    let cp: u32 = ent[1..]
                        .parse()
                        .map_err(|_| Error::new(off, "bad decimal character reference"))?;
                    out.push(
                        char::from_u32(cp).ok_or_else(|| Error::new(off, "invalid code point"))?,
                    );
                }
                _ => {
                    return Err(Error::new(off, format!("unknown entity `&{ent};`")));
                }
            }
            rest = &tail[semi + 1..];
            off += semi + 1;
        }
        out.push_str(rest);
        Ok(out)
    }

    /// Skip `<?xml ...?>`, whitespace, comments and a DOCTYPE before/after
    /// the root element. Returns the next content event, if any.
    fn parse_misc(&mut self) -> Result<Option<Event>> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.starts_with("<?xml") {
                let end = self.input[self.pos..]
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated XML declaration"))?;
                self.bump(end + 2);
                continue;
            }
            if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
                continue;
            }
            if self.starts_with("<!--") {
                return self.parse_comment().map(Some);
            }
            if self.starts_with("<?") {
                return self.parse_pi().map(Some);
            }
            if self.peek() == Some(b'<') {
                return Ok(None); // root element start; handled by caller
            }
            return Err(self.err("content not allowed outside root element"));
        }
    }

    fn skip_doctype(&mut self) -> Result<()> {
        // Skip to the matching `>`, allowing one `[ ... ]` internal subset.
        self.expect("<!DOCTYPE")?;
        let mut in_subset = false;
        while let Some(b) = self.peek() {
            match b {
                b'[' => {
                    in_subset = true;
                    self.pos += 1;
                }
                b']' => {
                    in_subset = false;
                    self.pos += 1;
                }
                b'>' if !in_subset => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    fn parse_comment(&mut self) -> Result<Event> {
        self.expect("<!--")?;
        let end =
            self.input[self.pos..].find("-->").ok_or_else(|| self.err("unterminated comment"))?;
        let text = &self.input[self.pos..self.pos + end];
        if text.contains("--") {
            return Err(self.err("`--` not allowed inside comment"));
        }
        let ev = Event::Comment(text.to_string());
        self.bump(end + 3);
        Ok(ev)
    }

    fn parse_pi(&mut self) -> Result<Event> {
        self.expect("<?")?;
        let target = self.read_name()?;
        if target.prefix.is_none() && target.local.eq_ignore_ascii_case("xml") {
            return Err(self.err("`<?xml` only allowed at document start"));
        }
        let end = self.input[self.pos..]
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let mut data = &self.input[self.pos..self.pos + end];
        data = data.strip_prefix(' ').unwrap_or(data);
        let ev =
            Event::ProcessingInstruction { target: target.as_lexical(), data: data.to_string() };
        self.bump(end + 2);
        Ok(ev)
    }

    fn parse_start_tag(&mut self) -> Result<Event> {
        self.expect("<")?;
        let name = self.read_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            let before = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.stack.push(name.clone());
                    self.root_seen = true;
                    return Ok(Event::StartElement { name, attributes, self_closing: false });
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    self.root_seen = true;
                    if self.stack.is_empty() {
                        self.root_done = true;
                    }
                    return Ok(Event::StartElement { name, attributes, self_closing: true });
                }
                Some(_) => {
                    if before == self.pos {
                        return Err(self.err("expected whitespace before attribute"));
                    }
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    let close = self.input[self.pos..]
                        .find(quote as char)
                        .ok_or_else(|| self.err("unterminated attribute value"))?;
                    let raw = &self.input[vstart..vstart + close];
                    if raw.contains('<') {
                        return Err(self.err("`<` not allowed in attribute value"));
                    }
                    let value = self.unescape(raw, vstart)?;
                    self.pos = vstart + close + 1;
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(self.err(format!("duplicate attribute `{attr_name}`")));
                    }
                    attributes.push(Attribute { name: attr_name, value });
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event> {
        self.expect("</")?;
        let name = self.read_name()?;
        self.skip_ws();
        self.expect(">")?;
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.root_done = true;
                }
                Ok(Event::EndElement { name })
            }
            Some(open) => {
                Err(self.err(format!("mismatched tag: expected `</{open}>`, found `</{name}>`")))
            }
            None => Err(self.err(format!("unexpected closing tag `</{name}>`"))),
        }
    }

    /// Parse character data (plus any embedded CDATA sections) until the next
    /// markup. Returns `None` if the run is empty.
    fn parse_text(&mut self) -> Result<Option<Event>> {
        let mut out = String::new();
        loop {
            if self.starts_with("<![CDATA[") {
                self.bump(9);
                let end = self.input[self.pos..]
                    .find("]]>")
                    .ok_or_else(|| self.err("unterminated CDATA section"))?;
                out.push_str(&self.input[self.pos..self.pos + end]);
                self.bump(end + 3);
                continue;
            }
            match self.peek() {
                None | Some(b'<') => break,
                _ => {
                    let rest = &self.input[self.pos..];
                    let next = rest.find('<').unwrap_or(rest.len());
                    let raw = &rest[..next];
                    if raw.contains("]]>") {
                        return Err(self.err("`]]>` not allowed in character data"));
                    }
                    let text = self.unescape(raw, self.pos)?;
                    out.push_str(&text);
                    self.bump(next);
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Event::Text(out)))
        }
    }

    /// Produce the next event, or `None` at a well-formed end of input.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        if self.finished {
            return Ok(None);
        }
        if self.stack.is_empty() {
            // Before the root or after it: misc only.
            if let Some(ev) = self.parse_misc()? {
                return Ok(Some(ev));
            }
            if self.pos >= self.input.len() {
                if !self.root_seen {
                    return Err(self.err("no root element"));
                }
                self.finished = true;
                return Ok(None);
            }
            if self.root_done {
                return Err(self.err("content after root element"));
            }
            return self.parse_start_tag().map(Some);
        }
        // Inside the root.
        if self.starts_with("<!--") {
            return self.parse_comment().map(Some);
        }
        if self.starts_with("<![CDATA[") || self.peek() != Some(b'<') {
            if self.pos >= self.input.len() {
                return Err(self.err("unexpected end of input inside element"));
            }
            if let Some(ev) = self.parse_text()? {
                return Ok(Some(ev));
            }
            // Empty text run: fall through to markup.
            return self.next_event();
        }
        if self.starts_with("</") {
            return self.parse_end_tag().map(Some);
        }
        if self.starts_with("<?") {
            return self.parse_pi().map(Some);
        }
        self.parse_start_tag().map(Some)
    }
}

impl<'a> Iterator for Parser<'a> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Parse a complete document into an arena [`Document`].
pub fn parse_document(input: &str) -> Result<Document> {
    let mut builder = TreeBuilder::new();
    let mut parser = Parser::new(input);
    while let Some(ev) = parser.next_event()? {
        builder.push_event(&ev).map_err(|msg| Error::new(parser.offset(), msg))?;
    }
    builder.finish().map_err(|msg| Error::new(parser.offset(), msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event as E;

    fn events(s: &str) -> Vec<E> {
        Parser::new(s).collect::<Result<Vec<_>>>().unwrap()
    }

    fn parse_err(s: &str) -> Error {
        match Parser::new(s).collect::<Result<Vec<_>>>() {
            Err(e) => e,
            Ok(evs) => panic!("expected error, got {evs:?}"),
        }
    }

    #[test]
    fn minimal_document() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 1);
        assert!(matches!(&evs[0], E::StartElement { self_closing: true, .. }));
    }

    #[test]
    fn nested_elements_and_text() {
        let evs = events("<a><b>hi</b></a>");
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[2], E::Text("hi".into()));
        assert!(evs[4].is_end());
    }

    #[test]
    fn attributes_both_quote_styles() {
        let evs = events(r#"<a x="1" y='two'/>"#);
        match &evs[0] {
            E::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_in_text_and_attributes() {
        let evs = events("<a x='&lt;&amp;&gt;'>&quot;&apos;&#65;&#x42;</a>");
        match &evs[0] {
            E::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "<&>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], E::Text("\"'AB".into()));
    }

    #[test]
    fn cdata_merges_with_text() {
        let evs = events("<a>x<![CDATA[<raw&>]]>y</a>");
        assert_eq!(evs[1], E::Text("x<raw&>y".into()));
    }

    #[test]
    fn comments_and_pis() {
        let evs =
            events("<?xml version=\"1.0\"?><!-- top --><a><?go now?><!--in--></a><!--after-->");
        assert_eq!(evs[0], E::Comment(" top ".into()));
        assert_eq!(evs[2], E::ProcessingInstruction { target: "go".into(), data: "now".into() });
        assert_eq!(evs[3], E::Comment("in".into()));
        assert_eq!(evs[5], E::Comment("after".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = events("<!DOCTYPE bib [ <!ELEMENT bib (book*)> ]><bib/>");
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn prefixed_names() {
        let evs = events("<p:a p:x='1'></p:a>");
        match &evs[0] {
            E::StartElement { name, attributes, .. } => {
                assert_eq!(name, &QName::prefixed("p", "a"));
                assert_eq!(attributes[0].name, QName::prefixed("p", "x"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse_err("<a><b></a></b>");
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn rejects_unclosed_root() {
        let e = parse_err("<a><b></b>");
        assert!(e.message.contains("unexpected end of input"));
    }

    #[test]
    fn rejects_content_after_root() {
        let e = parse_err("<a/><b/>");
        assert!(e.message.contains("after root"));
    }

    #[test]
    fn rejects_empty_input() {
        let e = parse_err("   ");
        assert!(e.message.contains("no root"));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let e = parse_err("<a x='1' x='2'/>");
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_unknown_entity() {
        let e = parse_err("<a>&nope;</a>");
        assert!(e.message.contains("unknown entity"));
    }

    #[test]
    fn rejects_bare_ampersand() {
        let e = parse_err("<a>fish & chips</a>");
        assert!(e.message.contains("entity"));
    }

    #[test]
    fn rejects_lt_in_attribute() {
        let e = parse_err("<a x='<'/>");
        assert!(e.message.contains("not allowed"));
    }

    #[test]
    fn rejects_cdata_end_in_text() {
        let e = parse_err("<a>]]></a>");
        assert!(e.message.contains("]]>"));
    }

    #[test]
    fn whitespace_only_text_is_preserved() {
        let evs = events("<a> <b/> </a>");
        assert_eq!(evs[1], E::Text(" ".into()));
        assert_eq!(evs[3], E::Text(" ".into()));
    }

    #[test]
    fn depth_tracking() {
        let mut p = Parser::new("<a><b/></a>");
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap(); // <b/> self-closing: depth unchanged
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap();
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn parse_document_smoke() {
        let doc =
            parse_document("<bib><book year='1994'><title>TCP/IP</title></book></bib>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).unwrap().local, "bib");
    }

    #[test]
    fn crlf_whitespace_in_tags() {
        let evs = events("<a\n  x='1'\r\n  y='2'\t/>");
        match &evs[0] {
            E::StartElement { attributes, .. } => assert_eq!(attributes.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut s = String::new();
        for _ in 0..2000 {
            s.push_str("<d>");
        }
        for _ in 0..2000 {
            s.push_str("</d>");
        }
        let evs = events(&s);
        assert_eq!(evs.len(), 4000);
    }
}
