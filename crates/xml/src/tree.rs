//! Arena DOM.
//!
//! All nodes of a [`Document`] live in one `Vec<Node>` and are addressed by
//! dense [`NodeId`]s. Nodes are appended during a pre-order construction
//! traversal, so **`NodeId` order is document order** — the invariant the
//! structural operators in `xqp-exec` and the succinct encoding in
//! `xqp-storage` both build on. Attribute nodes are allocated immediately
//! after their owner element, matching the XPath rule that attributes follow
//! their element and precede its children in document order.

use crate::event::Event;
use crate::name::QName;
use std::fmt;

/// Index of a node within its [`Document`] arena.
///
/// Ids are dense, start at 0 (the document node) and increase in document
/// order. Comparing two ids from the *same* document compares document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document node: the invisible root above the root element.
    Document,
    /// An element; attributes are separate [`NodeKind::Attribute`] nodes
    /// listed in `attributes`.
    Element {
        /// Tag name.
        name: QName,
        /// Attribute node ids in source order.
        attributes: Vec<NodeId>,
    },
    /// An attribute node (never appears in child lists).
    Attribute {
        /// Attribute name.
        name: QName,
        /// Unescaped value.
        value: String,
    },
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
    /// A processing-instruction node.
    Pi {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

/// One node in the arena: its kind plus structural links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Node payload.
    pub kind: NodeKind,
    /// Parent node (None only for the document node).
    pub parent: Option<NodeId>,
    /// First child, if any.
    pub first_child: Option<NodeId>,
    /// Last child, if any.
    pub last_child: Option<NodeId>,
    /// Next sibling in the parent's child list.
    pub next_sibling: Option<NodeId>,
    /// Previous sibling in the parent's child list.
    pub prev_sibling: Option<NodeId>,
}

impl Node {
    fn new(kind: NodeKind, parent: Option<NodeId>) -> Self {
        Node {
            kind,
            parent,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        }
    }
}

/// An XML document stored as a node arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// An empty document containing only the document node.
    pub fn new() -> Self {
        Document { nodes: vec![Node::new(NodeKind::Document, None)] }
    }

    /// The document node id (always `NodeId(0)`).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The root *element*, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.root())
            .find(|&id| matches!(self.node(id).kind, NodeKind::Element { .. }))
    }

    /// Total number of nodes, including the document node and attributes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document holds only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds (ids are only ever minted by this
    /// document, so an out-of-bounds id is a logic error).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The element/attribute name of `id`, if it has one.
    pub fn name(&self, id: NodeId) -> Option<&QName> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => Some(name),
            _ => None,
        }
    }

    /// True if `id` is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element { .. })
    }

    /// True if `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// True if `id` is an attribute node.
    pub fn is_attribute(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Attribute { .. })
    }

    /// Iterate over the children of `id` (attributes excluded).
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.node(id).first_child }
    }

    /// Iterate over the element children of `id`.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(move |&c| self.is_element(c))
    }

    /// The attribute node ids of an element (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Look up an attribute value by name test on element `id`.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id).iter().find_map(|&aid| match &self.node(aid).kind {
            NodeKind::Attribute { name: n, value } if n.matches_test(name) => Some(value.as_str()),
            _ => None,
        })
    }

    /// Pre-order traversal of the subtree rooted at `id`, including `id`
    /// itself; attributes are *not* visited (use [`Document::attributes`]).
    pub fn descendants_or_self(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, root: id, next: Some(id) }
    }

    /// Pre-order traversal excluding `id` itself.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(id).skip(1)
    }

    /// Ancestors of `id`, nearest first, ending at the document node.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, next: self.node(id).parent }
    }

    /// Depth of `id`: the document node has depth 0, the root element 1.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// True if `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.ancestors(desc).any(|a| a == anc)
    }

    /// The *string value* of a node: for elements/documents the concatenation
    /// of all descendant text, for text/attribute/comment nodes their own
    /// content, for PIs their data.
    pub fn string_value(&self, id: NodeId) -> String {
        match &self.node(id).kind {
            NodeKind::Text(t) => t.clone(),
            NodeKind::Comment(t) => t.clone(),
            NodeKind::Attribute { value, .. } => value.clone(),
            NodeKind::Pi { data, .. } => data.clone(),
            NodeKind::Element { .. } | NodeKind::Document => {
                let mut out = String::new();
                for d in self.descendants_or_self(id) {
                    if let NodeKind::Text(t) = &self.node(d).kind {
                        out.push_str(t);
                    }
                }
                out
            }
        }
    }

    /// Number of element nodes in the document.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Element { .. })).count()
    }

    // ---- construction -----------------------------------------------------

    /// Append a child node of the given kind under `parent`, returning its id.
    ///
    /// Construction must proceed in document order (always appending under
    /// the most recently relevant parent) to preserve the id-order invariant;
    /// [`TreeBuilder`] guarantees this for parsed input.
    pub fn append_child(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(kind, Some(parent)));
        let prev_last = self.node(parent).last_child;
        match prev_last {
            Some(last) => {
                self.node_mut(last).next_sibling = Some(id);
                self.node_mut(id).prev_sibling = Some(last);
            }
            None => self.node_mut(parent).first_child = Some(id),
        }
        self.node_mut(parent).last_child = Some(id);
        id
    }

    /// Append an element child with no attributes; convenience for builders
    /// and tests.
    pub fn append_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.append_child(
            parent,
            NodeKind::Element { name: QName::parse(&name.into()), attributes: vec![] },
        )
    }

    /// Append a text child; convenience for builders and tests.
    pub fn append_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.append_child(parent, NodeKind::Text(text.into()))
    }

    /// Attach an attribute to element `element`.
    ///
    /// # Panics
    /// Panics if `element` is not an element node.
    pub fn set_attribute(
        &mut self,
        element: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(
            NodeKind::Attribute { name: QName::parse(&name.into()), value: value.into() },
            Some(element),
        ));
        match &mut self.node_mut(element).kind {
            NodeKind::Element { attributes, .. } => attributes.push(id),
            other => panic!("set_attribute on non-element node {other:?}"),
        }
        id
    }
}

/// Iterator over a node's children.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        // Advance: first child, else next sibling, else climb until a next
        // sibling exists — stopping at the subtree root.
        let node = self.doc.node(id);
        self.next = if let Some(c) = node.first_child {
            Some(c)
        } else {
            let mut cur = id;
            loop {
                if cur == self.root {
                    break None;
                }
                if let Some(s) = self.doc.node(cur).next_sibling {
                    break Some(s);
                }
                match self.doc.node(cur).parent {
                    Some(p) => cur = p,
                    None => break None,
                }
            }
        };
        Some(id)
    }
}

/// Iterator over ancestors, nearest first.
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

/// Builds a [`Document`] from a stream of [`Event`]s.
///
/// Adjacent text events are merged, matching the XQuery data model rule that
/// no two text siblings are adjacent.
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// A builder with an empty document.
    pub fn new() -> Self {
        let doc = Document::new();
        let root = doc.root();
        TreeBuilder { doc, stack: vec![root] }
    }

    fn top(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Feed one event. Returns a message on structural misuse (the event
    /// parser normally prevents these; direct users of the builder get the
    /// same protection).
    pub fn push_event(&mut self, ev: &Event) -> std::result::Result<(), String> {
        match ev {
            Event::StartElement { name, attributes, self_closing } => {
                let parent = self.top();
                let id = self.doc.append_child(
                    parent,
                    NodeKind::Element { name: name.clone(), attributes: vec![] },
                );
                for attr in attributes {
                    self.doc.set_attribute(id, attr.name.as_lexical(), attr.value.clone());
                }
                if !self_closing {
                    self.stack.push(id);
                }
                Ok(())
            }
            Event::EndElement { name } => {
                if self.stack.len() <= 1 {
                    return Err(format!("unmatched end element `{name}`"));
                }
                let top = self.stack.pop().expect("checked non-empty");
                match self.doc.name(top) {
                    Some(open) if open == name => Ok(()),
                    Some(open) => Err(format!("end `{name}` does not match open `{open}`")),
                    None => Err("end element closes a non-element".to_string()),
                }
            }
            Event::Text(t) => {
                let parent = self.top();
                if let Some(last) = self.doc.node(parent).last_child {
                    if let NodeKind::Text(prev) = &mut self.doc.node_mut(last).kind {
                        prev.push_str(t);
                        return Ok(());
                    }
                }
                self.doc.append_child(parent, NodeKind::Text(t.clone()));
                Ok(())
            }
            Event::Comment(t) => {
                let parent = self.top();
                self.doc.append_child(parent, NodeKind::Comment(t.clone()));
                Ok(())
            }
            Event::ProcessingInstruction { target, data } => {
                let parent = self.top();
                self.doc.append_child(
                    parent,
                    NodeKind::Pi { target: target.clone(), data: data.clone() },
                );
                Ok(())
            }
        }
    }

    /// Finish building; fails if elements are still open or no root element
    /// was produced.
    pub fn finish(self) -> std::result::Result<Document, String> {
        if self.stack.len() != 1 {
            return Err(format!("{} unclosed element(s)", self.stack.len() - 1));
        }
        if self.doc.root_element().is_none() {
            return Err("document has no root element".to_string());
        }
        Ok(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn doc(s: &str) -> Document {
        parse_document(s).unwrap()
    }

    #[test]
    fn ids_are_document_order() {
        let d = doc("<a><b><c/></b><d/>tail</a>");
        let order: Vec<NodeId> = d.descendants_or_self(d.root()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn attributes_follow_owner_in_id_order() {
        let d = doc("<a x='1'><b/></a>");
        let a = d.root_element().unwrap();
        let attr = d.attributes(a)[0];
        let b = d.children(a).next().unwrap();
        assert!(a < attr && attr < b);
    }

    #[test]
    fn children_iteration() {
        let d = doc("<a><b/>text<c/><!--x--></a>");
        let a = d.root_element().unwrap();
        let kids: Vec<_> = d.children(a).collect();
        assert_eq!(kids.len(), 4);
        assert!(d.is_element(kids[0]));
        assert!(d.is_text(kids[1]));
        assert!(d.is_element(kids[2]));
        assert!(matches!(d.node(kids[3]).kind, NodeKind::Comment(_)));
    }

    #[test]
    fn child_elements_filters() {
        let d = doc("<a><b/>text<c/></a>");
        let a = d.root_element().unwrap();
        let names: Vec<_> = d.child_elements(a).map(|c| d.name(c).unwrap().local.clone()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn descendants_pre_order() {
        let d = doc("<a><b><c/></b><d/></a>");
        let a = d.root_element().unwrap();
        let names: Vec<_> = d
            .descendants_or_self(a)
            .filter(|&n| d.is_element(n))
            .map(|n| d.name(n).unwrap().local.clone())
            .collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn descendants_stop_at_subtree() {
        let d = doc("<a><b><c/></b><d/></a>");
        let a = d.root_element().unwrap();
        let b = d.children(a).next().unwrap();
        let names: Vec<_> =
            d.descendants_or_self(b).map(|n| d.name(n).unwrap().local.clone()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn ancestors_and_depth() {
        let d = doc("<a><b><c/></b></a>");
        let a = d.root_element().unwrap();
        let b = d.children(a).next().unwrap();
        let c = d.children(b).next().unwrap();
        assert_eq!(d.depth(c), 3);
        let anc: Vec<_> = d.ancestors(c).collect();
        assert_eq!(anc, [b, a, d.root()]);
        assert!(d.is_ancestor(a, c));
        assert!(!d.is_ancestor(c, a));
        assert!(!d.is_ancestor(c, c));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let d = doc("<a>x<b>y<c>z</c></b>w</a>");
        let a = d.root_element().unwrap();
        assert_eq!(d.string_value(a), "xyzw");
    }

    #[test]
    fn string_value_of_leaves() {
        let d = doc("<a x='v'>t<!--c--><?p d?></a>");
        let a = d.root_element().unwrap();
        let attr = d.attributes(a)[0];
        assert_eq!(d.string_value(attr), "v");
        let kids: Vec<_> = d.children(a).collect();
        assert_eq!(d.string_value(kids[0]), "t");
        assert_eq!(d.string_value(kids[1]), "c");
        assert_eq!(d.string_value(kids[2]), "d");
    }

    #[test]
    fn attribute_lookup() {
        let d = doc("<a x='1' y='2'/>");
        let a = d.root_element().unwrap();
        assert_eq!(d.attribute(a, "x"), Some("1"));
        assert_eq!(d.attribute(a, "y"), Some("2"));
        assert_eq!(d.attribute(a, "z"), None);
        assert_eq!(d.attribute(a, "*"), Some("1"));
    }

    #[test]
    fn adjacent_text_events_merge() {
        let mut b = TreeBuilder::new();
        b.push_event(&Event::StartElement {
            name: QName::local("a"),
            attributes: vec![],
            self_closing: false,
        })
        .unwrap();
        b.push_event(&Event::Text("x".into())).unwrap();
        b.push_event(&Event::Text("y".into())).unwrap();
        b.push_event(&Event::EndElement { name: QName::local("a") }).unwrap();
        let d = b.finish().unwrap();
        let a = d.root_element().unwrap();
        let kids: Vec<_> = d.children(a).collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(d.string_value(kids[0]), "xy");
    }

    #[test]
    fn builder_rejects_unmatched_end() {
        let mut b = TreeBuilder::new();
        let r = b.push_event(&Event::EndElement { name: QName::local("a") });
        assert!(r.is_err());
    }

    #[test]
    fn builder_rejects_unclosed() {
        let mut b = TreeBuilder::new();
        b.push_event(&Event::StartElement {
            name: QName::local("a"),
            attributes: vec![],
            self_closing: false,
        })
        .unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn manual_construction() {
        let mut d = Document::new();
        let root = d.root();
        let a = d.append_element(root, "a");
        d.set_attribute(a, "k", "v");
        let b = d.append_element(a, "b");
        d.append_text(b, "hello");
        assert_eq!(d.element_count(), 2);
        assert_eq!(d.string_value(a), "hello");
        assert_eq!(d.attribute(a, "k"), Some("v"));
    }

    #[test]
    fn element_count() {
        let d = doc("<a><b/><c><d/></c></a>");
        assert_eq!(d.element_count(), 4);
    }

    #[test]
    fn empty_document_has_len_one() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 1);
        assert!(d.root_element().is_none());
    }
}
