//! # xqp-xml — XML data model, parser and serializer
//!
//! This crate is the data-model substrate for the `xqp` XML query processor.
//! It implements, from scratch:
//!
//! * an **arena DOM** ([`Document`], [`NodeId`]) in which nodes live in a
//!   `Vec` and are addressed by dense `u32` ids whose order *is* document
//!   (pre-) order — the property every structural operator in the engine
//!   relies on;
//! * a **streaming event parser** ([`Parser`], [`Event`]) for a practical XML
//!   subset (elements, attributes, text, CDATA, comments, processing
//!   instructions, the five predefined entities and numeric character
//!   references);
//! * a **serializer** ([`serialize`]) that round-trips documents;
//! * the **atomic value** universe of the XQuery data model ([`Atomic`]) with
//!   the comparison/promotion semantics the algebra's value operators need.
//!
//! The W3C data model says every XQuery value is a flat sequence of items;
//! the paper (§3.2) extends this with nested lists and labeled trees. Those
//! higher sorts live in `xqp-algebra`; this crate provides the trees and the
//! atoms they are built from.

pub mod error;
pub mod event;
pub mod name;
pub mod parser;
pub mod serialize;
pub mod tree;
pub mod value;

pub use error::{Error, Result};
pub use event::Event;
pub use name::QName;
pub use parser::{parse_document, Parser};
pub use serialize::{serialize, serialize_node, serialize_pretty};
pub use tree::{Document, Node, NodeId, NodeKind, TreeBuilder};
pub use value::Atomic;
