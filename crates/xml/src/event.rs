//! Streaming parse events.
//!
//! The parser yields a flat stream of [`Event`]s in document order. The
//! paper's storage scheme (§4.2) exploits the fact that pre-order tree
//! linearization coincides with this arrival order, so the same NoK
//! evaluation algorithm runs over a stored succinct tree or a live stream.

use crate::name::QName;

/// One attribute on a start tag: name plus already-unescaped value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: QName,
    /// Attribute value with entity references resolved.
    pub value: String,
}

/// A streaming XML event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>`; `self_closing` is true for `<name/>`, in which
    /// case no matching [`Event::EndElement`] follows.
    StartElement {
        /// Element name.
        name: QName,
        /// Attributes in source order.
        attributes: Vec<Attribute>,
        /// Whether the tag was written as `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Element name (checked against the matching start tag).
        name: QName,
    },
    /// Character data between tags, with entities resolved. Adjacent text and
    /// CDATA runs are merged into one event.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target (first name after `<?`).
        target: String,
        /// Everything between the target and `?>`, trimmed of one leading space.
        data: String,
    },
}

impl Event {
    /// The element name if this is a start or end element event.
    pub fn element_name(&self) -> Option<&QName> {
        match self {
            Event::StartElement { name, .. } | Event::EndElement { name } => Some(name),
            _ => None,
        }
    }

    /// True if this event opens an element.
    pub fn is_start(&self) -> bool {
        matches!(self, Event::StartElement { .. })
    }

    /// True if this event closes an element (self-closing start tags count as
    /// both open and close and are reported as a single start event).
    pub fn is_end(&self) -> bool {
        matches!(self, Event::EndElement { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_name_accessor() {
        let s = Event::StartElement {
            name: QName::local("a"),
            attributes: vec![],
            self_closing: false,
        };
        assert_eq!(s.element_name(), Some(&QName::local("a")));
        assert!(s.is_start());
        assert!(!s.is_end());

        let e = Event::EndElement { name: QName::local("a") };
        assert_eq!(e.element_name(), Some(&QName::local("a")));
        assert!(e.is_end());

        assert_eq!(Event::Text("x".into()).element_name(), None);
    }
}
