//! Error type shared by the parser and serializer.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A parse or serialization failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl Error {
    /// Create an error at `offset` with the given message.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        Error { offset, message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = Error::new(42, "unexpected `<`");
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("unexpected `<`"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::new(0, "x"));
    }
}
