//! XMark-style auction-site document generator.
//!
//! Reproduces the element skeleton and cardinality feel of the XMark
//! benchmark's `xmlgen` without its proprietary text corpus: regions hold
//! items with mixed-content descriptions and keyword spans, people carry
//! profiles with ages/incomes/interests, auctions reference people and items
//! by id. All draws come from a seeded [`Prng`], so a `(config, seed)`
//! pair always produces byte-identical documents.

use crate::rng::Prng;
use xqp_xml::{Document, NodeId};

/// Word pool for generated prose (fixed, so text statistics are stable).
const WORDS: &[&str] = &[
    "quartz", "marble", "copper", "violet", "amber", "willow", "harbor", "meadow", "ember",
    "granite", "velvet", "cedar", "prairie", "lantern", "mosaic", "drift", "cobalt", "fable",
    "garnet", "hollow", "ivory", "juniper", "keel", "lattice", "moss", "nectar", "onyx", "pewter",
    "quill", "russet",
];

const REGIONS: &[&str] = &["africa", "asia", "australia", "europe", "namerica", "samerica"];

const CITIES: &[&str] =
    &["Aldebaran", "Bellatrix", "Capella", "Deneb", "Electra", "Fomalhaut", "Gemma", "Hadar"];

/// Size knobs for one generated document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmarkConfig {
    /// Items per region (6 regions).
    pub items_per_region: usize,
    /// Registered people.
    pub people: usize,
    /// Open auctions.
    pub open_auctions: usize,
    /// Closed auctions.
    pub closed_auctions: usize,
    /// Categories.
    pub categories: usize,
    /// RNG seed.
    pub seed: u64,
}

impl XmarkConfig {
    /// Roughly XMark's scale mapping: `scale(1.0)` is a medium document
    /// (tens of thousands of nodes); sizes grow linearly.
    pub fn scale(f: f64) -> Self {
        let s = |base: f64| ((base * f).round() as usize).max(1);
        XmarkConfig {
            items_per_region: s(120.0),
            people: s(500.0),
            open_auctions: s(240.0),
            closed_auctions: s(200.0),
            categories: s(20.0),
            seed: 42,
        }
    }

    /// Same sizes, different randomness.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig::scale(0.1)
    }
}

/// Generate an auction document.
pub fn gen_xmark(cfg: &XmarkConfig) -> Document {
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let mut doc = Document::new();
    let site = doc.append_element(doc.root(), "site");

    // regions / <continent> / item*
    let regions = doc.append_element(site, "regions");
    let total_items = cfg.items_per_region * REGIONS.len();
    let mut item_no = 0usize;
    for &region in REGIONS {
        let r = doc.append_element(regions, region);
        for _ in 0..cfg.items_per_region {
            gen_item(&mut doc, &mut rng, r, item_no, cfg.categories);
            item_no += 1;
        }
    }

    // categories / category*
    let categories = doc.append_element(site, "categories");
    for c in 0..cfg.categories {
        let cat = doc.append_element(categories, "category");
        doc.set_attribute(cat, "id", format!("category{c}"));
        let name = doc.append_element(cat, "name");
        let w = words(&mut rng, 2);
        doc.append_text(name, w);
        let descr = doc.append_element(cat, "description");
        gen_text_block(&mut doc, &mut rng, descr);
    }

    // people / person*
    let people = doc.append_element(site, "people");
    for p in 0..cfg.people {
        gen_person(&mut doc, &mut rng, people, p, cfg.categories);
    }

    // open_auctions / open_auction*
    let opens = doc.append_element(site, "open_auctions");
    for a in 0..cfg.open_auctions {
        gen_open_auction(&mut doc, &mut rng, opens, a, cfg.people, total_items);
    }

    // closed_auctions / closed_auction*
    let closeds = doc.append_element(site, "closed_auctions");
    for a in 0..cfg.closed_auctions {
        gen_closed_auction(&mut doc, &mut rng, closeds, a, cfg.people, total_items);
    }

    doc
}

fn words(rng: &mut Prng, n: usize) -> String {
    (0..n).map(|_| WORDS[rng.gen_range(0..WORDS.len())]).collect::<Vec<_>>().join(" ")
}

/// Mixed-content description: text, keyword spans, emphasis — the XMark
/// `parlist` flavour that stresses mixed-content handling.
fn gen_text_block(doc: &mut Document, rng: &mut Prng, parent: NodeId) {
    let text = doc.append_element(parent, "text");
    let sentences = rng.gen_range(1..4);
    for _ in 0..sentences {
        let n = rng.gen_range(3..9);
        doc.append_text(text, words(rng, n));
        if rng.gen_bool(0.6) {
            let kw = doc.append_element(text, "keyword");
            doc.append_text(kw, words(rng, 1));
        }
        if rng.gen_bool(0.25) {
            let em = doc.append_element(text, "emph");
            doc.append_text(em, words(rng, 1));
        }
        let n = rng.gen_range(2..6);
        doc.append_text(text, format!(" {}. ", words(rng, n)));
    }
}

fn gen_item(doc: &mut Document, rng: &mut Prng, region: NodeId, no: usize, categories: usize) {
    let item = doc.append_element(region, "item");
    doc.set_attribute(item, "id", format!("item{no}"));
    let location = doc.append_element(item, "location");
    doc.append_text(location, CITIES[rng.gen_range(0..CITIES.len())]);
    let quantity = doc.append_element(item, "quantity");
    doc.append_text(quantity, rng.gen_range(1..10).to_string());
    let name = doc.append_element(item, "name");
    doc.append_text(name, words(rng, 2));
    let payment = doc.append_element(item, "payment");
    doc.append_text(payment, "Cash");
    let description = doc.append_element(item, "description");
    gen_text_block(doc, rng, description);
    let shipping = doc.append_element(item, "shipping");
    doc.append_text(shipping, "Will ship internationally");
    let n_cats = rng.gen_range(1..4usize);
    for _ in 0..n_cats {
        let inc = doc.append_element(item, "incategory");
        doc.set_attribute(inc, "category", format!("category{}", rng.gen_range(0..categories)));
    }
    if rng.gen_bool(0.5) {
        let mailbox = doc.append_element(item, "mailbox");
        for _ in 0..rng.gen_range(1..3) {
            let mail = doc.append_element(mailbox, "mail");
            let from = doc.append_element(mail, "from");
            doc.append_text(from, words(rng, 2));
            let date = doc.append_element(mail, "date");
            doc.append_text(
                date,
                format!("{:02}/{:02}/2003", rng.gen_range(1..13), rng.gen_range(1..29)),
            );
            gen_text_block(doc, rng, mail);
        }
    }
}

fn gen_person(doc: &mut Document, rng: &mut Prng, people: NodeId, no: usize, categories: usize) {
    let person = doc.append_element(people, "person");
    doc.set_attribute(person, "id", format!("person{no}"));
    let name = doc.append_element(person, "name");
    doc.append_text(name, format!("{} {}", words(rng, 1), words(rng, 1)));
    let email = doc.append_element(person, "emailaddress");
    doc.append_text(email, format!("mailto:user{no}@example.org"));
    if rng.gen_bool(0.7) {
        let phone = doc.append_element(person, "phone");
        doc.append_text(
            phone,
            format!("+1 ({}) {}", rng.gen_range(100..999), rng.gen_range(1000000..9999999)),
        );
    }
    if rng.gen_bool(0.6) {
        let address = doc.append_element(person, "address");
        let street = doc.append_element(address, "street");
        doc.append_text(street, format!("{} {} St", rng.gen_range(1..99), words(rng, 1)));
        let city = doc.append_element(address, "city");
        doc.append_text(city, CITIES[rng.gen_range(0..CITIES.len())]);
        let country = doc.append_element(address, "country");
        doc.append_text(country, "United States");
    }
    if rng.gen_bool(0.8) {
        let profile = doc.append_element(person, "profile");
        doc.set_attribute(profile, "income", format!("{:.2}", rng.gen_range(9876.0..99999.0)));
        for _ in 0..rng.gen_range(0..3usize) {
            let interest = doc.append_element(profile, "interest");
            doc.set_attribute(
                interest,
                "category",
                format!("category{}", rng.gen_range(0..categories)),
            );
        }
        if rng.gen_bool(0.5) {
            let education = doc.append_element(profile, "education");
            doc.append_text(education, "Graduate School");
        }
        let gender = doc.append_element(profile, "gender");
        doc.append_text(gender, if rng.gen_bool(0.5) { "male" } else { "female" });
        let age = doc.append_element(profile, "age");
        doc.append_text(age, rng.gen_range(18..80).to_string());
    }
}

fn gen_open_auction(
    doc: &mut Document,
    rng: &mut Prng,
    opens: NodeId,
    no: usize,
    people: usize,
    items: usize,
) {
    let auction = doc.append_element(opens, "open_auction");
    doc.set_attribute(auction, "id", format!("open_auction{no}"));
    let initial = doc.append_element(auction, "initial");
    doc.append_text(initial, format!("{:.2}", rng.gen_range(1.0..100.0)));
    if rng.gen_bool(0.4) {
        let reserve = doc.append_element(auction, "reserve");
        doc.append_text(reserve, format!("{:.2}", rng.gen_range(50.0..300.0)));
    }
    for _ in 0..rng.gen_range(0..5usize) {
        let bidder = doc.append_element(auction, "bidder");
        let date = doc.append_element(bidder, "date");
        doc.append_text(
            date,
            format!("{:02}/{:02}/2003", rng.gen_range(1..13), rng.gen_range(1..29)),
        );
        let personref = doc.append_element(bidder, "personref");
        doc.set_attribute(personref, "person", format!("person{}", rng.gen_range(0..people)));
        let increase = doc.append_element(bidder, "increase");
        doc.append_text(increase, format!("{:.2}", rng.gen_range(1.5..50.0)));
    }
    let current = doc.append_element(auction, "current");
    doc.append_text(current, format!("{:.2}", rng.gen_range(1.0..500.0)));
    let itemref = doc.append_element(auction, "itemref");
    doc.set_attribute(itemref, "item", format!("item{}", rng.gen_range(0..items)));
    let seller = doc.append_element(auction, "seller");
    doc.set_attribute(seller, "person", format!("person{}", rng.gen_range(0..people)));
    let annotation = doc.append_element(auction, "annotation");
    let adesc = doc.append_element(annotation, "description");
    gen_text_block(doc, rng, adesc);
    let quantity = doc.append_element(auction, "quantity");
    doc.append_text(quantity, rng.gen_range(1..5).to_string());
    let atype = doc.append_element(auction, "type");
    doc.append_text(atype, "Regular");
    let interval = doc.append_element(auction, "interval");
    let start = doc.append_element(interval, "start");
    doc.append_text(start, "01/01/2003");
    let end = doc.append_element(interval, "end");
    doc.append_text(end, "12/31/2003");
}

fn gen_closed_auction(
    doc: &mut Document,
    rng: &mut Prng,
    closeds: NodeId,
    _no: usize,
    people: usize,
    items: usize,
) {
    let auction = doc.append_element(closeds, "closed_auction");
    let seller = doc.append_element(auction, "seller");
    doc.set_attribute(seller, "person", format!("person{}", rng.gen_range(0..people)));
    let buyer = doc.append_element(auction, "buyer");
    doc.set_attribute(buyer, "person", format!("person{}", rng.gen_range(0..people)));
    let itemref = doc.append_element(auction, "itemref");
    doc.set_attribute(itemref, "item", format!("item{}", rng.gen_range(0..items)));
    let price = doc.append_element(auction, "price");
    doc.append_text(price, format!("{:.2}", rng.gen_range(5.0..500.0)));
    let date = doc.append_element(auction, "date");
    doc.append_text(date, format!("{:02}/{:02}/2003", rng.gen_range(1..13), rng.gen_range(1..29)));
    let quantity = doc.append_element(auction, "quantity");
    doc.append_text(quantity, rng.gen_range(1..5).to_string());
    let atype = doc.append_element(auction, "type");
    doc.append_text(atype, "Regular");
    let annotations = doc.append_element(auction, "annotation");
    let adesc = doc.append_element(annotations, "description");
    gen_text_block(doc, rng, adesc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::serialize;

    #[test]
    fn generation_is_deterministic() {
        let cfg = XmarkConfig::scale(0.02);
        let a = serialize(&gen_xmark(&cfg));
        let b = serialize(&gen_xmark(&cfg));
        assert_eq!(a, b);
        let c = serialize(&gen_xmark(&cfg.with_seed(7)));
        assert_ne!(a, c);
    }

    #[test]
    fn skeleton_sections_exist() {
        let doc = gen_xmark(&XmarkConfig::scale(0.02));
        let site = doc.root_element().unwrap();
        assert_eq!(doc.name(site).unwrap().local, "site");
        let sections: Vec<String> =
            doc.child_elements(site).map(|c| doc.name(c).unwrap().local.clone()).collect();
        assert_eq!(
            sections,
            ["regions", "categories", "people", "open_auctions", "closed_auctions"]
        );
    }

    #[test]
    fn counts_match_config() {
        let cfg = XmarkConfig {
            items_per_region: 3,
            people: 5,
            open_auctions: 4,
            closed_auctions: 2,
            categories: 2,
            seed: 1,
        };
        let doc = gen_xmark(&cfg);
        let count = |name: &str| {
            doc.descendants_or_self(doc.root())
                .filter(|&n| doc.name(n).map(|q| q.local.as_str()) == Some(name))
                .count()
        };
        assert_eq!(count("item"), 18);
        assert_eq!(count("person"), 5);
        assert_eq!(count("open_auction"), 4);
        assert_eq!(count("closed_auction"), 2);
        assert_eq!(count("category"), 2);
    }

    #[test]
    fn scale_grows_linearly() {
        let small = gen_xmark(&XmarkConfig::scale(0.02));
        let large = gen_xmark(&XmarkConfig::scale(0.08));
        let ratio = large.element_count() as f64 / small.element_count() as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn output_reparses() {
        let doc = gen_xmark(&XmarkConfig::scale(0.02));
        let xml = serialize(&doc);
        let re = xqp_xml::parse_document(&xml).unwrap();
        assert_eq!(re.element_count(), doc.element_count());
    }
}
