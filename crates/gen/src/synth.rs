//! Structure-extreme synthetic trees and the E4 blow-up family.

use xqp_xml::Document;

/// A single chain `a/a/…/a` of the given depth, each node also carrying a
/// `b` child — the document of the exponential blow-up family.
pub fn blowup_doc(depth: usize) -> Document {
    let mut doc = Document::new();
    let mut cur = doc.append_element(doc.root(), "a");
    let b = doc.append_element(cur, "b");
    let _ = b;
    for _ in 1..depth {
        let next = doc.append_element(cur, "a");
        doc.append_element(next, "b");
        cur = next;
    }
    doc
}

/// The query family of Gottlob, Koch & Pichler [4]: nested existential
/// predicates `//a[b and .//a[b and .//a[… [b] …]]]`.
///
/// Pipelined navigation re-evaluates each `.//a[…]` predicate per context
/// node, giving Θ(dⁿ) work on [`blowup_doc`]`(d)`; a tree-pattern scan
/// evaluates the same query in one pass.
pub fn blowup_query(n: usize) -> String {
    assert!(n >= 1);
    let mut q = String::from("[b]");
    for _ in 1..n {
        q = format!("[b and .//a{q}]");
    }
    format!("//a{q}")
}

/// A chain `t0/t1/…` cycling through `tags`, `depth` nodes deep, with a
/// text payload at the leaf.
pub fn deep_chain(depth: usize, tags: &[&str]) -> Document {
    assert!(!tags.is_empty());
    let mut doc = Document::new();
    let mut cur = doc.append_element(doc.root(), tags[0]);
    for i in 1..depth {
        cur = doc.append_element(cur, tags[i % tags.len()]);
    }
    doc.append_text(cur, "leaf");
    doc
}

/// A flat fan: `root` with `n` children cycling through `tags`, each with a
/// numeric payload `0..n` (usable for selectivity sweeps).
pub fn wide_flat(n: usize, tags: &[&str]) -> Document {
    assert!(!tags.is_empty());
    let mut doc = Document::new();
    let root = doc.append_element(doc.root(), "root");
    for i in 0..n {
        let c = doc.append_element(root, tags[i % tags.len()]);
        doc.append_text(c, i.to_string());
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blowup_doc_shape() {
        let d = blowup_doc(5);
        // 5 a's + 5 b's
        assert_eq!(d.element_count(), 10);
        let mut depth = 0;
        let mut cur = d.root_element();
        while let Some(n) = cur {
            assert_eq!(d.name(n).unwrap().local, "a");
            depth += 1;
            cur = d.child_elements(n).find(|&c| d.name(c).unwrap().local == "a");
        }
        assert_eq!(depth, 5);
    }

    #[test]
    fn blowup_query_nesting() {
        assert_eq!(blowup_query(1), "//a[b]");
        assert_eq!(blowup_query(2), "//a[b and .//a[b]]");
        let q5 = blowup_query(5);
        assert_eq!(q5.matches(".//a").count(), 4);
        // And it parses.
        xqp_xpath::parse_path(&q5).unwrap();
    }

    #[test]
    fn deep_chain_depth() {
        let d = deep_chain(100, &["x", "y"]);
        let leaf_depths: Vec<usize> =
            d.descendants_or_self(d.root()).filter(|&n| d.is_text(n)).map(|n| d.depth(n)).collect();
        assert_eq!(leaf_depths, [101]); // 100 elements + text
    }

    #[test]
    fn wide_flat_fanout() {
        let d = wide_flat(50, &["a", "b"]);
        let root = d.root_element().unwrap();
        assert_eq!(d.child_elements(root).count(), 50);
        assert_eq!(d.child_elements(root).filter(|&c| d.name(c).unwrap().local == "a").count(), 25);
    }
}
