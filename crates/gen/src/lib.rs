//! # xqp-gen — synthetic documents and query workloads
//!
//! The paper's companion experiments run on XMark auction documents and the
//! W3C Use-Case bibliography. Neither generator ships with this repository,
//! so this crate provides faithful stand-ins (see DESIGN.md §2):
//!
//! * [`xmark`] — an auction-site document generator with XMark's element
//!   skeleton (`site / regions / people / open_auctions / closed_auctions /
//!   categories`), realistic fan-outs, attributes, and mixed-content
//!   descriptions; size is controlled by a scale factor and everything is
//!   deterministic under a seed;
//! * [`bib`] — bibliographies in the `bib.xml` schema of the paper's Fig. 1,
//!   plus the literal four-book sample from the XQuery Use Cases;
//! * [`synth`] — structure-extreme trees (deep chains, flat fans) and the
//!   Gottlob-Koch-Pichler **exponential blow-up family** for experiment E4:
//!   documents and queries for which naive pipelined navigation takes time
//!   exponential in the query size while one TPM scan stays linear;
//! * [`workload`] — the named query sets each experiment sweeps;
//! * [`qgen`] — seeded random FLWOR queries paired with random documents,
//!   with test-case shrinking, for the differential fuzzer (`xqp fuzz`).

pub mod bib;
pub mod qgen;
pub mod rng;
pub mod synth;
pub mod workload;
pub mod xmark;

pub use bib::{bib_sample, gen_bib};
pub use qgen::{gen_case, GenCase};
pub use rng::Prng;
pub use synth::{blowup_doc, blowup_query, deep_chain, wide_flat};
pub use workload::{xmark_queries, QuerySpec};
pub use xmark::{gen_xmark, XmarkConfig};
