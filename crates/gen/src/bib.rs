//! Bibliography documents in the `bib.xml` schema of the paper's Fig. 1.

use crate::rng::Prng;
use xqp_xml::Document;

/// The literal four-book sample of the W3C XQuery Use Cases — the document
/// Fig. 1's query runs against.
pub fn bib_sample() -> Document {
    xqp_xml::parse_document(
        r#"<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#,
    )
    .expect("sample is well-formed")
}

const SURNAMES: &[&str] = &[
    "Stevens",
    "Abiteboul",
    "Buneman",
    "Suciu",
    "Codd",
    "Gray",
    "Stonebraker",
    "Ullman",
    "Widom",
    "Jagadish",
    "Naughton",
    "DeWitt",
];

const TITLE_WORDS: &[&str] = &[
    "Advanced",
    "Foundations",
    "Principles",
    "Systems",
    "Databases",
    "Queries",
    "Streams",
    "Indexing",
    "Storage",
    "Trees",
    "Patterns",
    "Optimization",
];

const PUBLISHERS: &[&str] =
    &["Addison-Wesley", "Morgan Kaufmann", "Springer", "MIT Press", "Kluwer"];

/// Generate a bibliography with `n` books (deterministic under `seed`).
pub fn gen_bib(n: usize, seed: u64) -> Document {
    let mut rng = Prng::seed_from_u64(seed);
    let mut doc = Document::new();
    let bib = doc.append_element(doc.root(), "bib");
    for _ in 0..n {
        let book = doc.append_element(bib, "book");
        doc.set_attribute(book, "year", rng.gen_range(1985..2005).to_string());
        let title = doc.append_element(book, "title");
        let t = format!(
            "{} {} {}",
            TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())],
            TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())],
            TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]
        );
        doc.append_text(title, t);
        for _ in 0..rng.gen_range(1..4usize) {
            let author = doc.append_element(book, "author");
            let last = doc.append_element(author, "last");
            doc.append_text(last, SURNAMES[rng.gen_range(0..SURNAMES.len())]);
            let first = doc.append_element(author, "first");
            doc.append_text(first, "A.");
        }
        let publisher = doc.append_element(book, "publisher");
        doc.append_text(publisher, PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())]);
        let price = doc.append_element(book, "price");
        doc.append_text(price, format!("{:.2}", rng.gen_range(19.0..150.0)));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_has_four_books() {
        let d = bib_sample();
        let bib = d.root_element().unwrap();
        assert_eq!(d.child_elements(bib).count(), 4);
        // One book has an editor instead of authors.
        let editors = d
            .descendants_or_self(d.root())
            .filter(|&n| d.name(n).map(|q| q.local.as_str()) == Some("editor"))
            .count();
        assert_eq!(editors, 1);
    }

    #[test]
    fn generated_bib_counts() {
        let d = gen_bib(25, 3);
        let bib = d.root_element().unwrap();
        assert_eq!(d.child_elements(bib).count(), 25);
        for book in d.child_elements(bib) {
            assert!(d.attribute(book, "year").is_some());
            let kids: Vec<&str> =
                d.child_elements(book).map(|c| d.name(c).unwrap().local.as_str()).collect();
            assert!(kids.contains(&"title"));
            assert!(kids.contains(&"author"));
            assert!(kids.contains(&"price"));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(xqp_xml::serialize(&gen_bib(10, 9)), xqp_xml::serialize(&gen_bib(10, 9)));
    }
}
