//! A small deterministic PRNG so the generators (and the property tests)
//! need no external `rand` crate — the build environment is offline and
//! every registry dependency must be avoidable.
//!
//! The core is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA'14): a 64-bit counter passed through a
//! finalizer with full avalanche. It is not cryptographic, but it is fast,
//! seedable, has a 2^64 period, and — crucially for reproducible
//! experiments — a `(seed, call sequence)` pair always yields the same
//! stream on every platform.

use std::ops::Range;

/// Deterministic pseudo-random number generator (SplitMix64).
///
/// The API mirrors the subset of `rand::Rng` the generators use
/// (`gen_range` over half-open ranges, `gen_bool`), so call sites read the
/// same as they would against the external crate.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seed the generator. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a non-empty half-open range.
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }

    /// Like [`Prng::choose`], but returns the element by value.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.gen_range(0..items.len())]
    }
}

/// Types samplable from a half-open `Range` by [`Prng::gen_range`].
pub trait RangeSample: Copy {
    /// Uniform draw from `range` (panics on an empty range).
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range over an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded draw (Lemire); the tiny modulo bias
                // of plain `% span` would be fine for workloads, but this is
                // just as cheap and exact for spans below 2^64.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_sample!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl RangeSample for f64 {
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range over an empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
            let neg = rng.gen_range(-5..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn full_width_ranges_cover_both_halves() {
        let mut rng = Prng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..u64::MAX);
            if v < u64::MAX / 2 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut rng = Prng::seed_from_u64(5);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }
}
