//! Named query workloads for the experiments.

/// One benchmark query: an id, the path text, and what it stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Short id used in result tables (`X1` …).
    pub id: &'static str,
    /// The path expression.
    pub path: &'static str,
    /// Why it is in the suite.
    pub stresses: &'static str,
}

/// The six path queries of the NoK-vs-joins experiment (E5), mirroring the
/// companion paper's mix: shallow child chains, deep descendants, twigs with
/// existence branches, and value predicates of different selectivities.
pub fn xmark_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "X1",
            path: "/site/regions/africa/item/name",
            stresses: "pure NoK chain (child steps only)",
        },
        QuerySpec { id: "X2", path: "//keyword", stresses: "single descendant step, large result" },
        QuerySpec {
            id: "X3",
            path: "/site/people/person[profile/age > 30]/name",
            stresses: "NoK twig with a value predicate",
        },
        QuerySpec {
            id: "X4",
            path: "//open_auction[bidder/increase > 20]/reserve",
            stresses: "descendant twig with value predicate",
        },
        QuerySpec {
            id: "X5",
            path: "/site/closed_auctions/closed_auction[price > 40]/date",
            stresses: "selective value predicate on a child chain",
        },
        QuerySpec {
            id: "X6",
            path: "//item[mailbox/mail]//keyword",
            stresses: "two descendant partitions (NoK + structural join)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmark::{gen_xmark, XmarkConfig};
    use xqp_xpath::{parse_path, PatternGraph};

    #[test]
    fn all_queries_parse_and_pattern() {
        for q in xmark_queries() {
            let p = parse_path(q.path).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            PatternGraph::from_path(&p).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn queries_have_nonempty_results_on_default_doc() {
        use xqp_storage::SuccinctDoc;
        let doc = gen_xmark(&XmarkConfig::scale(0.05));
        let sdoc = SuccinctDoc::from_document(&doc);
        let ids_with_hits: Vec<&str> = xmark_queries()
            .iter()
            .filter(|q| {
                let ex = xqp_exec::Executor::new(&sdoc);
                !ex.eval_path_str(q.path).unwrap().is_empty()
            })
            .map(|q| q.id)
            .collect();
        // Every query should find something at this scale.
        assert_eq!(ids_with_hits.len(), xmark_queries().len(), "{ids_with_hits:?}");
    }
}
