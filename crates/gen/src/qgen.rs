//! Random FLWOR workloads for differential fuzzing.
//!
//! [`gen_case`] derives a *(document, query)* pair from a single `u64` seed:
//! a small random XML tree (or, occasionally, a canned document from
//! [`crate::synth`] / [`crate::xmark`] / [`crate::bib`]) together with a
//! random query over that document's tag vocabulary — nested for/let binds,
//! where predicates, order-by keys, path steps with value and positional
//! predicates, element constructors, aggregates, and conditionals. Queries
//! are valid by construction against the `xqp-xquery` grammar, so a parse
//! error in the differential harness is itself a finding.
//!
//! Both halves are kept as structured values (not strings) so failing cases
//! can be *shrunk*: [`GenCase::shrink_candidates`] proposes strictly smaller
//! variants — drop a bind, drop the where clause, drop order keys, simplify
//! the return, strip a path predicate, shorten a path, prune a document
//! subtree — and the harness keeps any candidate that still fails, iterating
//! to a minimal repro.

use crate::rng::Prng;
use std::fmt::Write as _;

/// Element/attribute vocabulary the query generator draws from. Kept in
/// sync with the document source so paths have a fighting chance of
/// matching (misses are still generated — empty results must agree too).
#[derive(Debug, Clone, Copy)]
pub struct Vocab {
    /// Element names.
    pub tags: &'static [&'static str],
    /// Attribute names.
    pub attrs: &'static [&'static str],
}

const TREE_VOCAB: Vocab = Vocab { tags: &["a", "b", "c", "d", "e"], attrs: &["k", "n"] };
/// Used for the occasional *large* random tree: two tags concentrate many
/// nodes under the same name, so a single `for` clause binds dozens of
/// items — enough to push sorts and joins out of their small-input paths.
const NARROW_VOCAB: Vocab = Vocab { tags: &["a", "b"], attrs: &["k", "n"] };
const BIB_VOCAB: Vocab = Vocab {
    tags: &["bib", "book", "title", "author", "price", "publisher", "last", "first"],
    attrs: &["year"],
};
const XMARK_VOCAB: Vocab = Vocab {
    tags: &["site", "regions", "categories", "category", "item", "name", "people", "person"],
    attrs: &["id"],
};

/// String payloads for generated text nodes and literals.
// Includes numeric strings on purpose: untyped text that *parses* as a
// number exercises XQuery's untyped-promotion rules in comparisons and
// `order by` keys (string-vs-number is where orderings go subtly wrong).
const WORDS: &[&str] = &["x", "y", "zz", "w10", "30", "5"];

/// Text payload of a generated element.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Numeric text content.
    Int(i64),
    /// Word text content.
    Word(&'static str),
}

impl Payload {
    fn render(&self, out: &mut String) {
        match self {
            Payload::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Payload::Word(w) => out.push_str(w),
        }
    }
}

/// A node of a generated (shrinkable) document tree.
#[derive(Debug, Clone, PartialEq)]
pub struct GenNode {
    /// Element name.
    pub tag: &'static str,
    /// Attributes (name, numeric value).
    pub attrs: Vec<(&'static str, i64)>,
    /// Optional leading text content.
    pub text: Option<Payload>,
    /// Child elements (serialized after the text).
    pub children: Vec<GenNode>,
}

impl GenNode {
    fn leaf(tag: &'static str) -> GenNode {
        GenNode { tag, attrs: vec![], text: None, children: vec![] }
    }

    fn write_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(self.tag);
        for (name, value) in &self.attrs {
            let _ = write!(out, " {name}=\"{value}\"");
        }
        if self.text.is_none() && self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        if let Some(t) = &self.text {
            t.render(out);
        }
        for c in &self.children {
            c.write_xml(out);
        }
        out.push_str("</");
        out.push_str(self.tag);
        out.push('>');
    }

    /// Number of elements in this subtree (root included).
    fn size(&self) -> usize {
        1 + self.children.iter().map(GenNode::size).sum::<usize>()
    }

    /// Remove the `target`-th node (pre-order, skipping the root). Returns
    /// true when a node was removed.
    fn remove_nth(&mut self, target: &mut usize) -> bool {
        for i in 0..self.children.len() {
            if *target == 0 {
                self.children.remove(i);
                return true;
            }
            *target -= 1;
            if self.children[i].remove_nth(target) {
                return true;
            }
        }
        false
    }
}

/// The document half of a case: a shrinkable random tree, or a canned
/// generator output (shrunk only by swapping in a minimal tree).
#[derive(Debug, Clone, PartialEq)]
pub enum GenDoc {
    /// Random tree (fully shrinkable).
    Tree(GenNode),
    /// Pre-rendered document from `synth`/`xmark`/`bib`.
    Canned(String),
}

// ---- query AST -----------------------------------------------------------

/// One step of a generated path.
#[derive(Debug, Clone, PartialEq)]
pub struct QStep {
    /// `/` or `//`.
    pub sep: &'static str,
    /// Node test: a tag, `*`, `@attr`, or `text()`.
    pub test: String,
    /// Optional predicate.
    pub pred: Option<QPred>,
}

/// A step predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum QPred {
    /// `[child]` / `[@attr]` existence.
    Exists(String),
    /// `[lhs op literal]` value comparison.
    Cmp(String, &'static str, QLit),
    /// `[n]` positional.
    Pos(usize),
}

/// A literal inside a path predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum QLit {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(&'static str),
}

/// A generated relative path (rendered after `doc()` or `$var`).
#[derive(Debug, Clone, PartialEq)]
pub struct QPath {
    /// At least one step.
    pub steps: Vec<QStep>,
}

impl QPath {
    fn render(&self, out: &mut String) {
        for s in &self.steps {
            out.push_str(s.sep);
            out.push_str(&s.test);
            if let Some(p) = &s.pred {
                out.push('[');
                match p {
                    QPred::Exists(t) => out.push_str(t),
                    QPred::Cmp(lhs, op, lit) => {
                        out.push_str(lhs);
                        let _ = write!(out, " {op} ");
                        match lit {
                            QLit::Int(i) => {
                                let _ = write!(out, "{i}");
                            }
                            QLit::Str(s) => {
                                let _ = write!(out, "\"{s}\"");
                            }
                        }
                    }
                    QPred::Pos(n) => {
                        let _ = write!(out, "{n}");
                    }
                }
                out.push(']');
            }
        }
    }
}

/// A bare-path probe for the *select* plane. The query half of a case
/// exercises the FLWOR matrix; this half exercises `eval_path_str`, which
/// roots and dispatches paths on its own (absolute vs relative, axis
/// prefixes, TPM fast path vs naive cascade) — a separate surface with its
/// own bugs, so it gets its own differential leg.
#[derive(Debug, Clone, PartialEq)]
pub struct QProbe {
    /// Leading form replacing the first step's separator: `"/"`, `"//"`,
    /// `""` (bare relative), or an axis prefix such as `"descendant::"`.
    pub lead: &'static str,
    /// The steps (the first step's own `sep` is ignored in favor of `lead`).
    pub path: QPath,
}

impl QProbe {
    /// Render as bare XPath text, e.g. `descendant::a[@k]//b`.
    pub fn render(&self) -> String {
        let mut rendered = String::new();
        self.path.render(&mut rendered);
        // `QPath::render` always leads with the first step's separator;
        // splice in our lead instead.
        let skip = if rendered.starts_with("//") { 2 } else { 1 };
        format!("{}{}", self.lead, &rendered[skip..])
    }
}

/// A generated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QExpr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(&'static str),
    /// Variable reference `$vN`.
    Var(u32),
    /// `doc()` followed by a path.
    DocPath(QPath),
    /// `$vN` followed by a path.
    VarPath(u32, QPath),
    /// Comparison (`=`, `!=`, `<`, `<=`, `>`, `>=`).
    Cmp(&'static str, Box<QExpr>, Box<QExpr>),
    /// Arithmetic (`+`, `-`, `*`, `div`, `mod`).
    Arith(&'static str, Box<QExpr>, Box<QExpr>),
    /// `and` / `or`.
    Logic(&'static str, Box<QExpr>, Box<QExpr>),
    /// `not(...)`.
    Not(Box<QExpr>),
    /// Built-in function call.
    Call(&'static str, Vec<QExpr>),
    /// `if (cond) then a else b`.
    If(Box<QExpr>, Box<QExpr>, Box<QExpr>),
    /// Parenthesized sequence.
    Seq(Vec<QExpr>),
    /// Element constructor.
    Elem(QElem),
    /// Nested FLWOR.
    Flwor(Box<QFlwor>),
    /// Quantified expression `some|every $vN in source satisfies cond`
    /// (`true` = every).
    Quantified(bool, u32, Box<QExpr>, Box<QExpr>),
}

/// A generated element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct QElem {
    /// Element name.
    pub name: &'static str,
    /// Attribute templates (each value rendered as `"{expr}"`).
    pub attrs: Vec<(&'static str, QExpr)>,
    /// Children: nested constructors inline, `Str` as literal text,
    /// everything else as a `{expr}` template.
    pub children: Vec<QExpr>,
}

/// One FLWOR binding clause.
#[derive(Debug, Clone, PartialEq)]
pub enum QBind {
    /// `for $vN in expr`.
    For(u32, QExpr),
    /// `let $vN := expr`.
    Let(u32, QExpr),
}

impl QBind {
    fn var(&self) -> u32 {
        match self {
            QBind::For(v, _) | QBind::Let(v, _) => *v,
        }
    }
}

/// A generated FLWOR query.
#[derive(Debug, Clone, PartialEq)]
pub struct QFlwor {
    /// Binding clauses, in order.
    pub binds: Vec<QBind>,
    /// Optional where predicate.
    pub wher: Option<QExpr>,
    /// Order-by keys (expr, descending).
    pub order: Vec<(QExpr, bool)>,
    /// Return expression.
    pub ret: QExpr,
}

impl QExpr {
    /// Whether this expression must be parenthesized in operand position
    /// (binary operands, for/let sources) to parse unambiguously.
    fn compound(&self) -> bool {
        matches!(
            self,
            QExpr::Cmp(..)
                | QExpr::Arith(..)
                | QExpr::Logic(..)
                | QExpr::If(..)
                | QExpr::Flwor(..)
                | QExpr::Quantified(..)
        ) || matches!(self, QExpr::Int(i) if *i < 0)
    }

    fn render_operand(&self, out: &mut String) {
        if self.compound() {
            out.push('(');
            self.render(out);
            out.push(')');
        } else {
            self.render(out);
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            QExpr::Int(i) => {
                let _ = write!(out, "{i}");
            }
            QExpr::Str(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            QExpr::Var(v) => {
                let _ = write!(out, "$v{v}");
            }
            QExpr::DocPath(p) => {
                out.push_str("doc()");
                p.render(out);
            }
            QExpr::VarPath(v, p) => {
                let _ = write!(out, "$v{v}");
                p.render(out);
            }
            QExpr::Cmp(op, l, r) | QExpr::Arith(op, l, r) | QExpr::Logic(op, l, r) => {
                l.render_operand(out);
                let _ = write!(out, " {op} ");
                r.render_operand(out);
            }
            QExpr::Not(e) => {
                out.push_str("not(");
                e.render(out);
                out.push(')');
            }
            QExpr::Call(name, args) => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.render(out);
                }
                out.push(')');
            }
            QExpr::If(c, t, e) => {
                out.push_str("if (");
                c.render(out);
                out.push_str(") then ");
                t.render_operand(out);
                out.push_str(" else ");
                e.render_operand(out);
            }
            QExpr::Seq(items) => {
                out.push('(');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
                out.push(')');
            }
            QExpr::Elem(el) => el.render(out),
            QExpr::Flwor(f) => f.render(out),
            QExpr::Quantified(every, v, src, cond) => {
                let kw = if *every { "every" } else { "some" };
                let _ = write!(out, "{kw} $v{v} in ");
                src.render_operand(out);
                out.push_str(" satisfies ");
                cond.render_operand(out);
            }
        }
    }
}

impl QElem {
    fn render(&self, out: &mut String) {
        out.push('<');
        out.push_str(self.name);
        for (name, value) in &self.attrs {
            let _ = write!(out, " {name}=\"{{");
            value.render(out);
            out.push_str("}\"");
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                QExpr::Elem(el) => el.render(out),
                QExpr::Str(s) => out.push_str(s),
                other => {
                    out.push('{');
                    other.render(out);
                    out.push('}');
                }
            }
        }
        out.push_str("</");
        out.push_str(self.name);
        out.push('>');
    }
}

impl QFlwor {
    fn render(&self, out: &mut String) {
        for b in &self.binds {
            match b {
                QBind::For(v, src) => {
                    let _ = write!(out, "for $v{v} in ");
                    src.render_operand(out);
                }
                QBind::Let(v, src) => {
                    let _ = write!(out, "let $v{v} := ");
                    src.render_operand(out);
                }
            }
            out.push(' ');
        }
        if let Some(w) = &self.wher {
            out.push_str("where ");
            // A bare nested FLWOR as the whole condition would swallow the
            // following clauses; the generator never emits one, but the
            // shrinker may surface one — parenthesize defensively.
            w.render_operand_keep_simple(out);
            out.push(' ');
        }
        if !self.order.is_empty() {
            out.push_str("order by ");
            for (i, (key, desc)) in self.order.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                key.render_operand_keep_simple(out);
                if *desc {
                    out.push_str(" descending");
                }
            }
            out.push(' ');
        }
        out.push_str("return ");
        self.ret.render(out);
    }
}

impl QExpr {
    /// Render bare unless the expression would swallow following clause
    /// keywords (`order`, `return`) — i.e. a nested FLWOR or conditional.
    fn render_operand_keep_simple(&self, out: &mut String) {
        if matches!(self, QExpr::Flwor(..) | QExpr::If(..) | QExpr::Quantified(..)) {
            out.push('(');
            self.render(out);
            out.push(')');
        } else {
            self.render(out);
        }
    }
}

// ---- case ----------------------------------------------------------------

/// A generated differential test case: one document, one query.
#[derive(Debug, Clone, PartialEq)]
pub struct GenCase {
    /// The document half.
    pub doc: GenDoc,
    /// The query half.
    pub query: QFlwor,
    /// Bare-path probe for the select plane (checked separately from the
    /// FLWOR matrix; dropped first when the query is what's failing).
    pub probe: Option<QProbe>,
}

impl GenCase {
    /// The document serialized as XML.
    pub fn doc_xml(&self) -> String {
        match &self.doc {
            GenDoc::Tree(root) => {
                let mut out = String::new();
                root.write_xml(&mut out);
                out
            }
            GenDoc::Canned(xml) => xml.clone(),
        }
    }

    /// The query rendered as XQuery text.
    pub fn query_text(&self) -> String {
        let mut out = String::new();
        self.query.render(&mut out);
        out
    }

    /// Strictly smaller variants of this case, for greedy shrinking: the
    /// harness re-checks each candidate and keeps the first that still
    /// fails, iterating until none does.
    pub fn shrink_candidates(&self) -> Vec<GenCase> {
        let mut out = Vec::new();
        self.shrink_probe(&mut out);
        self.shrink_query(&mut out);
        self.shrink_doc(&mut out);
        out
    }

    fn with_query(&self, query: QFlwor) -> GenCase {
        GenCase { doc: self.doc.clone(), query, probe: self.probe.clone() }
    }

    fn with_probe(&self, probe: Option<QProbe>) -> GenCase {
        GenCase { doc: self.doc.clone(), query: self.query.clone(), probe }
    }

    fn shrink_probe(&self, out: &mut Vec<GenCase>) {
        let Some(probe) = &self.probe else { return };
        // Drop the probe entirely (kept whenever the *query* is the failing
        // half — this is proposed first so probe noise disappears fast).
        out.push(self.with_probe(None));
        // Simplify the lead: `//` to `/`, axis/bare forms to bare relative.
        match probe.lead {
            "//" => out.push(self.with_probe(Some(QProbe { lead: "/", ..probe.clone() }))),
            "/" | "" => {}
            _ => out.push(self.with_probe(Some(QProbe { lead: "", ..probe.clone() }))),
        }
        // Reuse the query-side path shrinks on the probe's steps.
        for op in [PathShrink::ClearPred, PathShrink::DropLastStep] {
            let mut cand = probe.clone();
            if op.apply(&mut cand.path) {
                out.push(self.with_probe(Some(cand)));
            }
        }
    }

    fn shrink_query(&self, out: &mut Vec<GenCase>) {
        let q = &self.query;
        // Drop one bind, when no later clause references its variable.
        if q.binds.len() > 1 {
            for i in 0..q.binds.len() {
                let mut cand = q.clone();
                let var = cand.binds.remove(i).var();
                let mut rendered = String::new();
                cand.render(&mut rendered);
                if !rendered.contains(&format!("$v{var}")) {
                    out.push(self.with_query(cand));
                }
            }
        }
        // Drop the where clause, or simplify it.
        if let Some(w) = &q.wher {
            let mut cand = q.clone();
            cand.wher = None;
            out.push(self.with_query(cand));
            match w {
                QExpr::Logic(_, l, r) => {
                    for side in [l, r] {
                        let mut cand = q.clone();
                        cand.wher = Some((**side).clone());
                        out.push(self.with_query(cand));
                    }
                }
                QExpr::Not(inner) => {
                    let mut cand = q.clone();
                    cand.wher = Some((**inner).clone());
                    out.push(self.with_query(cand));
                }
                _ => {}
            }
        }
        // Drop order-by entirely, or one key at a time.
        if !q.order.is_empty() {
            let mut cand = q.clone();
            cand.order.clear();
            out.push(self.with_query(cand));
            if q.order.len() > 1 {
                for i in 0..q.order.len() {
                    let mut cand = q.clone();
                    cand.order.remove(i);
                    out.push(self.with_query(cand));
                }
            }
            for i in 0..q.order.len() {
                if q.order[i].1 {
                    let mut cand = q.clone();
                    cand.order[i].1 = false;
                    out.push(self.with_query(cand));
                }
            }
        }
        // Simplify the return expression.
        if q.ret != QExpr::Int(0) {
            let mut cand = q.clone();
            cand.ret = QExpr::Int(0);
            out.push(self.with_query(cand));
            for sub in ret_simplifications(&q.ret) {
                let mut cand = q.clone();
                cand.ret = sub;
                out.push(self.with_query(cand));
            }
        }
        // Replace each bind source with a trivial sequence.
        for i in 0..q.binds.len() {
            let trivial = QExpr::Seq(vec![QExpr::Int(1), QExpr::Int(2)]);
            let (src, rebuild): (&QExpr, fn(u32, QExpr) -> QBind) = match &q.binds[i] {
                QBind::For(_, s) => (s, |v, s| QBind::For(v, s)),
                QBind::Let(_, s) => (s, |v, s| QBind::Let(v, s)),
            };
            if *src != trivial {
                let mut cand = q.clone();
                cand.binds[i] = rebuild(q.binds[i].var(), trivial);
                out.push(self.with_query(cand));
            }
        }
        // Strip one path predicate / drop one trailing path step anywhere
        // in the query.
        for op in [PathShrink::ClearPred, PathShrink::DropLastStep] {
            let total = count_paths(q);
            for target in 0..total {
                let mut cand = q.clone();
                let mut idx = 0usize;
                if shrink_path_in_flwor(&mut cand, &mut idx, target, op) {
                    out.push(self.with_query(cand));
                }
            }
        }
    }

    fn shrink_doc(&self, out: &mut Vec<GenCase>) {
        match &self.doc {
            GenDoc::Tree(root) => {
                // Remove one node at a time (pre-order), capped so huge
                // documents do not explode the candidate list.
                let removable = root.size().saturating_sub(1).min(24);
                for target in 0..removable {
                    let mut cand = root.clone();
                    let mut t = target;
                    if cand.remove_nth(&mut t) {
                        out.push(GenCase {
                            doc: GenDoc::Tree(cand),
                            query: self.query.clone(),
                            probe: self.probe.clone(),
                        });
                    }
                }
            }
            GenDoc::Canned(_) => {
                // Canned documents shrink by swapping in a minimal tree.
                out.push(GenCase {
                    doc: GenDoc::Tree(GenNode::leaf("r")),
                    query: self.query.clone(),
                    probe: self.probe.clone(),
                });
            }
        }
    }
}

/// Smaller expressions a return clause can be replaced by while preserving
/// the interesting structure (e.g. keep one constructor child).
fn ret_simplifications(ret: &QExpr) -> Vec<QExpr> {
    match ret {
        QExpr::Elem(el) => {
            let mut out: Vec<QExpr> = el.children.to_vec();
            out.extend(el.attrs.iter().map(|(_, v)| v.clone()));
            out
        }
        QExpr::If(c, t, e) => vec![(**c).clone(), (**t).clone(), (**e).clone()],
        QExpr::Call(_, args) => args.clone(),
        QExpr::Seq(items) => items.clone(),
        QExpr::Cmp(_, l, r) | QExpr::Arith(_, l, r) | QExpr::Logic(_, l, r) => {
            vec![(**l).clone(), (**r).clone()]
        }
        QExpr::Flwor(f) => vec![f.ret.clone()],
        QExpr::Quantified(_, _, src, cond) => vec![(**src).clone(), (**cond).clone()],
        _ => vec![],
    }
}

/// Path-level shrink operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathShrink {
    ClearPred,
    DropLastStep,
}

impl PathShrink {
    /// Apply to `path` if applicable; returns true when it changed.
    fn apply(self, path: &mut QPath) -> bool {
        match self {
            PathShrink::ClearPred => {
                let mut changed = false;
                for s in &mut path.steps {
                    if s.pred.is_some() {
                        s.pred = None;
                        changed = true;
                    }
                }
                changed
            }
            PathShrink::DropLastStep => {
                if path.steps.len() > 1 {
                    path.steps.pop();
                    true
                } else {
                    false
                }
            }
        }
    }
}

fn count_paths(q: &QFlwor) -> usize {
    let mut n = 0usize;
    let mut count = |_: &mut QPath| n += 1;
    // Count by walking a clone mutably with a no-op-ish closure.
    let mut c = q.clone();
    visit_paths_flwor(&mut c, &mut count);
    n
}

/// Apply `op` to the `target`-th path of the query (visit order). Returns
/// true when the path existed and the operation changed it.
fn shrink_path_in_flwor(q: &mut QFlwor, idx: &mut usize, target: usize, op: PathShrink) -> bool {
    let mut changed = false;
    let mut f = |p: &mut QPath| {
        if *idx == target {
            changed = op.apply(p);
        }
        *idx += 1;
    };
    visit_paths_flwor(q, &mut f);
    changed
}

fn visit_paths_flwor(q: &mut QFlwor, f: &mut impl FnMut(&mut QPath)) {
    for b in &mut q.binds {
        match b {
            QBind::For(_, s) | QBind::Let(_, s) => visit_paths_expr(s, f),
        }
    }
    if let Some(w) = &mut q.wher {
        visit_paths_expr(w, f);
    }
    for (k, _) in &mut q.order {
        visit_paths_expr(k, f);
    }
    visit_paths_expr(&mut q.ret, f);
}

fn visit_paths_expr(e: &mut QExpr, f: &mut impl FnMut(&mut QPath)) {
    match e {
        QExpr::DocPath(p) | QExpr::VarPath(_, p) => f(p),
        QExpr::Cmp(_, l, r) | QExpr::Arith(_, l, r) | QExpr::Logic(_, l, r) => {
            visit_paths_expr(l, f);
            visit_paths_expr(r, f);
        }
        QExpr::Not(inner) => visit_paths_expr(inner, f),
        QExpr::Call(_, args) | QExpr::Seq(args) => {
            for a in args {
                visit_paths_expr(a, f);
            }
        }
        QExpr::If(c, t, el) => {
            visit_paths_expr(c, f);
            visit_paths_expr(t, f);
            visit_paths_expr(el, f);
        }
        QExpr::Elem(el) => {
            for (_, v) in &mut el.attrs {
                visit_paths_expr(v, f);
            }
            for c in &mut el.children {
                visit_paths_expr(c, f);
            }
        }
        QExpr::Flwor(inner) => visit_paths_flwor(inner, f),
        QExpr::Quantified(_, _, src, cond) => {
            visit_paths_expr(src, f);
            visit_paths_expr(cond, f);
        }
        QExpr::Int(_) | QExpr::Str(_) | QExpr::Var(_) => {}
    }
}

// ---- generation ----------------------------------------------------------

struct Gen<'r> {
    rng: &'r mut Prng,
    vocab: Vocab,
    next_var: u32,
}

const CMP_OPS: &[&str] = &["=", "!=", "<", "<=", ">", ">="];

impl Gen<'_> {
    fn fresh_var(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    fn tag(&mut self) -> &'static str {
        self.rng.pick(self.vocab.tags)
    }

    fn attr(&mut self) -> &'static str {
        self.rng.pick(self.vocab.attrs)
    }

    fn small_int(&mut self) -> i64 {
        self.rng.gen_range(-3i64..13)
    }

    fn cmp_op(&mut self) -> &'static str {
        self.rng.pick(CMP_OPS)
    }

    fn arith_op(&mut self) -> &'static str {
        // div/mod are rare: they mostly produce doubles / errors, which are
        // still cross-checked but less structurally interesting.
        if self.rng.gen_bool(0.15) {
            self.rng.pick(&["div", "mod"])
        } else {
            self.rng.pick(&["+", "-", "*"])
        }
    }

    fn path(&mut self, allow_special_tail: bool) -> QPath {
        let nsteps = 1 + self.rng.gen_range(0..3usize);
        let mut steps = Vec::with_capacity(nsteps);
        for i in 0..nsteps {
            let first = i == 0;
            let last = i == nsteps - 1;
            let sep = if self.rng.gen_bool(if first { 0.4 } else { 0.3 }) { "//" } else { "/" };
            // Attribute / text() tails turn the path into a value sequence.
            if last && allow_special_tail && self.rng.gen_bool(0.2) {
                let test = if self.rng.gen_bool(0.7) {
                    format!("@{}", self.attr())
                } else {
                    "text()".to_string()
                };
                steps.push(QStep { sep, test, pred: None });
                break;
            }
            let test =
                if self.rng.gen_bool(0.1) { "*".to_string() } else { self.tag().to_string() };
            let pred = if self.rng.gen_bool(0.3) { Some(self.pred_for_step()) } else { None };
            steps.push(QStep { sep, test, pred });
        }
        QPath { steps }
    }

    fn pred_for_step(&mut self) -> QPred {
        match self.rng.gen_range(0..4u32) {
            0 => {
                let t = if self.rng.gen_bool(0.3) {
                    format!("@{}", self.attr())
                } else {
                    self.tag().to_string()
                };
                QPred::Exists(t)
            }
            1 => QPred::Pos(1 + self.rng.gen_range(0..3usize)),
            _ => {
                let lhs = if self.rng.gen_bool(0.35) {
                    format!("@{}", self.attr())
                } else {
                    self.tag().to_string()
                };
                let lit = if self.rng.gen_bool(0.7) {
                    QLit::Int(self.small_int())
                } else {
                    QLit::Str(self.rng.pick(WORDS))
                };
                QPred::Cmp(lhs, self.cmp_op(), lit)
            }
        }
    }

    fn var_from(&mut self, scope: &[u32]) -> u32 {
        self.rng.pick(scope)
    }

    fn flwor(&mut self, outer: &[u32], depth: usize) -> QFlwor {
        let mut scope = outer.to_vec();
        let nbinds = 1 + self.rng.gen_range(0..3usize);
        let mut binds = Vec::with_capacity(nbinds);
        for _ in 0..nbinds {
            if self.next_var >= 9 {
                break;
            }
            let source = self.bind_source(&scope, depth);
            let v = self.fresh_var();
            if self.rng.gen_bool(0.7) {
                binds.push(QBind::For(v, source));
            } else {
                binds.push(QBind::Let(v, source));
            }
            scope.push(v);
        }
        if binds.is_empty() {
            // Variable budget exhausted: emit a minimal single bind.
            let v = self.next_var.min(9);
            binds.push(QBind::For(v, QExpr::DocPath(self.path(false))));
            scope.push(v);
        }
        let wher = if self.rng.gen_bool(0.55) { Some(self.pred(&scope, 1)) } else { None };
        let order = if self.rng.gen_bool(0.45) {
            let nkeys = 1 + self.rng.gen_range(0..2usize);
            (0..nkeys).map(|_| (self.order_key(&scope), self.rng.gen_bool(0.4))).collect()
        } else {
            vec![]
        };
        let ret = self.ret(&scope, depth);
        QFlwor { binds, wher, order, ret }
    }

    fn bind_source(&mut self, scope: &[u32], depth: usize) -> QExpr {
        let roll = self.rng.gen_range(0..100u32);
        let special_tail = self.rng.gen_bool(0.3);
        if roll < 45 || (scope.is_empty() && roll < 70) {
            QExpr::DocPath(self.path(special_tail))
        } else if roll < 70 {
            QExpr::VarPath(self.var_from(scope), self.path(special_tail))
        } else if roll < 80 {
            let n = 1 + self.rng.gen_range(0..3usize);
            QExpr::Seq((0..n).map(|_| QExpr::Int(self.small_int())).collect())
        } else if roll < 88 && depth < 2 && self.next_var < 7 {
            QExpr::Flwor(Box::new(self.flwor(scope, depth + 1)))
        } else if roll < 94 && !scope.is_empty() {
            QExpr::Call(
                "distinct-values",
                vec![QExpr::VarPath(self.var_from(scope), self.path(true))],
            )
        } else {
            QExpr::Int(self.small_int())
        }
    }

    fn pred(&mut self, scope: &[u32], fuel: usize) -> QExpr {
        let roll = self.rng.gen_range(0..100u32);
        if roll < 20 && fuel > 0 {
            let op = self.rng.pick(&["and", "or"]);
            let l = self.pred(scope, fuel - 1);
            let r = self.pred(scope, fuel - 1);
            QExpr::Logic(op, Box::new(l), Box::new(r))
        } else if roll < 28 && fuel > 0 {
            QExpr::Not(Box::new(self.pred(scope, fuel - 1)))
        } else if roll < 55 {
            let lhs = QExpr::VarPath(self.var_from(scope), self.path(true));
            let rhs = if self.rng.gen_bool(0.7) {
                QExpr::Int(self.small_int())
            } else {
                QExpr::Str(self.rng.pick(WORDS))
            };
            QExpr::Cmp(self.cmp_op(), Box::new(lhs), Box::new(rhs))
        } else if roll < 70 {
            let f = self.rng.pick(&["exists", "empty"]);
            QExpr::Call(f, vec![QExpr::VarPath(self.var_from(scope), self.path(true))])
        } else if roll < 82 {
            let lhs = QExpr::Call("count", vec![QExpr::Var(self.var_from(scope))]);
            QExpr::Cmp(self.cmp_op(), Box::new(lhs), Box::new(QExpr::Int(self.small_int())))
        } else if roll < 92 {
            let l = QExpr::VarPath(self.var_from(scope), self.path(true));
            let r = QExpr::VarPath(self.var_from(scope), self.path(true));
            QExpr::Cmp(self.cmp_op(), Box::new(l), Box::new(r))
        } else {
            let inner = QExpr::Arith(
                self.arith_op(),
                Box::new(QExpr::VarPath(self.var_from(scope), self.path(true))),
                Box::new(QExpr::Int(self.small_int())),
            );
            QExpr::Cmp(self.cmp_op(), Box::new(inner), Box::new(QExpr::Int(self.small_int())))
        }
    }

    fn order_key(&mut self, scope: &[u32]) -> QExpr {
        let v = self.var_from(scope);
        match self.rng.gen_range(0..6u32) {
            0 => QExpr::Var(v),
            1 | 2 => QExpr::VarPath(v, self.path(true)),
            3 => QExpr::Arith(
                "+",
                Box::new(QExpr::VarPath(v, self.path(true))),
                Box::new(QExpr::Int(self.small_int())),
            ),
            // number() keys go NaN on non-numeric text; if-keys mix types
            // across bindings. Both probe the totality of the sort order.
            4 => QExpr::Call("number", vec![QExpr::VarPath(v, self.path(true))]),
            _ => QExpr::If(
                Box::new(self.pred(scope, 0)),
                Box::new(QExpr::Int(self.small_int())),
                Box::new(QExpr::VarPath(self.var_from(scope), self.path(true))),
            ),
        }
    }

    fn ret(&mut self, scope: &[u32], depth: usize) -> QExpr {
        let roll = self.rng.gen_range(0..100u32);
        if roll < 15 {
            QExpr::Var(self.var_from(scope))
        } else if roll < 35 {
            QExpr::VarPath(self.var_from(scope), self.path(true))
        } else if roll < 60 {
            QExpr::Elem(self.elem(scope, depth))
        } else if roll < 75 {
            self.agg(scope)
        } else if roll < 82 {
            let c = self.pred(scope, 0);
            let t = self.simple(scope);
            let e = self.simple(scope);
            QExpr::If(Box::new(c), Box::new(t), Box::new(e))
        } else if roll < 88 && depth < 2 && self.next_var < 7 {
            QExpr::Flwor(Box::new(self.flwor(scope, depth + 1)))
        } else if roll < 94 {
            let n = 2 + self.rng.gen_range(0..2usize);
            QExpr::Seq((0..n).map(|_| self.simple(scope)).collect())
        } else {
            QExpr::Arith(
                self.arith_op(),
                Box::new(self.simple(scope)),
                Box::new(QExpr::Int(self.small_int())),
            )
        }
    }

    fn elem(&mut self, scope: &[u32], depth: usize) -> QElem {
        let name = self.rng.pick(&["out", "item", "row"]);
        let mut attrs = Vec::new();
        if self.rng.gen_bool(0.4) {
            let value = match self.rng.gen_range(0..3u32) {
                0 => QExpr::Var(self.var_from(scope)),
                1 => QExpr::Call("count", vec![QExpr::Var(self.var_from(scope))]),
                _ => QExpr::Int(self.small_int()),
            };
            attrs.push((self.rng.pick(&["id", "c"]), value));
        }
        let nkids = 1 + self.rng.gen_range(0..2usize);
        let mut children = Vec::with_capacity(nkids);
        for _ in 0..nkids {
            let roll = self.rng.gen_range(0..100u32);
            children.push(if roll < 40 {
                QExpr::VarPath(self.var_from(scope), self.path(true))
            } else if roll < 55 {
                QExpr::Var(self.var_from(scope))
            } else if roll < 70 {
                self.agg(scope)
            } else if roll < 80 && depth < 2 {
                QExpr::Elem(self.elem(scope, depth + 1))
            } else if roll < 90 {
                QExpr::Str(self.rng.pick(WORDS))
            } else {
                QExpr::Int(self.small_int())
            });
        }
        QElem { name, attrs, children }
    }

    fn agg(&mut self, scope: &[u32]) -> QExpr {
        let arg = if self.rng.gen_bool(0.6) {
            QExpr::VarPath(self.var_from(scope), self.path(true))
        } else {
            QExpr::Var(self.var_from(scope))
        };
        match self.rng.gen_range(0..8u32) {
            0 => QExpr::Call("count", vec![arg]),
            1 => QExpr::Call("sum", vec![arg]),
            2 => QExpr::Call("string", vec![arg]),
            3 => QExpr::Call("number", vec![arg]),
            4 => QExpr::Call("concat", vec![arg, QExpr::Str(self.rng.pick(WORDS))]),
            5 => QExpr::Call("string-join", vec![arg, QExpr::Str("|")]),
            6 => QExpr::Call("min", vec![arg]),
            _ => QExpr::Call("string-length", vec![QExpr::Call("string", vec![arg])]),
        }
    }

    fn simple(&mut self, scope: &[u32]) -> QExpr {
        match self.rng.gen_range(0..4u32) {
            0 => QExpr::Var(self.var_from(scope)),
            1 => QExpr::VarPath(self.var_from(scope), self.path(true)),
            2 => QExpr::Int(self.small_int()),
            _ => QExpr::Str(self.rng.pick(WORDS)),
        }
    }

    fn probe(&mut self) -> QProbe {
        let lead = match self.rng.gen_range(0..12u32) {
            0 | 1 => "",
            2 => "descendant::",
            3 => "child::",
            4 => "descendant-or-self::",
            5..=8 => "//",
            _ => "/",
        };
        // Attribute/text() tails only behind absolute leads: an axis prefix
        // in front of `@k` or `text()` does not parse.
        let path = self.path(matches!(lead, "/" | "//"));
        QProbe { lead, path }
    }

    // ---- documents -------------------------------------------------------

    fn doc_tree(&mut self) -> GenNode {
        // Mostly small trees (shrink-friendly), but sometimes big flat ones:
        // sorts and joins over dozens of bindings take different code paths
        // than over a handful (batch boundaries, sort algorithms).
        let (mut budget, max_width) = if self.rng.gen_bool(0.12) {
            // Narrow the tag pool for the rest of the case too, so the
            // query's paths actually hit those crowds.
            self.vocab = NARROW_VOCAB;
            (30 + self.rng.gen_range(0..60usize), 80)
        } else {
            (self.rng.gen_range(0..28usize), 6)
        };
        let mut root = GenNode::leaf("r");
        while budget > 0 && root.children.len() < max_width {
            let child = self.doc_node(&mut budget, 1);
            root.children.push(child);
        }
        root
    }

    fn doc_node(&mut self, budget: &mut usize, depth: usize) -> GenNode {
        *budget = budget.saturating_sub(1);
        let mut n = GenNode::leaf(self.tag());
        for attr in self.vocab.attrs {
            if self.rng.gen_bool(0.2) {
                let value = self.small_int();
                n.attrs.push((attr, value));
            }
        }
        if self.rng.gen_bool(0.55) {
            n.text = Some(if self.rng.gen_bool(0.75) {
                Payload::Int(self.rng.gen_range(-9i64..100))
            } else {
                Payload::Word(self.rng.pick(WORDS))
            });
        }
        if depth < 5 {
            while *budget > 0 && n.children.len() < 4 && self.rng.gen_bool(0.55) {
                let child = self.doc_node(budget, depth + 1);
                n.children.push(child);
            }
        }
        n
    }
}

/// Generate the case for `seed`. Deterministic: equal seeds yield equal
/// cases on every platform.
pub fn gen_case(seed: u64) -> GenCase {
    let mut rng = Prng::seed_from_u64(seed);
    // Occasionally run the query against a canned generator document; the
    // query vocabulary follows the document so paths can hit.
    let roll = rng.gen_range(0..100u32);
    let (doc, vocab) = if roll < 82 {
        (None, TREE_VOCAB)
    } else if roll < 88 {
        let depth = 3 + rng.gen_range(0..6usize);
        (Some(xqp_xml::serialize(&crate::synth::deep_chain(depth, TREE_VOCAB.tags))), TREE_VOCAB)
    } else if roll < 93 {
        let n = 4 + rng.gen_range(0..8usize);
        (Some(xqp_xml::serialize(&crate::synth::wide_flat(n, TREE_VOCAB.tags))), TREE_VOCAB)
    } else if roll < 97 {
        let n = 2 + rng.gen_range(0..4usize);
        (Some(xqp_xml::serialize(&crate::bib::gen_bib(n, rng.next_u64()))), BIB_VOCAB)
    } else {
        let cfg = crate::xmark::XmarkConfig {
            items_per_region: 1,
            people: 2,
            open_auctions: 1,
            closed_auctions: 1,
            categories: 1,
            seed: rng.next_u64(),
        };
        (Some(xqp_xml::serialize(&crate::xmark::gen_xmark(&cfg))), XMARK_VOCAB)
    };
    let mut g = Gen { rng: &mut rng, vocab, next_var: 0 };
    let doc = match doc {
        Some(xml) => GenDoc::Canned(xml),
        None => GenDoc::Tree(g.doc_tree()),
    };
    let query = g.flwor(&[], 0);
    let probe = Some(g.probe());
    GenCase { doc, query, probe }
}

// ---- join-shaped generation ----------------------------------------------

/// Tag families of the join document; keys collide across families so
/// equi-edges produce real matches (and real misses) instead of joining
/// nothing.
const JOIN_TAGS: &[&str] = &["a", "b", "c"];

fn one_step_path(sep: &'static str, test: &str) -> QPath {
    QPath { steps: vec![QStep { sep, test: test.to_string(), pred: None }] }
}

/// A key endpoint for one join side: mostly `$v/@k` (the canonical
/// equi-edge shape), sometimes the keyed child element or the bare
/// variable (string-value keys).
fn join_key(rng: &mut Prng, v: u32) -> QExpr {
    match rng.gen_range(0..10u32) {
        0..=5 => QExpr::VarPath(v, one_step_path("/", "@k")),
        6 | 7 => QExpr::VarPath(v, one_step_path("/", "d")),
        _ => QExpr::Var(v),
    }
}

/// Generate a *join-shaped* case for `seed`: two or three `for` clauses
/// over doc-rooted paths against a flat keyed forest, with a `where` that
/// always carries at least one cross-binding comparison. Mostly `=`
/// equi-edges over independent bindings — the exact shape the
/// join-isolation rewrite extracts and the hash join executes — but with
/// occasional non-equi operators, dependent bindings, and residual
/// conjuncts so the rewrite's must-not-fire boundaries sit inside the
/// differential oracle too. Deterministic like [`gen_case`], but drawn
/// from a decorrelated stream: the same seed yields unrelated plain and
/// join cases.
pub fn gen_join_case(seed: u64) -> GenCase {
    let mut rng = Prng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

    // Document: a flat forest of keyed elements. Keys draw from a domain
    // of four values, so every join has collisions, duplicates, and misses.
    let mut root = GenNode::leaf("r");
    let n = 4 + rng.gen_range(0..10usize);
    for _ in 0..n {
        let mut node = GenNode::leaf(rng.pick(JOIN_TAGS));
        node.attrs.push(("k", rng.gen_range(0i64..4)));
        if rng.gen_bool(0.5) {
            node.text = Some(Payload::Int(rng.gen_range(0i64..4)));
        }
        if rng.gen_bool(0.4) {
            let mut child = GenNode::leaf("d");
            child.text = Some(Payload::Int(rng.gen_range(0i64..4)));
            node.children.push(child);
        }
        root.children.push(node);
    }

    // Sides: independent doc-rooted `for` clauses, with the occasional
    // dependent binding (whose run the isolation rule must refuse to cut).
    let nsides = 2 + rng.gen_range(0..2usize) as u32;
    let mut binds = Vec::with_capacity(nsides as usize);
    for v in 0..nsides {
        let tag = rng.pick(JOIN_TAGS);
        let dependent = v > 0 && rng.gen_bool(0.15);
        let src = if dependent {
            QExpr::VarPath(v - 1, one_step_path("/", "d"))
        } else if rng.gen_bool(0.6) {
            QExpr::DocPath(QPath {
                steps: vec![
                    QStep { sep: "/", test: "r".to_string(), pred: None },
                    QStep { sep: "/", test: tag.to_string(), pred: None },
                ],
            })
        } else {
            QExpr::DocPath(one_step_path("//", tag))
        };
        binds.push(QBind::For(v, src));
    }

    // Edges: one per side past the first, each back to an earlier side.
    // `=` dominates; non-equi operators keep nested-loop-only shapes in
    // the corpus.
    let mut wher: Option<QExpr> = None;
    for i in 1..nsides {
        let j = rng.gen_range(0..i);
        let op = if rng.gen_bool(0.8) { "=" } else { rng.pick(&["!=", "<", ">="]) };
        let edge = QExpr::Cmp(op, Box::new(join_key(&mut rng, j)), Box::new(join_key(&mut rng, i)));
        wher = Some(match wher {
            None => edge,
            Some(w) => QExpr::Logic("and", Box::new(w), Box::new(edge)),
        });
    }
    if rng.gen_bool(0.4) {
        let side = rng.gen_range(0..nsides);
        let residual = QExpr::Cmp(
            rng.pick(CMP_OPS),
            Box::new(QExpr::VarPath(side, one_step_path("/", "@k"))),
            Box::new(QExpr::Int(rng.gen_range(0i64..4))),
        );
        wher = Some(QExpr::Logic("and", Box::new(wher.take().unwrap()), Box::new(residual)));
    }

    let order = if rng.gen_bool(0.3) {
        let v = rng.gen_range(0..nsides);
        vec![(QExpr::VarPath(v, one_step_path("/", "@k")), rng.gen_bool(0.3))]
    } else {
        vec![]
    };

    // Returns reuse the general generator so joins feed constructors,
    // aggregates, and nested FLWORs — not just bare variables.
    let scope: Vec<u32> = (0..nsides).collect();
    let mut g = Gen { rng: &mut rng, vocab: TREE_VOCAB, next_var: nsides };
    let ret = g.ret(&scope, 1);

    GenCase { doc: GenDoc::Tree(root), query: QFlwor { binds, wher, order, ret }, probe: None }
}

// ---- function-surface generation -----------------------------------------

/// Single-argument built-ins the function stream aims at sequences. All of
/// them are registry entries with aggregate or cast semantics: `sum` hits
/// the checked-overflow accumulator, `min`/`max` the mixed-type check,
/// `string`/`number` the singleton-cardinality check.
const FN_AGGS: &[&str] = &["count", "sum", "min", "max", "string", "number", "exists", "empty"];

/// Generate a *function-surface* case for `seed`: an outer `for` over a
/// crowd of keyed elements whose text mixes numbers with words, with
/// positional predicates (`position()`/`last()`), quantifiers
/// (`some`/`every … satisfies`) and aggregates over nested FLWORs — the
/// exact shapes the function registry, the streaming fold operators and
/// the focus threading execute. Numeric-vs-word payloads steer cases into
/// the typed error paths (mixed-type `min`/`max`, multi-item `string`/
/// `number`), which must agree across the matrix *as a class*.
/// Deterministic like [`gen_case`], drawn from its own decorrelated
/// stream: the same seed yields unrelated plain, join and function cases.
pub fn gen_fn_case(seed: u64) -> GenCase {
    let mut rng = Prng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);

    // Document: a flat forest over two tags. Mostly numeric text (so sums
    // and minima are non-trivial), with occasional word payloads and `c`
    // children for quantifiers to range over.
    let mut root = GenNode::leaf("r");
    let n = 3 + rng.gen_range(0..10usize);
    for _ in 0..n {
        let mut node = GenNode::leaf(rng.pick(&["a", "b"]));
        if rng.gen_bool(0.85) {
            node.text = Some(if rng.gen_bool(0.8) {
                Payload::Int(rng.gen_range(-4i64..60))
            } else {
                Payload::Word(rng.pick(WORDS))
            });
        }
        if rng.gen_bool(0.3) {
            node.attrs.push(("k", rng.gen_range(0i64..5)));
        }
        if rng.gen_bool(0.35) {
            let mut child = GenNode::leaf("c");
            child.text = Some(Payload::Int(rng.gen_range(0i64..9)));
            node.children.push(child);
        }
        root.children.push(node);
    }

    // One outer `for` over the crowd, so position()/last() are in scope.
    let tag = rng.pick(&["a", "b"]);
    let src = if rng.gen_bool(0.6) {
        QExpr::DocPath(QPath {
            steps: vec![
                QStep { sep: "/", test: "r".to_string(), pred: None },
                QStep { sep: "/", test: tag.to_string(), pred: None },
            ],
        })
    } else {
        QExpr::DocPath(one_step_path("//", tag))
    };
    let binds = vec![QBind::For(0, src)];

    // A quantifier over the binding's children (or a literal window).
    let quantifier = |rng: &mut Prng, v: u32| {
        let range = if rng.gen_bool(0.7) {
            QExpr::VarPath(0, one_step_path("/", "c"))
        } else {
            QExpr::Seq((0..2).map(|_| QExpr::Int(rng.gen_range(0i64..9))).collect())
        };
        let cond = QExpr::Cmp(
            rng.pick(CMP_OPS),
            Box::new(QExpr::Var(v)),
            Box::new(QExpr::Int(rng.gen_range(0i64..9))),
        );
        QExpr::Quantified(rng.gen_bool(0.5), v, Box::new(range), Box::new(cond))
    };

    // Positional windows dominate the `where`: they only exist inside a
    // `for`, and both evaluation modes must agree on every slice.
    let wher = match rng.gen_range(0..10u32) {
        0..=3 => Some(QExpr::Cmp(
            rng.pick(CMP_OPS),
            Box::new(QExpr::Call("position", vec![])),
            Box::new(QExpr::Int(1 + rng.gen_range(0..6i64))),
        )),
        4 => Some(QExpr::Cmp(
            rng.pick(&["=", "!=", "<"]),
            Box::new(QExpr::Call("position", vec![])),
            Box::new(QExpr::Call("last", vec![])),
        )),
        5 | 6 => Some(quantifier(&mut rng, 1)),
        7 => Some(QExpr::Cmp(
            rng.pick(CMP_OPS),
            Box::new(QExpr::VarPath(0, one_step_path("/", "@k"))),
            Box::new(QExpr::Int(rng.gen_range(0i64..5))),
        )),
        _ => None,
    };

    // `order by` under an aggregate return is what R13 prunes — keep some
    // around so the ablation leg has something to disagree about.
    let order = if rng.gen_bool(0.3) {
        vec![(QExpr::VarPath(0, one_step_path("/", "text()")), rng.gen_bool(0.4))]
    } else {
        vec![]
    };

    let agg = rng.pick(FN_AGGS);
    let ret = match rng.gen_range(0..10u32) {
        // Aggregate over a nested FLWOR: the streaming-fold shape.
        0..=2 => {
            let inner_tag = rng.pick(&["a", "b"]);
            let inner_ret = if rng.gen_bool(0.6) {
                QExpr::VarPath(1, one_step_path("/", "text()"))
            } else {
                QExpr::Arith(
                    "+",
                    Box::new(QExpr::Var(1)),
                    Box::new(QExpr::Int(rng.gen_range(0i64..4))),
                )
            };
            QExpr::Call(
                agg,
                vec![QExpr::Flwor(Box::new(QFlwor {
                    binds: vec![QBind::For(1, QExpr::DocPath(one_step_path("//", inner_tag)))],
                    wher: None,
                    order: vec![],
                    ret: inner_ret,
                }))],
            )
        }
        // Aggregate straight over the binding (text, attribute, or child).
        3..=5 => {
            let arg = match rng.gen_range(0..3u32) {
                0 => QExpr::VarPath(0, one_step_path("/", "text()")),
                1 => QExpr::VarPath(0, one_step_path("/", "@k")),
                _ => QExpr::Var(0),
            };
            QExpr::Call(agg, vec![arg])
        }
        // position()/last() in the output.
        6 | 7 => QExpr::Elem(QElem {
            name: "out",
            attrs: vec![("p", QExpr::Call("position", vec![]))],
            children: vec![if rng.gen_bool(0.5) {
                QExpr::Call("last", vec![])
            } else {
                QExpr::Call(agg, vec![QExpr::VarPath(0, one_step_path("/", "c"))])
            }],
        }),
        // Quantifier as the returned value.
        _ => quantifier(&mut rng, 2),
    };

    GenCase { doc: GenDoc::Tree(root), query: QFlwor { binds, wher, order, ret }, probe: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        for seed in 0..50 {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.doc_xml(), b.doc_xml());
            assert_eq!(a.query_text(), b.query_text());
        }
    }

    #[test]
    fn documents_parse() {
        for seed in 0..200 {
            let c = gen_case(seed);
            let xml = c.doc_xml();
            xqp_xml::parse_document(&xml).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{xml}"));
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_different() {
        for seed in 0..100 {
            let c = gen_case(seed);
            for cand in c.shrink_candidates() {
                assert_ne!(cand, c, "seed {seed} produced an identical shrink candidate");
            }
        }
    }

    #[test]
    fn shrinking_terminates() {
        // Following first-candidate chains must hit a fixpoint: every
        // shrink strictly reduces the (doc size, query text length) measure.
        for seed in 0..40 {
            let mut cur = gen_case(seed);
            for _ in 0..400 {
                let Some(next) = cur.shrink_candidates().into_iter().next() else {
                    break;
                };
                cur = next;
            }
            // Reaching here without an infinite loop is the assertion;
            // check the final case still renders.
            let _ = (cur.doc_xml(), cur.query_text());
        }
    }

    #[test]
    fn probe_render_splices_lead_over_first_separator() {
        let step = |sep, test: &str| QStep { sep, test: test.to_string(), pred: None };
        let path = QPath { steps: vec![step("//", "a"), step("/", "b")] };
        for (lead, want) in
            [("/", "/a/b"), ("//", "//a/b"), ("", "a/b"), ("descendant::", "descendant::a/b")]
        {
            assert_eq!(QProbe { lead, path: path.clone() }.render(), want);
        }
    }

    #[test]
    fn every_case_carries_a_probe() {
        for seed in 0..100 {
            let c = gen_case(seed);
            let probe = c.probe.as_ref().unwrap_or_else(|| panic!("seed {seed}: no probe"));
            assert!(!probe.render().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn join_cases_are_deterministic_and_join_shaped() {
        for seed in 0..100 {
            let a = gen_join_case(seed);
            let b = gen_join_case(seed);
            assert_eq!(a, b, "seed {seed}");
            // Always at least two bindings and a cross-binding where.
            assert!(a.query.binds.len() >= 2, "seed {seed}");
            let q = a.query_text();
            assert!(q.contains("where"), "seed {seed}: {q}");
            assert!(q.contains("$v0") && q.contains("$v1"), "seed {seed}: {q}");
            xqp_xml::parse_document(&a.doc_xml()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn join_cases_mostly_carry_equi_edges_and_shrink() {
        let mut equi = 0;
        for seed in 0..100 {
            let c = gen_join_case(seed);
            if c.query_text().contains(" = ") {
                equi += 1;
            }
            for cand in c.shrink_candidates() {
                assert_ne!(cand, c, "seed {seed} produced an identical shrink candidate");
            }
        }
        assert!(equi >= 60, "only {equi}/100 join cases had an equi-edge");
    }

    #[test]
    fn fn_cases_are_deterministic_and_function_shaped() {
        let (mut positional, mut quantified, mut aggregated) = (0, 0, 0);
        for seed in 0..200 {
            let a = gen_fn_case(seed);
            assert_eq!(a, gen_fn_case(seed), "seed {seed}");
            xqp_xml::parse_document(&a.doc_xml()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let q = a.query_text();
            if q.contains("position()") || q.contains("last()") {
                positional += 1;
            }
            if q.contains("satisfies") {
                quantified += 1;
            }
            if FN_AGGS.iter().any(|f| q.contains(&format!("{f}("))) {
                aggregated += 1;
            }
            for cand in a.shrink_candidates() {
                assert_ne!(cand, a, "seed {seed} produced an identical shrink candidate");
            }
        }
        assert!(positional >= 60, "only {positional}/200 cases used position()/last()");
        assert!(quantified >= 20, "only {quantified}/200 cases used a quantifier");
        assert!(aggregated >= 100, "only {aggregated}/200 cases called an aggregate");
    }

    #[test]
    fn quantified_renders_parseably() {
        let q = QExpr::Quantified(
            true,
            1,
            Box::new(QExpr::VarPath(0, one_step_path("/", "c"))),
            Box::new(QExpr::Cmp("<", Box::new(QExpr::Var(1)), Box::new(QExpr::Int(5)))),
        );
        let mut out = String::new();
        q.render(&mut out);
        assert_eq!(out, "every $v1 in $v0/c satisfies ($v1 < 5)");
        // In operand position the whole quantifier is parenthesized.
        let mut op = String::new();
        q.render_operand(&mut op);
        assert_eq!(op, "(every $v1 in $v0/c satisfies ($v1 < 5))");
    }

    #[test]
    fn variable_budget_is_respected() {
        for seed in 0..300 {
            let c = gen_case(seed);
            assert!(!c.query_text().contains("$v10"), "seed {seed}");
        }
    }
}
