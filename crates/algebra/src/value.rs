//! Value sorts: items, flat sequences and nested lists.
//!
//! The W3C data model admits only *flat* sequences of items. §3.2 argues this
//! is insufficient: the list comprehension of Fig. 1 produces a list of
//! 2-tuples, and a tree-pattern-matching operator that evaluates such a
//! comprehension in a single scan needs to return a **nested list**. Hence
//! the sort [`Nested`] alongside the flat [`Sequence`].
//!
//! Node handles are generic (`N`): the executor instantiates them with
//! `SNodeId` for stored documents and with `(doc-handle, NodeId)` pairs for
//! constructed trees.

use xqp_xml::Atomic;

/// One item: a node reference or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item<N> {
    /// A reference to a tree node.
    Node(N),
    /// An atomic value.
    Atom(Atomic),
}

impl<N> Item<N> {
    /// The node handle, if this is a node.
    pub fn as_node(&self) -> Option<&N> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atom(_) => None,
        }
    }

    /// The atomic, if this is an atom.
    pub fn as_atom(&self) -> Option<&Atomic> {
        match self {
            Item::Atom(a) => Some(a),
            Item::Node(_) => None,
        }
    }
}

/// A flat sequence — the `List` sort. Every XQuery value is one of these;
/// single items are singleton sequences.
pub type Sequence<N> = Vec<Item<N>>;

/// The `NestedList` sort: arbitrary-depth nesting over items.
#[derive(Debug, Clone, PartialEq)]
pub enum Nested<N> {
    /// A leaf item.
    Leaf(Item<N>),
    /// A nested list.
    List(Vec<Nested<N>>),
}

impl<N: Clone> Nested<N> {
    /// The empty nested list.
    pub fn empty() -> Self {
        Nested::List(Vec::new())
    }

    /// Wrap a flat sequence one level deep.
    pub fn from_sequence(seq: Sequence<N>) -> Self {
        Nested::List(seq.into_iter().map(Nested::Leaf).collect())
    }

    /// Flatten to a sequence in left-to-right order — the coercion back to
    /// the W3C data model at the top of a plan.
    pub fn flatten(&self) -> Sequence<N> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut Sequence<N>) {
        match self {
            Nested::Leaf(item) => out.push(item.clone()),
            Nested::List(items) => {
                for i in items {
                    i.flatten_into(out);
                }
            }
        }
    }

    /// Number of leaf items.
    pub fn leaf_count(&self) -> usize {
        match self {
            Nested::Leaf(_) => 1,
            Nested::List(items) => items.iter().map(Nested::leaf_count).sum(),
        }
    }

    /// Maximum nesting depth (a leaf has depth 0, `[]` has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Nested::Leaf(_) => 0,
            Nested::List(items) => 1 + items.iter().map(Nested::depth).max().unwrap_or(0),
        }
    }

    /// The children if this is a list, or a singleton slice view semantics
    /// for a leaf (leaves have no children).
    pub fn as_list(&self) -> Option<&[Nested<N>]> {
        match self {
            Nested::List(items) => Some(items),
            Nested::Leaf(_) => None,
        }
    }
}

/// Effective boolean value of a sequence (`fn:boolean`): false for empty,
/// true when the first item is a node, otherwise the single atomic's EBV.
pub fn effective_boolean<N>(seq: &Sequence<N>) -> bool {
    match seq.first() {
        None => false,
        Some(Item::Node(_)) => true,
        Some(Item::Atom(a)) => {
            if seq.len() == 1 {
                a.effective_boolean()
            } else {
                // Mixed/multi-atom sequences have no EBV per spec; the
                // practical convention (and ours) is "non-empty ⇒ true".
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type It = Item<u32>;

    fn atom(i: i64) -> It {
        Item::Atom(Atomic::Integer(i))
    }

    #[test]
    fn item_accessors() {
        let n: Item<u32> = Item::Node(7);
        assert_eq!(n.as_node(), Some(&7));
        assert_eq!(n.as_atom(), None);
        let a = atom(1);
        assert!(a.as_atom().is_some());
        assert!(a.as_node().is_none());
    }

    #[test]
    fn nested_flatten_preserves_order() {
        // ((1,2),(3),(),4)
        let n = Nested::List(vec![
            Nested::List(vec![Nested::Leaf(atom(1)), Nested::Leaf(atom(2))]),
            Nested::List(vec![Nested::Leaf(atom(3))]),
            Nested::List(vec![]),
            Nested::Leaf(atom(4)),
        ]);
        let flat = n.flatten();
        assert_eq!(flat, vec![atom(1), atom(2), atom(3), atom(4)]);
        assert_eq!(n.leaf_count(), 4);
    }

    #[test]
    fn nested_depth() {
        assert_eq!(Nested::<u32>::Leaf(atom(1)).depth(), 0);
        assert_eq!(Nested::<u32>::empty().depth(), 1);
        let two = Nested::List(vec![Nested::List(vec![Nested::Leaf(atom(1))])]);
        assert_eq!(two.depth(), 2);
    }

    #[test]
    fn from_sequence_roundtrip() {
        let seq = vec![atom(1), Item::Node(9), atom(2)];
        let n = Nested::from_sequence(seq.clone());
        assert_eq!(n.depth(), 1);
        assert_eq!(n.flatten(), seq);
        assert_eq!(n.as_list().unwrap().len(), 3);
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!effective_boolean::<u32>(&vec![]));
        assert!(effective_boolean(&vec![Item::<u32>::Node(0)]));
        assert!(!effective_boolean::<u32>(&vec![Item::Atom(Atomic::Integer(0))]));
        assert!(effective_boolean::<u32>(&vec![Item::Atom(Atomic::Str("x".into()))]));
        assert!(effective_boolean::<u32>(&vec![atom(0), atom(0)])); // multi ⇒ true
    }
}
