//! Rewrite rules — the logical optimization the paper plans in §6.
//!
//! | rule | name | what it does |
//! |------|------|--------------|
//! | R1 | navigation→TPM fusion | a cascade of navigation steps (πs/σs) becomes one τ over a pattern graph |
//! | R2 | value-predicate pushdown | comparison predicates become vertex constraints inside the pattern graph (σv fused into τ) |
//! | R5 | FLWOR→TPM | a run of for/let bindings over connected paths becomes a single [`LogicalPlan::TpmBind`] — the Fig. 1 list-comprehension evaluated by one tree-pattern scan (generalized tree patterns, cf. [9]) |
//! | R6 | output pruning | TPM output vertices whose variable is never referenced downstream stop being materialized |
//! | R7 | dead-binding elimination | `let` bindings never referenced downstream are removed |
//! | R8 | constant folding | literal-only subexpressions are evaluated at plan time (a `where` folded to false empties the whole FLWOR) |
//! | R9 | where-pushdown | conjuncts of a `where` clause that compare a path from a fused `for` variable against a literal become constraints inside the TPM pattern |
//! | R10 | predicate pushdown | total `where` conjuncts hoist past earlier for/let bindings they don't depend on, filtering before expansion |
//! | R11 | projection pushdown | total `let` bindings sink below `where` clauses that don't use them, so filtered-out rows never compute the binding |
//! | R12 | join-graph isolation | ⋈v equi-joins hidden in nested for/where become an explicit [`LogicalPlan::JoinGraph`] the cost model can order and the executor hash-joins (Grust et al., "XQuery Join Graph Isolation") |
//!
//! R3 (NoK partitioning) and R4 (structural-join ordering) are *physical*
//! choices made by the executor's planner; [`RuleSet`] carries their flags so
//! one switch block drives the whole ablation experiment (E11).
//!
//! The passes here are driven to a fixpoint by the composable
//! [`crate::rules`] framework — each pass is wrapped in a named
//! [`crate::rules::LogicalOptimizerRule`] that is individually toggleable
//! and unit-testable.

use crate::expr::Expr;
use crate::plan::{JoinEdge, JoinSideDef, LogicalPlan, OrderKey, PathOp, TpmVar};
use crate::value::effective_boolean;
use std::collections::HashSet;
use xqp_xml::Atomic;
use xqp_xpath::{CmpOp, PathExpr, PatternGraph, PredOperand, Predicate};

/// Which rewrite rules are enabled. `Default` enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// R1: fuse navigation cascades into τ.
    pub fuse_tpm: bool,
    /// R2: push value predicates into pattern-graph constraints.
    pub pushdown_values: bool,
    /// R3: partition τ into NoK subpatterns joined structurally (physical).
    pub nok_partition: bool,
    /// R4: order structural joins by estimated cardinality (physical).
    pub join_order: bool,
    /// R5: fuse FLWOR binding runs into one TPM scan.
    pub flwor_to_tpm: bool,
    /// R6: stop materializing unused TPM outputs.
    pub prune_outputs: bool,
    /// R7: eliminate dead `let` bindings.
    pub dead_let: bool,
    /// R8: fold constants.
    pub const_fold: bool,
    /// R9: push where-clause conjuncts into fused TPM patterns.
    pub where_pushdown: bool,
    /// R10: hoist total where-conjuncts past independent bindings.
    pub predicate_pushdown: bool,
    /// R11: sink total `let` bindings below independent `where` clauses.
    pub projection_pushdown: bool,
    /// R12: isolate ⋈v equi-joins into an explicit join-graph node.
    pub join_isolation: bool,
    /// R13: drop `order by` under order-insensitive aggregates
    /// (`count`/`exists`/`empty` over a sole FLWOR argument).
    pub agg_orderby_prune: bool,
}

impl RuleSet {
    /// Every rule on.
    pub fn all() -> Self {
        RuleSet {
            fuse_tpm: true,
            pushdown_values: true,
            nok_partition: true,
            join_order: true,
            flwor_to_tpm: true,
            prune_outputs: true,
            dead_let: true,
            const_fold: true,
            where_pushdown: true,
            predicate_pushdown: true,
            projection_pushdown: true,
            join_isolation: true,
            agg_orderby_prune: true,
        }
    }

    /// Every rule off — the naive baseline.
    pub fn none() -> Self {
        RuleSet {
            fuse_tpm: false,
            pushdown_values: false,
            nok_partition: false,
            join_order: false,
            flwor_to_tpm: false,
            prune_outputs: false,
            dead_let: false,
            const_fold: false,
            where_pushdown: false,
            predicate_pushdown: false,
            projection_pushdown: false,
            join_isolation: false,
            agg_orderby_prune: false,
        }
    }

    /// All rules except one (ablation helper); `rule` is the R-number (1–13).
    pub fn all_except(rule: u8) -> Self {
        let mut r = RuleSet::all();
        match rule {
            1 => r.fuse_tpm = false,
            2 => r.pushdown_values = false,
            3 => r.nok_partition = false,
            4 => r.join_order = false,
            5 => r.flwor_to_tpm = false,
            6 => r.prune_outputs = false,
            7 => r.dead_let = false,
            8 => r.const_fold = false,
            9 => r.where_pushdown = false,
            10 => r.predicate_pushdown = false,
            11 => r.projection_pushdown = false,
            12 => r.join_isolation = false,
            13 => r.agg_orderby_prune = false,
            _ => {}
        }
        r
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::all()
    }
}

/// One attempted optimizer pass: which named rule ran, whether it changed
/// the plan, and a line diff of the change (for `explain`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTrace {
    /// Rule name, e.g. `"predicate-pushdown"`.
    pub rule: &'static str,
    /// Did this pass change the plan?
    pub fired: bool,
    /// Plan diff when fired: `-`/`+` lines for rewritten clauses, `·` lines
    /// listing the new clause order for pure moves.
    pub diff: Vec<String>,
}

/// Which rules fired, in application order (duplicates = multiple firings).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Rule tags such as `"R1"`, `"R5"`.
    pub applied: Vec<&'static str>,
    /// Per-pass traces from the top-level rule pipeline (one entry per
    /// enabled rule per fixpoint sweep; nested-FLWOR sub-pipelines only
    /// contribute tags, not traces).
    pub passes: Vec<RuleTrace>,
}

impl RewriteReport {
    /// How many times `rule` fired.
    pub fn count(&self, rule: &str) -> usize {
        self.applied.iter().filter(|r| **r == rule).count()
    }
}

/// Optimize a FLWOR plan under the given rules (nested FLWOR expressions
/// are optimized recursively).
pub fn optimize(plan: LogicalPlan, rules: &RuleSet) -> (LogicalPlan, RewriteReport) {
    let mut report = RewriteReport::default();
    let plan = crate::rules::run_pipeline(plan, rules, &mut report, true);
    (plan, report)
}

/// Optimize a whole expression (queries whose body is not a FLWOR). The
/// expression is wrapped in a trivial `return` clause, optimized, and
/// unwrapped.
pub fn optimize_expr(expr: Expr, rules: &RuleSet) -> (Expr, RewriteReport) {
    // A FLWOR body runs the pipeline directly — and *traced*. Wrapping it
    // in a trivial return would route it through the untraced nested-FLWOR
    // recursion and leave `report.passes` empty for every real query.
    if let Expr::Flwor(plan) = expr {
        let (plan, report) = optimize(*plan, rules);
        return (Expr::Flwor(Box::new(plan)), report);
    }
    let plan = LogicalPlan::ReturnClause { input: Box::new(LogicalPlan::EnvRoot), expr };
    let (plan, report) = optimize(plan, rules);
    match plan {
        LogicalPlan::ReturnClause { expr, .. } => (expr, report),
        other => (Expr::Flwor(Box::new(other)), report),
    }
}

/// Optimize a nested-FLWOR plan with the same pipeline, but without
/// recording per-pass traces (the top-level trace stays readable).
fn optimize_plan(plan: LogicalPlan, rules: &RuleSet, report: &mut RewriteReport) -> LogicalPlan {
    crate::rules::run_pipeline(plan, rules, report, false)
}

/// R8 as one pass: fold constants in every expression, then short-circuit
/// a constant-false `where`.
pub(crate) fn const_fold_pass(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    let plan = plan.map_exprs(&mut |e| fold_expr(e, report));
    short_circuit_false_where(plan, report)
}

/// R7 as one pass (R6 gated off so firings attribute cleanly).
pub(crate) fn prune_dead_pass(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    let rules = RuleSet { prune_outputs: false, ..RuleSet::all() };
    prune_pass(plan, &HashSet::new(), &rules, report)
}

/// R6 as one pass (R7 gated off).
pub(crate) fn prune_outputs_pass(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    let rules = RuleSet { dead_let: false, ..RuleSet::all() };
    prune_pass(plan, &HashSet::new(), &rules, report)
}

/// Optimize a standalone path expression into a [`PathOp`] tree (R1/R2 for
/// pure path queries; the executor applies R3/R4 physically).
pub fn optimize_path(path: &PathExpr, rules: &RuleSet) -> (PathOp, RewriteReport) {
    let mut report = RewriteReport::default();
    let op = compile_path(path, rules, &mut report);
    (op, report)
}

// ---- R8: constant folding ----------------------------------------------------

/// Fold constants bottom-up in one expression tree.
fn fold_expr(e: Expr, report: &mut RewriteReport) -> Expr {
    let e = e.map_children(&mut |c| fold_expr(c, report));
    match e {
        Expr::Arith { op, lhs, rhs } => {
            if let (Expr::Literal(a), Expr::Literal(b)) = (lhs.as_ref(), rhs.as_ref()) {
                if let Some(v) = op.apply(a, b) {
                    report.applied.push("R8");
                    return Expr::Literal(v);
                }
            }
            Expr::Arith { op, lhs, rhs }
        }
        Expr::Cmp { op, lhs, rhs } => {
            if let (Expr::Literal(a), Expr::Literal(b)) = (lhs.as_ref(), rhs.as_ref()) {
                if let Some(ord) = a.compare(b) {
                    report.applied.push("R8");
                    return Expr::Literal(Atomic::Boolean(op.eval(ord)));
                }
            }
            Expr::Cmp { op, lhs, rhs }
        }
        Expr::And(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Literal(l), _) => {
                report.applied.push("R8");
                if ebv_lit(l) {
                    *b
                } else {
                    Expr::Literal(Atomic::Boolean(false))
                }
            }
            (_, Expr::Literal(l)) if ebv_lit(l) => {
                report.applied.push("R8");
                *a
            }
            _ => Expr::And(a, b),
        },
        Expr::Or(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Literal(l), _) => {
                report.applied.push("R8");
                if ebv_lit(l) {
                    Expr::Literal(Atomic::Boolean(true))
                } else {
                    *b
                }
            }
            (_, Expr::Literal(l)) if !ebv_lit(l) => {
                report.applied.push("R8");
                *a
            }
            _ => Expr::Or(a, b),
        },
        Expr::Not(a) => {
            if let Expr::Literal(l) = a.as_ref() {
                report.applied.push("R8");
                Expr::Literal(Atomic::Boolean(!ebv_lit(l)))
            } else {
                Expr::Not(a)
            }
        }
        Expr::If { cond, then_branch, else_branch } => {
            if let Expr::Literal(l) = cond.as_ref() {
                report.applied.push("R8");
                if ebv_lit(l) {
                    *then_branch
                } else {
                    *else_branch
                }
            } else {
                Expr::If { cond, then_branch, else_branch }
            }
        }
        other => other,
    }
}

fn ebv_lit(a: &Atomic) -> bool {
    effective_boolean::<u32>(&vec![crate::value::Item::Atom(a.clone())])
}

/// Part of R8: a `where` clause folded to a false constant empties the
/// whole FLWOR — no binding survives, so nothing below or above needs to
/// run.
fn short_circuit_false_where(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    fn has_false_where(plan: &LogicalPlan) -> bool {
        match plan {
            LogicalPlan::Where { input, cond } => {
                matches!(cond, Expr::Literal(l) if !ebv_lit(l)) || has_false_where(input)
            }
            LogicalPlan::EnvRoot => false,
            other => other.input().is_some_and(has_false_where),
        }
    }
    if has_false_where(&plan) {
        report.applied.push("R8");
        return LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::EnvRoot),
            expr: Expr::SequenceExpr(vec![]),
        };
    }
    plan
}

// ---- R7 + R6: dead bindings and unused outputs --------------------------------

/// Top-down pass tracking which variables the operators *above* each clause
/// still need. Removes dead `let` bindings (R7) and unused TPM output
/// variables (R6).
fn prune_pass(
    plan: LogicalPlan,
    needed_above: &HashSet<String>,
    rules: &RuleSet,
    report: &mut RewriteReport,
) -> LogicalPlan {
    match plan {
        LogicalPlan::EnvRoot => LogicalPlan::EnvRoot,
        LogicalPlan::ReturnClause { input, expr } => {
            let mut needed = needed_above.clone();
            needed.extend(expr.free_vars());
            LogicalPlan::ReturnClause {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                expr,
            }
        }
        LogicalPlan::Where { input, cond } => {
            let mut needed = needed_above.clone();
            needed.extend(cond.free_vars());
            LogicalPlan::Where { input: Box::new(prune_pass(*input, &needed, rules, report)), cond }
        }
        LogicalPlan::OrderBy { input, keys } => {
            let mut needed = needed_above.clone();
            for k in &keys {
                needed.extend(k.expr.free_vars());
            }
            LogicalPlan::OrderBy {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                keys,
            }
        }
        LogicalPlan::ForBind { input, var, source } => {
            let mut needed = needed_above.clone();
            needed.remove(&var);
            needed.extend(source.free_vars());
            LogicalPlan::ForBind {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                var,
                source,
            }
        }
        LogicalPlan::LetBind { input, var, source } => {
            if rules.dead_let && !needed_above.contains(&var) {
                report.applied.push("R7");
                return prune_pass(*input, needed_above, rules, report);
            }
            let mut needed = needed_above.clone();
            needed.remove(&var);
            needed.extend(source.free_vars());
            LogicalPlan::LetBind {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                var,
                source,
            }
        }
        LogicalPlan::JoinGraph { input, sides, edges } => {
            // Sides are for-style bindings: they shape the cross product, so
            // none can be pruned even when unreferenced.
            let mut needed = needed_above.clone();
            for s in &sides {
                needed.remove(&s.var);
            }
            for s in &sides {
                needed.extend(s.source.free_vars());
            }
            LogicalPlan::JoinGraph {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                sides,
                edges,
            }
        }
        LogicalPlan::TpmBind { input, pattern, vars } => {
            let mut pattern = pattern;
            let vars: Vec<TpmVar> = vars
                .into_iter()
                .filter(|v| {
                    // Unused let-style outputs stop being materialized; the
                    // vertex stays in the pattern as an (optional) branch.
                    let keep =
                        v.one_to_many || !rules.prune_outputs || needed_above.contains(&v.var);
                    if !keep {
                        report.applied.push("R6");
                        pattern.vertices[v.vertex].output = false;
                    }
                    keep
                })
                .collect();
            let mut needed = needed_above.clone();
            for v in &vars {
                needed.remove(&v.var);
            }
            LogicalPlan::TpmBind {
                input: Box::new(prune_pass(*input, &needed, rules, report)),
                pattern,
                vars,
            }
        }
    }
}

// ---- R5: FLWOR → TPM ----------------------------------------------------------

/// Clause list form of a plan, bottom-up.
enum Clause {
    For(String, Expr),
    Let(String, Expr),
    WhereC(Expr),
    OrderByC(Vec<OrderKey>),
    ReturnC(Expr),
    TpmC(PatternGraph, Vec<TpmVar>),
    JoinGraphC(Vec<JoinSideDef>, Vec<JoinEdge>),
}

fn to_clauses(plan: LogicalPlan, out: &mut Vec<Clause>) {
    match plan {
        LogicalPlan::EnvRoot => {}
        LogicalPlan::ForBind { input, var, source } => {
            to_clauses(*input, out);
            out.push(Clause::For(var, source));
        }
        LogicalPlan::LetBind { input, var, source } => {
            to_clauses(*input, out);
            out.push(Clause::Let(var, source));
        }
        LogicalPlan::Where { input, cond } => {
            to_clauses(*input, out);
            out.push(Clause::WhereC(cond));
        }
        LogicalPlan::OrderBy { input, keys } => {
            to_clauses(*input, out);
            out.push(Clause::OrderByC(keys));
        }
        LogicalPlan::ReturnClause { input, expr } => {
            to_clauses(*input, out);
            out.push(Clause::ReturnC(expr));
        }
        LogicalPlan::TpmBind { input, pattern, vars } => {
            to_clauses(*input, out);
            out.push(Clause::TpmC(pattern, vars));
        }
        LogicalPlan::JoinGraph { input, sides, edges } => {
            to_clauses(*input, out);
            out.push(Clause::JoinGraphC(sides, edges));
        }
    }
}

fn from_clauses(clauses: Vec<Clause>) -> LogicalPlan {
    let mut plan = LogicalPlan::EnvRoot;
    for c in clauses {
        plan = match c {
            Clause::For(var, source) => LogicalPlan::ForBind { input: Box::new(plan), var, source },
            Clause::Let(var, source) => LogicalPlan::LetBind { input: Box::new(plan), var, source },
            Clause::WhereC(cond) => LogicalPlan::Where { input: Box::new(plan), cond },
            Clause::OrderByC(keys) => LogicalPlan::OrderBy { input: Box::new(plan), keys },
            Clause::ReturnC(expr) => LogicalPlan::ReturnClause { input: Box::new(plan), expr },
            Clause::TpmC(pattern, vars) => {
                LogicalPlan::TpmBind { input: Box::new(plan), pattern, vars }
            }
            Clause::JoinGraphC(sides, edges) => {
                LogicalPlan::JoinGraph { input: Box::new(plan), sides, edges }
            }
        };
    }
    plan
}

/// True when every predicate in the path is TPM-compatible under the rules
/// (conjunctive, downward, position-free; value comparisons only if R2 on).
fn tpm_compatible(path: &PathExpr, rules: &RuleSet) -> bool {
    if !path.is_downward() {
        return false;
    }
    fn preds_ok(preds: &[Predicate], rules: &RuleSet) -> bool {
        preds.iter().all(|p| match p {
            Predicate::Exists(sub) => sub.steps.iter().all(|s| preds_ok(&s.predicates, rules)),
            Predicate::Compare { lhs, rhs, .. } => {
                rules.pushdown_values
                    && !matches!((lhs, rhs), (PredOperand::Path(_), PredOperand::Path(_)))
            }
            Predicate::Position(_) | Predicate::Or(_, _) | Predicate::Not(_) => false,
            Predicate::And(a, b) => {
                preds_ok(std::slice::from_ref(a.as_ref()), rules)
                    && preds_ok(std::slice::from_ref(b.as_ref()), rules)
            }
        })
    }
    path.steps.iter().all(|s| preds_ok(&s.predicates, rules))
}

/// Fuse the leading run of for/let clauses over connected downward paths
/// into one `TpmBind` (≥ 2 clauses required to be worth it).
pub(crate) fn flwor_to_tpm(
    plan: LogicalPlan,
    rules: &RuleSet,
    report: &mut RewriteReport,
) -> LogicalPlan {
    // position()/last() are defined over per-`for` enumeration; a TpmBind
    // replaces those layers with match-set expansion, so focus-sensitive
    // plans keep their binding structure.
    if plan.uses_focus() {
        return plan;
    }
    let mut clauses = Vec::new();
    to_clauses(plan, &mut clauses);

    let mut pattern = PatternGraph::empty();
    let mut vars: Vec<TpmVar> = Vec::new();
    let mut fused = 0usize;

    for clause in &clauses {
        let (var, source, one_to_many) = match clause {
            Clause::For(v, s) => (v, s, true),
            Clause::Let(v, s) => (v, s, false),
            _ => break,
        };
        let Expr::Path { base, path } = source else { break };
        if !tpm_compatible(path, rules) {
            break;
        }
        let context = match base.as_ref() {
            Expr::ContextDoc if path.absolute => pattern.root(),
            Expr::Var(u) if !path.absolute => match vars.iter().find(|tv| &tv.var == u) {
                Some(tv) => tv.vertex,
                None => break,
            },
            _ => break,
        };
        let before = pattern.vertices.len();
        let Ok(Some(vertex)) = pattern.graft_path(context, path) else { break };
        if !one_to_many {
            // let-grafted vertices are optional: an empty match must not
            // kill the binding (generalized-tree-pattern semantics).
            for v in before..pattern.vertices.len() {
                pattern.vertices[v].optional = true;
            }
        }
        pattern.mark_output(vertex);
        vars.push(TpmVar { var: var.clone(), vertex, one_to_many });
        fused += 1;
    }

    if fused < 2 {
        return from_clauses(clauses);
    }
    report.applied.push("R5");
    let mut rest = clauses.split_off(fused);

    // R9: a `where` clause immediately after the fused run can donate
    // conjuncts of the form `$v/path ⊙ literal` (or bare existence paths
    // `$v/path`) as pattern constraints, provided $v is a one-to-many
    // (for-bound) variable — its binding is then a single node, so the
    // conjunct is exactly an existential branch of that node's pattern.
    if rules.where_pushdown {
        if let Some(Clause::WhereC(cond)) = rest.first() {
            let mut kept: Vec<Expr> = Vec::new();
            let mut pushed = 0usize;
            for conjunct in split_conjuncts(cond.clone()) {
                if push_conjunct(&mut pattern, &vars, &conjunct, rules) {
                    pushed += 1;
                } else {
                    kept.push(conjunct);
                }
            }
            if pushed > 0 {
                report.applied.push("R9");
                rest.remove(0);
                if let Some(new_cond) = rebuild_conjunction(kept) {
                    rest.insert(0, Clause::WhereC(new_cond));
                }
            }
        }
    }

    let mut new_clauses = vec![Clause::TpmC(pattern, vars)];
    new_clauses.extend(rest);
    from_clauses(new_clauses)
}

/// Flatten a conjunction into its conjuncts.
fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = split_conjuncts(*a);
            out.extend(split_conjuncts(*b));
            out
        }
        other => vec![other],
    }
}

fn rebuild_conjunction(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut acc = conjuncts.pop()?;
    while let Some(next) = conjuncts.pop() {
        acc = Expr::And(Box::new(next), Box::new(acc));
    }
    Some(acc)
}

/// Try to absorb one where-conjunct into the pattern. Returns true when the
/// conjunct is fully captured by the graft (and may be dropped).
fn push_conjunct(
    pattern: &mut PatternGraph,
    vars: &[TpmVar],
    conjunct: &Expr,
    rules: &RuleSet,
) -> bool {
    use xqp_xpath::CmpOp;
    // Accept `$v/path op literal`, `literal op $v/path`, bare `$v/path`
    // (existence via EBV) and `exists($v/path)`.
    let (var, path, constraint): (&str, &PathExpr, Option<(CmpOp, Atomic)>) = match conjunct {
        Expr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Path { base, path }, Expr::Literal(l)) => match base.as_ref() {
                Expr::Var(v) if !path.absolute => (v, path, Some((*op, l.clone()))),
                _ => return false,
            },
            (Expr::Literal(l), Expr::Path { base, path }) => match base.as_ref() {
                Expr::Var(v) if !path.absolute => (v, path, Some((op.flipped(), l.clone()))),
                _ => return false,
            },
            _ => return false,
        },
        Expr::Path { base, path } => match base.as_ref() {
            Expr::Var(v) if !path.absolute => (v, path, None),
            _ => return false,
        },
        Expr::Call { name, args } if name == "exists" && args.len() == 1 => match &args[0] {
            Expr::Path { base, path } => match base.as_ref() {
                Expr::Var(v) if !path.absolute => (v, path, None),
                _ => return false,
            },
            _ => return false,
        },
        _ => return false,
    };
    // Only one-to-many variables: a for-binding is a single pattern match,
    // so the conjunct is an existential branch of exactly that vertex.
    let Some(tv) = vars.iter().find(|tv| tv.var == var && tv.one_to_many) else {
        return false;
    };
    if !tpm_compatible(path, rules) {
        return false;
    }
    match pattern.graft_path(tv.vertex, path) {
        Ok(Some(target)) => {
            if let Some((op, literal)) = constraint {
                pattern.vertices[target]
                    .constraints
                    .push(xqp_xpath::ValueConstraint { op, literal });
            }
            true
        }
        // `tpm_compatible` pre-checks every failure mode, so grafting never
        // fails here; the empty path case cannot arise (the parser rejects
        // `$v/`).
        _ => false,
    }
}

// ---- totality analysis (gates R10–R12) -----------------------------------------

/// Built-in functions whose naive evaluation never raises a dynamic error.
/// Arithmetic-performing functions (`sum`, `avg`), anything that can
/// type-error (`string`/`number` on multi-item sequences, `min`/`max` on
/// mixed-type sequences) and the focus functions (`position`/`last` error
/// outside a `for`) are deliberately absent.
const TOTAL_FNS: &[&str] = &[
    "count",
    "empty",
    "exists",
    "boolean",
    "not",
    "concat",
    "contains",
    "starts-with",
    "ends-with",
    "string-length",
    "normalize-space",
    "string-join",
    "substring",
    "distinct-values",
];

/// Conservative totality: `true` means evaluating the expression can never
/// raise a dynamic error (governor trips aside), so a rewrite may evaluate
/// it on more or fewer bindings without changing observable behavior.
/// Arithmetic (division by zero, type errors), constructors and nested
/// FLWORs are conservatively non-total.
pub(crate) fn is_total(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Var(_) | Expr::ContextDoc => true,
        Expr::Path { base, .. } | Expr::CompiledPath { base, .. } => is_total(base),
        Expr::Cmp { lhs, rhs, .. } => is_total(lhs) && is_total(rhs),
        Expr::And(a, b) | Expr::Or(a, b) => is_total(a) && is_total(b),
        Expr::Not(a) => is_total(a),
        Expr::If { cond, then_branch, else_branch } => {
            is_total(cond) && is_total(then_branch) && is_total(else_branch)
        }
        Expr::Call { name, args } => {
            TOTAL_FNS.contains(&name.as_str()) && args.iter().all(is_total)
        }
        Expr::SequenceExpr(items) => items.iter().all(is_total),
        // Quantifiers range a fresh variable over an arbitrary source and
        // evaluate the condition per item — conservatively non-total, like
        // nested FLWORs.
        Expr::Arith { .. } | Expr::Construct(_) | Expr::Flwor(_) | Expr::Quantified { .. } => false,
    }
}

// ---- R10/R11: predicate and projection pushdown --------------------------------

/// May a (total) `conjunct` move from just after `clause` to just before
/// it? Bindings require a total source (skipped evaluations must not hide
/// errors) the conjunct doesn't reference; other `where`s require a total
/// condition (evaluation-order swap). TPM/join/order-by/return clauses are
/// barriers.
fn conjunct_can_cross(clause: &Clause, conjunct: &Expr) -> bool {
    match clause {
        Clause::For(var, source) | Clause::Let(var, source) => {
            is_total(source) && !conjunct.uses_var(var)
        }
        Clause::WhereC(cond) => is_total(cond),
        Clause::OrderByC(_) | Clause::ReturnC(_) | Clause::TpmC(..) | Clause::JoinGraphC(..) => {
            false
        }
    }
}

/// The earliest index `conjunct` may occupy in `out`, or `None` when no
/// binding clause would be crossed (moving across only other `where`s is
/// pointless churn).
fn hoist_target(out: &[Clause], conjunct: &Expr) -> Option<usize> {
    if !is_total(conjunct) {
        return None;
    }
    let mut best = None;
    let mut j = out.len();
    while j > 0 && conjunct_can_cross(&out[j - 1], conjunct) {
        j -= 1;
        if matches!(out[j], Clause::For(..) | Clause::Let(..)) {
            best = Some(j);
        }
    }
    best
}

/// Fuse adjacent `where` clauses left behind by conjunct moves back into
/// one conjunction (left-to-right evaluation order is preserved).
fn merge_adjacent_wheres(clauses: Vec<Clause>) -> Vec<Clause> {
    let mut out: Vec<Clause> = Vec::with_capacity(clauses.len());
    for c in clauses {
        match (out.pop(), c) {
            (Some(Clause::WhereC(a)), Clause::WhereC(b)) => {
                out.push(Clause::WhereC(Expr::And(Box::new(a), Box::new(b))));
            }
            (Some(prev), c) => {
                out.push(prev);
                out.push(c);
            }
            (None, c) => out.push(c),
        }
    }
    out
}

/// R10: hoist each total `where` conjunct to the earliest position in the
/// clause pipeline it may legally occupy, so filters run before the
/// bindings they don't depend on expand the environment.
pub(crate) fn predicate_pushdown_pass(
    plan: LogicalPlan,
    report: &mut RewriteReport,
) -> LogicalPlan {
    let mut clauses = Vec::new();
    to_clauses(plan, &mut clauses);
    let mut out: Vec<Clause> = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let Clause::WhereC(cond) = clause else {
            out.push(clause);
            continue;
        };
        let conjuncts = split_conjuncts(cond.clone());
        if conjuncts.iter().all(|c| hoist_target(&out, c).is_none()) {
            // Nothing moves: keep the clause byte-identical (no
            // re-association churn).
            out.push(Clause::WhereC(cond));
            continue;
        }
        let mut stay: Vec<Expr> = Vec::new();
        for c in conjuncts {
            match hoist_target(&out, &c) {
                Some(pos) => {
                    report.applied.push("R10");
                    out.insert(pos, Clause::WhereC(c));
                }
                None => stay.push(c),
            }
        }
        if let Some(residual) = rebuild_conjunction(stay) {
            out.push(Clause::WhereC(residual));
        }
    }
    from_clauses(merge_adjacent_wheres(out))
}

/// R11: sink a total `let` binding below an adjacent `where` that doesn't
/// use it, so rows the filter drops never compute the binding. Catches the
/// non-total-condition cases R10 must leave alone (the condition runs on
/// exactly the same rows either way; only the total source is skipped).
pub(crate) fn projection_pushdown_pass(
    plan: LogicalPlan,
    report: &mut RewriteReport,
) -> LogicalPlan {
    let mut clauses = Vec::new();
    to_clauses(plan, &mut clauses);
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..clauses.len().saturating_sub(1) {
            let swap = matches!(
                (&clauses[i], &clauses[i + 1]),
                (Clause::Let(var, source), Clause::WhereC(cond))
                    if is_total(source) && !cond.uses_var(var)
            );
            if swap {
                clauses.swap(i, i + 1);
                report.applied.push("R11");
                changed = true;
            }
        }
    }
    from_clauses(clauses)
}

// ---- R12: join-graph isolation -------------------------------------------------

/// One endpoint of an equi-join conjunct: `$v` (key = the binding itself)
/// or `$v/rel-path` with a variable-free relative path.
fn edge_endpoint(e: &Expr) -> Option<(&str, Option<&PathExpr>)> {
    match e {
        Expr::Var(v) => Some((v, None)),
        Expr::Path { base, path } if !path.absolute => {
            let mut vars = Vec::new();
            path.referenced_vars(&mut vars);
            match base.as_ref() {
                Expr::Var(v) if vars.is_empty() => Some((v, Some(path))),
                _ => None,
            }
        }
        // Absolute var-paths re-root at the document — they compare a
        // document-wide value, not a per-binding one, so they are residual
        // filters, never join edges (cf. the PR 4 relative-path rooting
        // bug class).
        _ => None,
    }
}

/// Classify one conjunct as a join edge between two *distinct* run
/// variables, if it has the shape `$a[/p] = $b[/q]`.
fn classify_edge(conjunct: &Expr, side_vars: &[String]) -> Option<JoinEdge> {
    let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = conjunct else {
        return None;
    };
    let (lv, lk) = edge_endpoint(lhs)?;
    let (rv, rk) = edge_endpoint(rhs)?;
    let left = side_vars.iter().position(|v| v == lv)?;
    let right = side_vars.iter().position(|v| v == rv)?;
    if left == right {
        return None;
    }
    Some(JoinEdge { left, right, left_key: lk.cloned(), right_key: rk.cloned() })
}

/// The first `[start, end)` run of ≥ 2 consecutive document-rooted,
/// mutually independent `for` clauses with `clauses[end]` a `where`.
fn find_join_run(clauses: &[Clause]) -> Option<(usize, usize)> {
    let mut start = 0;
    while start < clauses.len() {
        let mut vars: Vec<&str> = Vec::new();
        let mut end = start;
        while let Some(Clause::For(var, source)) = clauses.get(end) {
            let doc_rooted = matches!(
                source,
                Expr::Path { base, .. } if matches!(base.as_ref(), Expr::ContextDoc)
            );
            let independent = doc_rooted
                && !vars.contains(&var.as_str())
                && source.free_vars().iter().all(|f| !vars.contains(&f.as_str()));
            if !independent {
                break;
            }
            vars.push(var);
            end += 1;
        }
        if end - start >= 2 && matches!(clauses.get(end), Some(Clause::WhereC(_))) {
            return Some((start, end));
        }
        start = if end > start { end } else { start + 1 };
    }
    None
}

/// R12: isolate the ⋈v equi-joins hidden in a nested for/where into an
/// explicit [`LogicalPlan::JoinGraph`]. Sides stay in source order (FLWOR
/// tuple order is observable); the executor's hash join exploits the
/// edges, and any non-edge conjuncts survive as a residual `where` — but
/// only if they are all total, since the join evaluates edges first.
pub(crate) fn join_isolation_pass(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    // A join graph replaces its `for` runs with probe expansion, which
    // does not thread the hidden focus bindings — stand down when the plan
    // calls position()/last().
    if plan.uses_focus() {
        return plan;
    }
    let mut clauses = Vec::new();
    to_clauses(plan, &mut clauses);
    let Some((start, end)) = find_join_run(&clauses) else {
        return from_clauses(clauses);
    };
    let Clause::WhereC(cond) = &clauses[end] else { unreachable!("find_join_run") };
    let side_vars: Vec<String> = clauses[start..end]
        .iter()
        .map(|c| match c {
            Clause::For(v, _) => v.clone(),
            _ => unreachable!("find_join_run"),
        })
        .collect();

    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conjunct in split_conjuncts(cond.clone()) {
        match classify_edge(&conjunct, &side_vars) {
            Some(edge) => edges.push(edge),
            None => residual.push(conjunct),
        }
    }
    if edges.is_empty() || !residual.iter().all(is_total) {
        return from_clauses(clauses);
    }
    report.applied.push("R12");
    let sides: Vec<JoinSideDef> = clauses[start..end]
        .iter()
        .map(|c| match c {
            Clause::For(v, s) => JoinSideDef { var: v.clone(), source: s.clone() },
            _ => unreachable!("find_join_run"),
        })
        .collect();
    let mut rebuilt: Vec<Clause> = Vec::with_capacity(clauses.len());
    let tail: Vec<Clause> = clauses.drain(start..).collect();
    rebuilt.extend(clauses);
    rebuilt.push(Clause::JoinGraphC(sides, edges));
    if let Some(rcond) = rebuild_conjunction(residual) {
        rebuilt.push(Clause::WhereC(rcond));
    }
    rebuilt.extend(tail.into_iter().skip(end - start + 1));
    from_clauses(rebuilt)
}

// ---- R13: aggregate order-by pruning --------------------------------------------

/// Aggregates whose value is independent of input order *and* of any
/// per-item arithmetic — `sum`/`avg`/`min`/`max` are excluded because their
/// accumulator behavior (overflow promotion, error trapping order) is
/// observable through error classes.
const ORDER_INSENSITIVE_AGGS: &[&str] = &["count", "exists", "empty"];

/// R13: drop an `order by` whose only consumer is an order-insensitive
/// aggregate — `count(for … order by $k … return e)` sorts total bindings
/// only to count them, wasting the sort's O(n log n) work *and* its
/// pipeline-breaking materialization. The keys must all be total, since a
/// dropped sort must not hide a key-evaluation error.
pub(crate) fn agg_orderby_prune_pass(plan: LogicalPlan, report: &mut RewriteReport) -> LogicalPlan {
    let mut fired = false;
    let plan = plan.map_exprs(&mut |e| prune_agg_orderby(e, &mut fired));
    if fired {
        report.applied.push("R13");
    }
    plan
}

fn prune_agg_orderby(e: Expr, fired: &mut bool) -> Expr {
    let e = e.map_children(&mut |c| prune_agg_orderby(c, fired));
    match e {
        Expr::Call { name, mut args }
            if ORDER_INSENSITIVE_AGGS.contains(&name.as_str()) && args.len() == 1 =>
        {
            if let Expr::Flwor(plan) = &mut args[0] {
                let inner = std::mem::replace(plan.as_mut(), LogicalPlan::EnvRoot);
                let (inner, removed) = strip_total_orderby(inner);
                *plan.as_mut() = inner;
                *fired |= removed;
            }
            Expr::Call { name, args }
        }
        other => other,
    }
}

/// Remove every `OrderBy` layer whose keys are all total from a pipeline.
fn strip_total_orderby(plan: LogicalPlan) -> (LogicalPlan, bool) {
    let mut clauses = Vec::new();
    to_clauses(plan, &mut clauses);
    let before = clauses.len();
    clauses.retain(|c| match c {
        Clause::OrderByC(keys) => !keys.iter().all(|k| is_total(&k.expr)),
        _ => true,
    });
    let removed = clauses.len() != before;
    (from_clauses(clauses), removed)
}

// ---- R1/R2: path compilation ----------------------------------------------------

pub(crate) fn compile_paths_in_plan(
    plan: LogicalPlan,
    rules: &RuleSet,
    report: &mut RewriteReport,
) -> LogicalPlan {
    plan.map_exprs(&mut |e| compile_paths_in_expr(e, rules, report))
}

fn compile_paths_in_expr(e: Expr, rules: &RuleSet, report: &mut RewriteReport) -> Expr {
    // Nested FLWORs get the full plan pipeline (R5/R6/R7 included).
    if let Expr::Flwor(plan) = e {
        return Expr::Flwor(Box::new(optimize_plan(*plan, rules, report)));
    }
    let e = e.map_children(&mut |c| compile_paths_in_expr(c, rules, report));
    match e {
        Expr::Path { base, path } => {
            let plan = compile_path(&path, rules, report);
            Expr::CompiledPath { base, path, plan: Box::new(plan) }
        }
        other => other,
    }
}

/// Is fusing this path into a τ worth it? Single bare child steps are
/// cheaper as a direct scan of the context's children; fusion pays when it
/// removes intermediate results (multiple steps, predicates, descendants).
fn fusion_profitable(path: &PathExpr) -> bool {
    path.steps.len() >= 2
        || path.steps.first().is_some_and(|s| {
            !s.predicates.is_empty()
                || !matches!(s.axis, xqp_xpath::Axis::Child | xqp_xpath::Axis::Attribute)
        })
}

/// Compile one path under the rules: fused τ when eligible, else the naive
/// navigation cascade.
fn compile_path(path: &PathExpr, rules: &RuleSet, report: &mut RewriteReport) -> PathOp {
    if rules.fuse_tpm && fusion_profitable(path) && tpm_compatible(path, rules) {
        let mut g = PatternGraph::empty();
        if let Ok(Some(last)) = g.graft_path(g.root(), path) {
            g.mark_output(last);
            report.applied.push("R1");
            if g.vertices.iter().any(|v| !v.constraints.is_empty()) {
                report.applied.push("R2");
            }
            return PathOp::TpmFrom { input: Box::new(PathOp::Input), pattern: g };
        }
    }
    PathOp::compile_naive(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;
    use xqp_xpath::parse_path;

    fn for_bind(input: LogicalPlan, var: &str, source: Expr) -> LogicalPlan {
        LogicalPlan::ForBind { input: Box::new(input), var: var.into(), source }
    }

    fn let_bind(input: LogicalPlan, var: &str, source: Expr) -> LogicalPlan {
        LogicalPlan::LetBind { input: Box::new(input), var: var.into(), source }
    }

    fn ret(input: LogicalPlan, expr: Expr) -> LogicalPlan {
        LogicalPlan::ReturnClause { input: Box::new(input), expr }
    }

    #[test]
    fn r8_folds_arithmetic_and_comparisons() {
        let plan = ret(
            LogicalPlan::EnvRoot,
            Expr::Arith {
                op: ArithOp::Add,
                lhs: Box::new(Expr::lit(1i64)),
                rhs: Box::new(Expr::Arith {
                    op: ArithOp::Mul,
                    lhs: Box::new(Expr::lit(2i64)),
                    rhs: Box::new(Expr::lit(3i64)),
                }),
            },
        );
        let (opt, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R8"), 2);
        match opt {
            LogicalPlan::ReturnClause { expr, .. } => {
                assert_eq!(expr, Expr::lit(7i64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn r8_short_circuits_booleans() {
        let e =
            Expr::And(Box::new(Expr::Literal(Atomic::Boolean(false))), Box::new(Expr::var("x")));
        let mut rep = RewriteReport::default();
        assert_eq!(fold_expr(e, &mut rep), Expr::Literal(Atomic::Boolean(false)));
        let e = Expr::Or(Box::new(Expr::Literal(Atomic::Boolean(false))), Box::new(Expr::var("x")));
        assert_eq!(fold_expr(e, &mut rep), Expr::var("x"));
        let e = Expr::If {
            cond: Box::new(Expr::lit(1i64)),
            then_branch: Box::new(Expr::var("t")),
            else_branch: Box::new(Expr::var("e")),
        };
        assert_eq!(fold_expr(e, &mut rep), Expr::var("t"));
    }

    #[test]
    fn r7_removes_dead_let() {
        let plan = ret(
            let_bind(
                for_bind(
                    LogicalPlan::EnvRoot,
                    "b",
                    Expr::doc_path(parse_path("/bib/book").unwrap()),
                ),
                "dead",
                Expr::var_path("b", parse_path("title").unwrap()),
            ),
            Expr::var("b"),
        );
        let rules = RuleSet { flwor_to_tpm: false, ..RuleSet::all() };
        let (opt, rep) = optimize(plan, &rules);
        assert_eq!(rep.count("R7"), 1);
        // The let is gone: return(for(env-root)).
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn r7_keeps_live_let_and_transitive_uses() {
        // $t is used by return; $b is used by $t's source.
        let plan = ret(
            let_bind(
                for_bind(
                    LogicalPlan::EnvRoot,
                    "b",
                    Expr::doc_path(parse_path("/bib/book").unwrap()),
                ),
                "t",
                Expr::var_path("b", parse_path("title").unwrap()),
            ),
            Expr::var("t"),
        );
        let rules = RuleSet { flwor_to_tpm: false, ..RuleSet::all() };
        let (opt, rep) = optimize(plan, &rules);
        assert_eq!(rep.count("R7"), 0);
        assert_eq!(opt.len(), 4);
    }

    #[test]
    fn r1_fuses_downward_paths() {
        let (op, rep) =
            optimize_path(&parse_path("/bib/book[author]/title").unwrap(), &RuleSet::all());
        assert_eq!(rep.count("R1"), 1);
        let (steps, tpms, _) = op.op_counts();
        assert_eq!(steps, 0);
        assert_eq!(tpms, 1);
    }

    #[test]
    fn r1_disabled_keeps_naive_chain() {
        let rules = RuleSet { fuse_tpm: false, ..RuleSet::all() };
        let (op, rep) = optimize_path(&parse_path("/bib/book/title").unwrap(), &rules);
        assert_eq!(rep.count("R1"), 0);
        let (steps, tpms, _) = op.op_counts();
        assert_eq!((steps, tpms), (3, 0));
    }

    #[test]
    fn r1_falls_back_on_upward_axis() {
        let (op, rep) = optimize_path(&parse_path("/a/b/../c").unwrap(), &RuleSet::all());
        assert_eq!(rep.count("R1"), 0);
        let (steps, _, _) = op.op_counts();
        assert_eq!(steps, 4);
    }

    #[test]
    fn r2_reported_when_constraints_pushed() {
        let (_, rep) = optimize_path(&parse_path("/book[@year > 1994]").unwrap(), &RuleSet::all());
        assert_eq!(rep.count("R1"), 1);
        assert_eq!(rep.count("R2"), 1);
        // Without R2, the value predicate blocks fusion entirely.
        let rules = RuleSet { pushdown_values: false, ..RuleSet::all() };
        let (op, rep) = optimize_path(&parse_path("/book[@year > 1994]").unwrap(), &rules);
        assert_eq!(rep.count("R1"), 0);
        let (steps, _, _) = op.op_counts();
        assert_eq!(steps, 1);
        let _ = op;
    }

    #[test]
    fn r5_fuses_fig1_bindings() {
        // for $b in /bib/book  let $t := $b/title  let $a := $b/author
        let plan = ret(
            let_bind(
                let_bind(
                    for_bind(
                        LogicalPlan::EnvRoot,
                        "b",
                        Expr::doc_path(parse_path("/bib/book").unwrap()),
                    ),
                    "t",
                    Expr::var_path("b", parse_path("title").unwrap()),
                ),
                "a",
                Expr::var_path("b", parse_path("author").unwrap()),
            ),
            Expr::SequenceExpr(vec![Expr::var("b"), Expr::var("t"), Expr::var("a")]),
        );
        let (opt, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R5"), 1);
        // return(tpm-bind(env-root))
        assert_eq!(opt.len(), 3);
        match &opt {
            LogicalPlan::ReturnClause { input, .. } => match input.as_ref() {
                LogicalPlan::TpmBind { pattern, vars, .. } => {
                    assert_eq!(vars.len(), 3);
                    assert!(vars[0].one_to_many);
                    assert!(!vars[1].one_to_many);
                    // let-grafted vertices are optional
                    let t_vertex = vars[1].vertex;
                    assert!(pattern.vertices[t_vertex].optional);
                    let b_vertex = vars[0].vertex;
                    assert!(!pattern.vertices[b_vertex].optional);
                    assert_eq!(pattern.outputs().len(), 3);
                }
                other => panic!("expected TpmBind, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn r5_stops_at_incompatible_clause() {
        // Second binding uses an unbound var → no fusion (needs ≥ 2).
        let plan = ret(
            for_bind(
                for_bind(
                    LogicalPlan::EnvRoot,
                    "b",
                    Expr::doc_path(parse_path("/bib/book").unwrap()),
                ),
                "x",
                Expr::var_path("ghost", parse_path("y").unwrap()),
            ),
            Expr::var("x"),
        );
        let (_, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R5"), 0);
    }

    #[test]
    fn r6_prunes_unused_let_output() {
        // $t fused into TPM but never used downstream → dropped from vars.
        let plan = ret(
            let_bind(
                for_bind(
                    LogicalPlan::EnvRoot,
                    "b",
                    Expr::doc_path(parse_path("/bib/book").unwrap()),
                ),
                "t",
                Expr::var_path("b", parse_path("title").unwrap()),
            ),
            Expr::var("b"),
        );
        // Disable R7 so the dead let survives to be fused + pruned by R6.
        let rules = RuleSet { dead_let: false, ..RuleSet::all() };
        let (opt, rep) = optimize(plan, &rules);
        assert_eq!(rep.count("R5"), 1);
        assert_eq!(rep.count("R6"), 1);
        match &opt {
            LogicalPlan::ReturnClause { input, .. } => match input.as_ref() {
                LogicalPlan::TpmBind { vars, pattern, .. } => {
                    assert_eq!(vars.len(), 1);
                    assert_eq!(vars[0].var, "b");
                    assert_eq!(pattern.outputs().len(), 1);
                }
                other => panic!("expected TpmBind, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_absolute_fors_fuse_as_siblings() {
        let plan = ret(
            for_bind(
                for_bind(LogicalPlan::EnvRoot, "a", Expr::doc_path(parse_path("/r/x").unwrap())),
                "b",
                Expr::doc_path(parse_path("/r/y").unwrap()),
            ),
            Expr::SequenceExpr(vec![Expr::var("a"), Expr::var("b")]),
        );
        let (opt, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R5"), 1);
        match &opt {
            LogicalPlan::ReturnClause { input, .. } => match input.as_ref() {
                LogicalPlan::TpmBind { pattern, vars, .. } => {
                    assert_eq!(vars.len(), 2);
                    // Both x and y branch off the shared r vertex? No — each
                    // graft creates its own r vertex chain from the root; the
                    // pattern still has a single root.
                    assert!(pattern.pattern_size() >= 4);
                }
                other => panic!("expected TpmBind, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn r9_pushes_where_conjuncts_into_pattern() {
        // for $b in /bib/book let $t := $b/title
        // where $b/price > 50 and $b/@year = 1994 and count($t) > 0
        let plan = ret(
            LogicalPlan::Where {
                input: Box::new(let_bind(
                    for_bind(
                        LogicalPlan::EnvRoot,
                        "b",
                        Expr::doc_path(parse_path("/bib/book").unwrap()),
                    ),
                    "t",
                    Expr::var_path("b", parse_path("title").unwrap()),
                )),
                cond: Expr::And(
                    Box::new(Expr::And(
                        Box::new(Expr::Cmp {
                            op: xqp_xpath::CmpOp::Gt,
                            lhs: Box::new(Expr::var_path("b", parse_path("price").unwrap())),
                            rhs: Box::new(Expr::lit(50i64)),
                        }),
                        Box::new(Expr::Cmp {
                            op: xqp_xpath::CmpOp::Eq,
                            lhs: Box::new(Expr::var_path("b", parse_path("@year").unwrap())),
                            rhs: Box::new(Expr::lit(1994i64)),
                        }),
                    )),
                    // Not pushable: function over a let variable.
                    Box::new(Expr::Cmp {
                        op: xqp_xpath::CmpOp::Gt,
                        lhs: Box::new(Expr::Call {
                            name: "count".into(),
                            args: vec![Expr::var("t")],
                        }),
                        rhs: Box::new(Expr::lit(0i64)),
                    }),
                ),
            },
            Expr::var("t"),
        );
        let (opt, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R5"), 1);
        assert_eq!(rep.count("R9"), 1);
        // The Where clause survives with only the unpushable conjunct.
        match &opt {
            LogicalPlan::ReturnClause { input, .. } => match input.as_ref() {
                LogicalPlan::Where { input, cond } => {
                    assert!(matches!(cond, Expr::Cmp { .. }), "{cond:?}");
                    match input.as_ref() {
                        LogicalPlan::TpmBind { pattern, .. } => {
                            // price and year vertices carry constraints.
                            let constrained = pattern
                                .vertices
                                .iter()
                                .filter(|v| !v.constraints.is_empty())
                                .count();
                            assert_eq!(constrained, 2, "{pattern}");
                        }
                        other => panic!("expected TpmBind, got {other:?}"),
                    }
                }
                other => panic!("expected residual Where, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn r9_drops_where_when_fully_pushed() {
        let plan = ret(
            LogicalPlan::Where {
                input: Box::new(for_bind(
                    for_bind(
                        LogicalPlan::EnvRoot,
                        "b",
                        Expr::doc_path(parse_path("/bib/book").unwrap()),
                    ),
                    "a",
                    Expr::var_path("b", parse_path("author").unwrap()),
                )),
                cond: Expr::var_path("b", parse_path("price").unwrap()),
            },
            Expr::var("a"),
        );
        let (opt, rep) = optimize(plan, &RuleSet::all());
        assert_eq!(rep.count("R9"), 1);
        // return(tpm-bind(env-root)) — the Where is gone.
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn r9_disabled_keeps_where() {
        let plan = ret(
            LogicalPlan::Where {
                input: Box::new(for_bind(
                    for_bind(
                        LogicalPlan::EnvRoot,
                        "b",
                        Expr::doc_path(parse_path("/bib/book").unwrap()),
                    ),
                    "a",
                    Expr::var_path("b", parse_path("author").unwrap()),
                )),
                cond: Expr::var_path("b", parse_path("price").unwrap()),
            },
            Expr::var("a"),
        );
        let (opt, rep) = optimize(plan, &RuleSet::all_except(9));
        assert_eq!(rep.count("R9"), 0);
        assert_eq!(opt.len(), 4); // Where survives
    }

    #[test]
    fn ruleset_all_except() {
        assert!(!RuleSet::all_except(1).fuse_tpm);
        assert!(RuleSet::all_except(1).pushdown_values);
        assert!(!RuleSet::all_except(5).flwor_to_tpm);
        assert_eq!(RuleSet::default(), RuleSet::all());
    }
}
