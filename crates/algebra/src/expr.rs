//! Scalar/sequence expressions of the algebra.
//!
//! [`Expr`] is the expression language the FLWOR operators of
//! [`crate::plan::LogicalPlan`] bind, filter and return over. Path
//! expressions occur in two forms: the surface form [`Expr::Path`] produced
//! by translation, and the compiled form [`Expr::CompiledPath`] produced by
//! the optimizer, whose body is a [`crate::plan::PathOp`] operator tree over
//! the Table-1 operators.

use crate::plan::{LogicalPlan, PathOp};
use crate::schema::SchemaTree;
use std::collections::HashSet;
use std::fmt;
use xqp_xml::Atomic;
use xqp_xpath::{CmpOp, PathExpr};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl ArithOp {
    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }

    /// Apply to two atomics (`None` on type errors / division by zero).
    pub fn apply(self, l: &Atomic, r: &Atomic) -> Option<Atomic> {
        match self {
            ArithOp::Add => l.add(r),
            ArithOp::Sub => l.sub(r),
            ArithOp::Mul => l.mul(r),
            ArithOp::Div => l.div(r),
            ArithOp::Mod => l.int_mod(r),
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal atomic.
    Literal(Atomic),
    /// A variable reference `$name`.
    Var(String),
    /// The queried document (`doc(…)` / the implicit context document).
    ContextDoc,
    /// A path applied to a base expression; absolute paths have
    /// [`Expr::ContextDoc`] as base.
    Path {
        /// The expression the path starts from.
        base: Box<Expr>,
        /// The steps.
        path: PathExpr,
    },
    /// An optimizer-compiled path: a [`PathOp`] tree over Table-1 operators.
    /// The original path is kept for the navigational fallback (e.g. when
    /// the context is a constructed node outside the succinct store).
    CompiledPath {
        /// The expression the plan's `Input` leaf binds to.
        base: Box<Expr>,
        /// The surface path this plan was compiled from.
        path: PathExpr,
        /// The operator tree.
        plan: Box<PathOp>,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// General comparison (existential over sequences).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical and (effective boolean values).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// `if (cond) then … else …`.
    If {
        /// Condition (EBV).
        cond: Box<Expr>,
        /// Then branch.
        then_branch: Box<Expr>,
        /// Else branch.
        else_branch: Box<Expr>,
    },
    /// Built-in function call (`count`, `sum`, `avg`, `min`, `max`,
    /// `string`, `number`, `concat`, `contains`, `starts-with`,
    /// `string-length`, `name`, `empty`, `exists`, `distinct-values`, …).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Quantified expression `some $var in source satisfies cond` /
    /// `every $var in source satisfies cond`. Multi-clause forms are
    /// desugared by the parser into right-nested single-clause quantifiers.
    Quantified {
        /// `true` for `every`, `false` for `some`.
        every: bool,
        /// Range variable name (without `$`), bound in `cond` only.
        var: String,
        /// Range sequence.
        source: Box<Expr>,
        /// Per-item test (effective boolean value).
        cond: Box<Expr>,
    },
    /// Sequence construction `(e1, e2, …)`.
    SequenceExpr(Vec<Expr>),
    /// An element constructor — the SchemaTree the γ operator labels its
    /// input with (Definition 2).
    Construct(Box<SchemaTree>),
    /// A nested FLWOR expression.
    Flwor(Box<LogicalPlan>),
}

impl Expr {
    /// Shorthand literal.
    pub fn lit(a: impl Into<Atomic>) -> Expr {
        Expr::Literal(a.into())
    }

    /// Shorthand variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A path from the context document.
    pub fn doc_path(path: PathExpr) -> Expr {
        Expr::Path { base: Box::new(Expr::ContextDoc), path }
    }

    /// A path from a variable.
    pub fn var_path(var: impl Into<String>, path: PathExpr) -> Expr {
        Expr::Path { base: Box::new(Expr::Var(var.into())), path }
    }

    /// Free variables referenced anywhere in this expression (including
    /// nested FLWORs, minus their own bindings).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_free(&mut out, &mut Vec::new());
        out
    }

    /// True if `$var` occurs free.
    pub fn uses_var(&self, var: &str) -> bool {
        self.free_vars().contains(var)
    }

    pub(crate) fn collect_free(&self, out: &mut HashSet<String>, bound: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !bound.iter().any(|b| b == v) {
                    out.insert(v.clone());
                }
            }
            Expr::Literal(_) | Expr::ContextDoc => {}
            Expr::Path { base, path } | Expr::CompiledPath { base, path, .. } => {
                base.collect_free(out, bound);
                // `$var` references inside path predicates are free uses too.
                let mut referenced = Vec::new();
                path.referenced_vars(&mut referenced);
                for v in referenced {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_free(out, bound);
                rhs.collect_free(out, bound);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_free(out, bound);
                b.collect_free(out, bound);
            }
            Expr::Not(a) => a.collect_free(out, bound),
            Expr::If { cond, then_branch, else_branch } => {
                cond.collect_free(out, bound);
                then_branch.collect_free(out, bound);
                else_branch.collect_free(out, bound);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_free(out, bound);
                }
            }
            Expr::Quantified { var, source, cond, .. } => {
                source.collect_free(out, bound);
                bound.push(var.clone());
                cond.collect_free(out, bound);
                bound.pop();
            }
            Expr::SequenceExpr(items) => {
                for i in items {
                    i.collect_free(out, bound);
                }
            }
            Expr::Construct(tree) => tree.visit_exprs(&mut |e| e.collect_free(out, bound)),
            Expr::Flwor(plan) => plan.collect_free(out, bound), // restores `bound` itself
        }
    }

    /// Apply `f` to every direct child expression (not recursive).
    pub fn map_children(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        match self {
            Expr::Path { base, path } => Expr::Path { base: Box::new(f(*base)), path },
            Expr::CompiledPath { base, path, plan } => {
                Expr::CompiledPath { base: Box::new(f(*base)), path, plan }
            }
            Expr::Arith { op, lhs, rhs } => {
                Expr::Arith { op, lhs: Box::new(f(*lhs)), rhs: Box::new(f(*rhs)) }
            }
            Expr::Cmp { op, lhs, rhs } => {
                Expr::Cmp { op, lhs: Box::new(f(*lhs)), rhs: Box::new(f(*rhs)) }
            }
            Expr::And(a, b) => Expr::And(Box::new(f(*a)), Box::new(f(*b))),
            Expr::Or(a, b) => Expr::Or(Box::new(f(*a)), Box::new(f(*b))),
            Expr::Not(a) => Expr::Not(Box::new(f(*a))),
            Expr::If { cond, then_branch, else_branch } => Expr::If {
                cond: Box::new(f(*cond)),
                then_branch: Box::new(f(*then_branch)),
                else_branch: Box::new(f(*else_branch)),
            },
            Expr::Call { name, args } => {
                Expr::Call { name, args: args.into_iter().map(f).collect() }
            }
            Expr::Quantified { every, var, source, cond } => Expr::Quantified {
                every,
                var,
                source: Box::new(f(*source)),
                cond: Box::new(f(*cond)),
            },
            Expr::SequenceExpr(items) => Expr::SequenceExpr(items.into_iter().map(f).collect()),
            Expr::Construct(mut tree) => {
                tree.map_exprs(f);
                Expr::Construct(tree)
            }
            leaf @ (Expr::Literal(_) | Expr::Var(_) | Expr::ContextDoc) => leaf,
            Expr::Flwor(plan) => Expr::Flwor(Box::new(plan.map_exprs(f))),
        }
    }

    /// True if the expression is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Expr::Literal(_))
    }

    /// True if the expression calls `position()` or `last()` anywhere,
    /// including inside nested FLWORs and constructor trees. Plans whose
    /// expressions use the focus must preserve per-`for` enumeration order,
    /// so focus-sensitive plans opt out of binding-restructuring rewrites.
    pub fn uses_focus(&self) -> bool {
        match self {
            Expr::Call { name, args } => {
                name == "position" || name == "last" || args.iter().any(Expr::uses_focus)
            }
            Expr::Literal(_) | Expr::Var(_) | Expr::ContextDoc => false,
            Expr::Path { base, .. } | Expr::CompiledPath { base, .. } => base.uses_focus(),
            Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.uses_focus() || rhs.uses_focus()
            }
            Expr::And(a, b) | Expr::Or(a, b) => a.uses_focus() || b.uses_focus(),
            Expr::Not(a) => a.uses_focus(),
            Expr::If { cond, then_branch, else_branch } => {
                cond.uses_focus() || then_branch.uses_focus() || else_branch.uses_focus()
            }
            Expr::Quantified { source, cond, .. } => source.uses_focus() || cond.uses_focus(),
            Expr::SequenceExpr(items) => items.iter().any(Expr::uses_focus),
            Expr::Construct(tree) => {
                let mut found = false;
                tree.visit_exprs(&mut |e| found |= e.uses_focus());
                found
            }
            Expr::Flwor(plan) => plan.uses_focus(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Atomic::Str(s)) => write!(f, "\"{s}\""),
            Expr::Literal(a) => write!(f, "{a}"),
            Expr::Var(v) => write!(f, "${v}"),
            Expr::ContextDoc => write!(f, "doc()"),
            Expr::Path { base, path } => {
                let sep = if path.absolute { "" } else { "/" };
                match base.as_ref() {
                    Expr::ContextDoc => write!(f, "doc(){sep}{path}"),
                    other => write!(f, "{other}{sep}{path}"),
                }
            }
            Expr::CompiledPath { base, plan, .. } => write!(f, "{base} ⊳ {plan}"),
            Expr::Arith { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(a) => write!(f, "not({a})"),
            Expr::If { cond, then_branch, else_branch } => {
                write!(f, "if ({cond}) then {then_branch} else {else_branch}")
            }
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Quantified { every, var, source, cond } => {
                let kw = if *every { "every" } else { "some" };
                write!(f, "({kw} ${var} in {source} satisfies {cond})")
            }
            Expr::SequenceExpr(items) => {
                write!(f, "(")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Construct(tree) => write!(f, "γ[{}]", tree.root_name()),
            Expr::Flwor(_) => write!(f, "flwor{{…}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xpath::parse_path;

    #[test]
    fn free_vars_basic() {
        let e = Expr::Arith {
            op: ArithOp::Add,
            lhs: Box::new(Expr::var("x")),
            rhs: Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::var("y")),
                rhs: Box::new(Expr::lit(1i64)),
            }),
        };
        let fv = e.free_vars();
        assert!(fv.contains("x") && fv.contains("y"));
        assert_eq!(fv.len(), 2);
        assert!(e.uses_var("x"));
        assert!(!e.uses_var("z"));
    }

    #[test]
    fn path_base_vars() {
        let e = Expr::var_path("b", parse_path("title").unwrap());
        assert!(e.uses_var("b"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Expr::lit(42i64).to_string(), "42");
        assert_eq!(Expr::lit("hi").to_string(), "\"hi\"");
        assert_eq!(Expr::var("b").to_string(), "$b");
        let p = Expr::doc_path(parse_path("/bib/book").unwrap());
        assert_eq!(p.to_string(), "doc()/bib/book");
        let vp = Expr::var_path("b", parse_path("title").unwrap());
        assert_eq!(vp.to_string(), "$b/title");
        let call = Expr::Call { name: "count".into(), args: vec![Expr::var("x")] };
        assert_eq!(call.to_string(), "count($x)");
    }

    #[test]
    fn arith_apply() {
        assert_eq!(
            ArithOp::Add.apply(&Atomic::Integer(2), &Atomic::Integer(3)),
            Some(Atomic::Integer(5))
        );
        assert_eq!(ArithOp::Div.apply(&Atomic::Integer(1), &Atomic::Integer(0)), None);
        assert_eq!(
            ArithOp::Mod.apply(&Atomic::Integer(7), &Atomic::Integer(4)),
            Some(Atomic::Integer(3))
        );
    }

    #[test]
    fn map_children_rewrites() {
        let e = Expr::And(Box::new(Expr::var("a")), Box::new(Expr::var("b")));
        let renamed = e.map_children(&mut |c| match c {
            Expr::Var(v) => Expr::Var(format!("{v}2")),
            other => other,
        });
        assert_eq!(renamed, Expr::And(Box::new(Expr::var("a2")), Box::new(Expr::var("b2"))));
    }
}
