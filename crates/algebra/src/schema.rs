//! Schema trees — Definition 2 of the paper.
//!
//! > A SchemaTree ⟨Σ, N, A, E⟩ is a labeled tree extracted from XQuery
//! > constructor expressions. … Each leaf node is labeled with a character in
//! > Σ (an empty element) or an expression in E (a **placeholder**). Each
//! > non-leaf node is labeled with a character in Σ (a **constructor-node**)
//! > or a boolean-valued expression (an **if-node**).
//!
//! This is the γ operator's second input: γ takes a NestedList of
//! intermediate results plus a SchemaTree and produces a labeled output tree
//! (Fig. 1(b): `results / result* / {$t} {$a}`).

use crate::expr::Expr;
use std::fmt;

/// A node of a schema tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaNode {
    /// A constructor-node: `<name attr₁={e}…>children</name>`.
    Element {
        /// Element name.
        name: String,
        /// Attribute constructors: name plus value expression.
        attributes: Vec<(String, Expr)>,
        /// Child schema nodes in order.
        children: Vec<SchemaNode>,
    },
    /// A placeholder leaf `{ expr }` — replaced by the expression's value.
    Placeholder(Expr),
    /// Literal character data.
    Text(String),
    /// An if-node: children materialize only when the condition holds.
    If {
        /// Boolean-valued expression.
        cond: Expr,
        /// Children when true.
        then_children: Vec<SchemaNode>,
        /// Children when false.
        else_children: Vec<SchemaNode>,
    },
}

impl SchemaNode {
    /// Visit every embedded expression (depth-first).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            SchemaNode::Element { attributes, children, .. } => {
                for (_, e) in attributes {
                    f(e);
                }
                for c in children {
                    c.visit_exprs(f);
                }
            }
            SchemaNode::Placeholder(e) => f(e),
            SchemaNode::Text(_) => {}
            SchemaNode::If { cond, then_children, else_children } => {
                f(cond);
                for c in then_children.iter().chain(else_children) {
                    c.visit_exprs(f);
                }
            }
        }
    }

    /// Rewrite every embedded expression in place.
    pub fn map_exprs(&mut self, f: &mut impl FnMut(Expr) -> Expr) {
        match self {
            SchemaNode::Element { attributes, children, .. } => {
                for (_, e) in attributes.iter_mut() {
                    let old = std::mem::replace(e, Expr::ContextDoc);
                    *e = f(old);
                }
                for c in children {
                    c.map_exprs(f);
                }
            }
            SchemaNode::Placeholder(e) => {
                let old = std::mem::replace(e, Expr::ContextDoc);
                *e = f(old);
            }
            SchemaNode::Text(_) => {}
            SchemaNode::If { cond, then_children, else_children } => {
                let old = std::mem::replace(cond, Expr::ContextDoc);
                *cond = f(old);
                for c in then_children.iter_mut().chain(else_children) {
                    c.map_exprs(f);
                }
            }
        }
    }

    fn count_placeholders(&self) -> usize {
        match self {
            SchemaNode::Placeholder(_) => 1,
            SchemaNode::Text(_) => 0,
            SchemaNode::Element { children, .. } => {
                children.iter().map(SchemaNode::count_placeholders).sum()
            }
            SchemaNode::If { then_children, else_children, .. } => {
                then_children.iter().chain(else_children).map(SchemaNode::count_placeholders).sum()
            }
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            SchemaNode::Element { name, attributes, children } => {
                write!(f, "{pad}{name}")?;
                for (a, e) in attributes {
                    write!(f, " @{a}={{{e}}}")?;
                }
                writeln!(f)?;
                for c in children {
                    c.fmt_tree(f, depth + 1)?;
                }
                Ok(())
            }
            SchemaNode::Placeholder(e) => writeln!(f, "{pad}{{ {e} }}"),
            SchemaNode::Text(t) => writeln!(f, "{pad}\"{t}\""),
            SchemaNode::If { cond, then_children, else_children } => {
                writeln!(f, "{pad}if {cond}")?;
                for c in then_children {
                    c.fmt_tree(f, depth + 1)?;
                }
                if !else_children.is_empty() {
                    writeln!(f, "{pad}else")?;
                    for c in else_children {
                        c.fmt_tree(f, depth + 1)?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// A schema tree: the output template of a constructor expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaTree {
    /// The root schema node.
    pub root: SchemaNode,
}

impl SchemaTree {
    /// Wrap a root node.
    pub fn new(root: SchemaNode) -> Self {
        SchemaTree { root }
    }

    /// Name of the root constructor, or a descriptive tag for other roots.
    pub fn root_name(&self) -> &str {
        match &self.root {
            SchemaNode::Element { name, .. } => name,
            SchemaNode::Placeholder(_) => "{…}",
            SchemaNode::Text(_) => "#text",
            SchemaNode::If { .. } => "if",
        }
    }

    /// Number of placeholder leaves.
    pub fn placeholder_count(&self) -> usize {
        self.root.count_placeholders()
    }

    /// Visit every embedded expression.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.root.visit_exprs(f);
    }

    /// Rewrite every embedded expression.
    pub fn map_exprs(&mut self, f: &mut impl FnMut(Expr) -> Expr) {
        self.root.map_exprs(f);
    }
}

impl fmt::Display for SchemaTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.fmt_tree(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1(b) schema: results / result / {$t} {$a}.
    fn fig1b() -> SchemaTree {
        SchemaTree::new(SchemaNode::Element {
            name: "results".into(),
            attributes: vec![],
            children: vec![SchemaNode::Element {
                name: "result".into(),
                attributes: vec![],
                children: vec![
                    SchemaNode::Placeholder(Expr::var("t")),
                    SchemaNode::Placeholder(Expr::var("a")),
                ],
            }],
        })
    }

    #[test]
    fn fig1b_structure() {
        let t = fig1b();
        assert_eq!(t.root_name(), "results");
        assert_eq!(t.placeholder_count(), 2);
    }

    #[test]
    fn visit_collects_placeholder_exprs() {
        let t = fig1b();
        let mut vars = Vec::new();
        t.visit_exprs(&mut |e| {
            if let Expr::Var(v) = e {
                vars.push(v.clone());
            }
        });
        assert_eq!(vars, ["t", "a"]);
    }

    #[test]
    fn map_rewrites_expressions() {
        let mut t = fig1b();
        t.map_exprs(&mut |e| match e {
            Expr::Var(v) => Expr::Var(format!("{v}_renamed")),
            other => other,
        });
        let mut vars = Vec::new();
        t.visit_exprs(&mut |e| {
            if let Expr::Var(v) = e {
                vars.push(v.clone());
            }
        });
        assert_eq!(vars, ["t_renamed", "a_renamed"]);
    }

    #[test]
    fn if_node_expressions_visited() {
        let t = SchemaTree::new(SchemaNode::If {
            cond: Expr::var("c"),
            then_children: vec![SchemaNode::Text("yes".into())],
            else_children: vec![SchemaNode::Placeholder(Expr::var("e"))],
        });
        assert_eq!(t.placeholder_count(), 1);
        let mut n = 0;
        t.visit_exprs(&mut |_| n += 1);
        assert_eq!(n, 2); // cond + placeholder
        assert_eq!(t.root_name(), "if");
    }

    #[test]
    fn attributes_carry_expressions() {
        let t = SchemaTree::new(SchemaNode::Element {
            name: "r".into(),
            attributes: vec![("id".into(), Expr::var("i"))],
            children: vec![],
        });
        let mut n = 0;
        t.visit_exprs(&mut |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn display_renders_template() {
        let s = fig1b().to_string();
        assert!(s.contains("results"));
        assert!(s.contains("result"));
        assert!(s.contains("{ $t }"));
    }
}
