//! Cardinality statistics and the cost model.
//!
//! The paper lists a cost model as required infrastructure ("a cost model is
//! also needed as a basis of choosing the optimal physical query plan", §2)
//! but defers it to future work; this module supplies the natural one. It is
//! intentionally simple — per-tag cardinalities plus containment-style
//! selectivity guesses — which is enough to (a) order structural joins by
//! estimated input size (rule R4 / experiment E8) and (b) choose between a
//! NoK scan, a holistic twig join and a binary-join pipeline per pattern.

use std::collections::HashMap;
use xqp_xml::{Document, NodeKind};
use xqp_xpath::{PatternGraph, VertexKind};

/// Default selectivity of an equality value constraint.
const SEL_VALUE_EQ: f64 = 0.1;
/// Default selectivity of a range value constraint.
const SEL_VALUE_RANGE: f64 = 0.3;

/// Per-document cardinality statistics.
#[derive(Debug, Clone, Default)]
pub struct DocStatistics {
    /// Total stored nodes (elements + attributes + texts).
    pub node_count: usize,
    /// Element nodes only.
    pub element_count: usize,
    /// Occurrences per tag name (elements and attributes).
    pub tag_counts: HashMap<String, usize>,
    /// Maximum element depth.
    pub max_depth: usize,
}

impl DocStatistics {
    /// Gather statistics from an arena document.
    pub fn from_document(doc: &Document) -> Self {
        let mut s = DocStatistics::default();
        for i in 0..doc.len() as u32 {
            let id = xqp_xml::NodeId(i);
            match &doc.node(id).kind {
                NodeKind::Element { name, .. } => {
                    s.element_count += 1;
                    s.node_count += 1;
                    *s.tag_counts.entry(name.as_lexical()).or_insert(0) += 1;
                    s.max_depth = s.max_depth.max(doc.depth(id));
                }
                NodeKind::Attribute { name, .. } => {
                    s.node_count += 1;
                    *s.tag_counts.entry(name.as_lexical()).or_insert(0) += 1;
                }
                NodeKind::Text(_) => s.node_count += 1,
                _ => {}
            }
        }
        s
    }

    /// Assemble from pre-computed counts (the storage layer uses this to
    /// avoid materializing a DOM).
    pub fn from_counts(
        node_count: usize,
        element_count: usize,
        tag_counts: HashMap<String, usize>,
        max_depth: usize,
    ) -> Self {
        DocStatistics { node_count, element_count, tag_counts, max_depth }
    }

    /// Number of nodes matching a name test (`*` matches every element).
    pub fn tag_count(&self, test: &str) -> usize {
        if test == "*" {
            self.element_count
        } else {
            self.tag_counts.get(test).copied().unwrap_or(0)
        }
    }
}

/// The cost model over one document's statistics.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    stats: &'a DocStatistics,
}

impl<'a> CostModel<'a> {
    /// Wrap statistics.
    pub fn new(stats: &'a DocStatistics) -> Self {
        CostModel { stats }
    }

    /// Estimated matches of one pattern vertex considered in isolation.
    pub fn vertex_cardinality(&self, g: &PatternGraph, v: usize) -> f64 {
        let vert = &g.vertices[v];
        let base = match vert.kind {
            VertexKind::Root => 1.0,
            VertexKind::Text => (self.stats.node_count - self.stats.element_count) as f64,
            _ => self.stats.tag_count(&vert.label) as f64,
        };
        let sel: f64 = vert
            .constraints
            .iter()
            .map(|c| match c.op {
                xqp_xpath::CmpOp::Eq => SEL_VALUE_EQ,
                xqp_xpath::CmpOp::Ne => 1.0 - SEL_VALUE_EQ,
                _ => SEL_VALUE_RANGE,
            })
            .product();
        base * sel
    }

    /// Estimated embeddings of the whole pattern: the output-vertex
    /// cardinality damped by the existence selectivity of each branch.
    pub fn pattern_cardinality(&self, g: &PatternGraph) -> f64 {
        // Bottom-up: card(v) = card_local(v) · Π_children min(1, card(child)/card_local(v))
        fn rec(cm: &CostModel<'_>, g: &PatternGraph, v: usize) -> f64 {
            let local = cm.vertex_cardinality(g, v).max(1e-9);
            let mut card = local;
            for (c, _) in g.children(v) {
                let child = rec(cm, g, c);
                card *= (child / local).min(1.0);
            }
            card
        }
        if g.unsatisfiable {
            return 0.0;
        }
        rec(self, g, g.root())
    }

    /// Cost of one binary structural join over inputs of the given sizes
    /// (stack-tree is linear in inputs plus output).
    pub fn structural_join_cost(&self, left: f64, right: f64) -> f64 {
        left + right + 0.5 * left.min(right)
    }

    /// Cost of evaluating a pattern with one NoK navigational scan: a single
    /// sequential pass over the document structure.
    pub fn nok_scan_cost(&self, _g: &PatternGraph) -> f64 {
        self.stats.node_count as f64
    }

    /// Cost of a holistic twig join: the sum of the per-tag streams it must
    /// merge.
    pub fn twig_cost(&self, g: &PatternGraph) -> f64 {
        (1..g.vertices.len()).map(|v| self.vertex_cardinality(g, v)).sum()
    }

    /// Cost of the fully binary-join pipeline in a given order: joins are
    /// applied pairwise over the per-vertex streams.
    pub fn binary_join_pipeline_cost(&self, cards: &[f64]) -> f64 {
        if cards.is_empty() {
            return 0.0;
        }
        let mut acc = cards[0];
        let mut total = 0.0;
        for &c in &cards[1..] {
            total += self.structural_join_cost(acc, c);
            // Output estimate: containment joins rarely exceed the smaller
            // input by much.
            acc = acc.min(c).max(1.0);
        }
        total
    }

    /// Rule R4: order join inputs ascending by estimated cardinality so the
    /// cheapest pair joins first. Returns the permutation.
    pub fn choose_join_order(&self, cards: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..cards.len()).collect();
        idx.sort_by(|&a, &b| cards[a].total_cmp(&cards[b]));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xml::parse_document;
    use xqp_xpath::{parse_path, PatternGraph};

    fn stats() -> DocStatistics {
        let doc = parse_document(
            "<bib>\
             <book year=\"1\"><title>a</title><author>x</author><author>y</author></book>\
             <book year=\"2\"><title>b</title><author>z</author></book>\
             <article><title>c</title></article>\
             </bib>",
        )
        .unwrap();
        DocStatistics::from_document(&doc)
    }

    #[test]
    fn counts_from_document() {
        let s = stats();
        assert_eq!(s.tag_count("book"), 2);
        assert_eq!(s.tag_count("author"), 3);
        assert_eq!(s.tag_count("title"), 3);
        assert_eq!(s.tag_count("year"), 2); // attributes counted
        assert_eq!(s.tag_count("absent"), 0);
        assert_eq!(s.tag_count("*"), s.element_count);
        assert_eq!(s.element_count, 10);
        assert!(s.max_depth >= 3);
    }

    #[test]
    fn vertex_cardinality_uses_tags_and_constraints() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book[@year = 1]").unwrap()).unwrap();
        let book = g.vertices.iter().position(|v| v.label == "book").unwrap();
        let year = g.vertices.iter().position(|v| v.label == "year").unwrap();
        assert_eq!(cm.vertex_cardinality(&g, book), 2.0);
        // 2 year attributes × 0.1 equality selectivity
        assert!((cm.vertex_cardinality(&g, year) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pattern_cardinality_monotone_in_constraints() {
        let s = stats();
        let cm = CostModel::new(&s);
        let free = PatternGraph::from_path(&parse_path("/bib/book").unwrap()).unwrap();
        let constrained =
            PatternGraph::from_path(&parse_path("/bib/book[@year = 1]").unwrap()).unwrap();
        assert!(cm.pattern_cardinality(&constrained) < cm.pattern_cardinality(&free));
        assert!(cm.pattern_cardinality(&free) <= 2.0 + 1e-9);
    }

    #[test]
    fn unsatisfiable_pattern_is_zero() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib[1 = 2]").unwrap()).unwrap();
        assert_eq!(cm.pattern_cardinality(&g), 0.0);
    }

    #[test]
    fn join_order_sorts_ascending() {
        let s = stats();
        let cm = CostModel::new(&s);
        let order = cm.choose_join_order(&[100.0, 1.0, 50.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn good_join_order_is_cheaper() {
        let s = stats();
        let cm = CostModel::new(&s);
        let cards = [1000.0, 10.0, 500.0];
        let good: Vec<f64> = cm.choose_join_order(&cards).iter().map(|&i| cards[i]).collect();
        let bad: Vec<f64> = vec![1000.0, 500.0, 10.0];
        assert!(cm.binary_join_pipeline_cost(&good) < cm.binary_join_pipeline_cost(&bad));
    }

    #[test]
    fn nok_cost_is_one_scan() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book[author]/title").unwrap()).unwrap();
        assert_eq!(cm.nok_scan_cost(&g), s.node_count as f64);
        // A twig over rare tags costs less than a full scan; over every tag
        // it can cost more. Here streams are small:
        assert!(cm.twig_cost(&g) < cm.nok_scan_cost(&g) * 2.0);
    }

    #[test]
    fn from_counts_constructor() {
        let mut tags = HashMap::new();
        tags.insert("a".to_string(), 5usize);
        let s = DocStatistics::from_counts(10, 7, tags, 4);
        assert_eq!(s.tag_count("a"), 5);
        assert_eq!(s.tag_count("*"), 7);
        assert_eq!(s.max_depth, 4);
    }
}
