//! Cardinality statistics and the cost model.
//!
//! The paper lists a cost model as required infrastructure ("a cost model is
//! also needed as a basis of choosing the optimal physical query plan", §2)
//! but defers it to future work; this module supplies the natural one. It is
//! intentionally simple — per-tag cardinalities plus containment-style
//! selectivity guesses — which is enough to (a) order structural joins by
//! estimated input size (rule R4 / experiment E8) and (b) choose between a
//! NoK scan, a holistic twig join and a binary-join pipeline per pattern.

use crate::expr::Expr;
use crate::plan::LogicalPlan;
use std::collections::HashMap;
use xqp_xml::{Document, NodeKind};
use xqp_xpath::{PathExpr, PatternGraph, VertexKind};

/// Default selectivity of an equality value constraint.
const SEL_VALUE_EQ: f64 = 0.1;
/// Default selectivity of a range value constraint.
const SEL_VALUE_RANGE: f64 = 0.3;
/// Default selectivity of a `where` clause whose condition the model cannot
/// decompose.
const SEL_WHERE: f64 = 0.5;

/// The physical access methods a τ (tree-pattern-matching) operator can be
/// lowered to. The logical τ is one operator; these are its physical
/// implementations in `xqp-exec` (§2: "for each logical operator, many
/// physical operators that implement the same functionalities").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpmAccess {
    /// Single pre-order navigational scan (the paper's NoK matcher).
    NokScan,
    /// Holistic twig join over region-encoded tag streams.
    TwigStack,
    /// Pairwise stack-tree structural joins, R4-ordered.
    BinaryJoin,
}

impl TpmAccess {
    /// Display name used by EXPLAIN renderings.
    pub fn name(self) -> &'static str {
        match self {
            TpmAccess::NokScan => "nok",
            TpmAccess::TwigStack => "twigstack",
            TpmAccess::BinaryJoin => "binaryjoin",
        }
    }
}

/// Per-clause estimate produced by [`CostModel::cost_plan`], in the same
/// bottom-up order as [`LogicalPlan::clauses`] (EnvRoot first).
#[derive(Debug, Clone)]
pub struct ClauseEstimate {
    /// Estimated total bindings flowing *out* of this clause.
    pub rows: f64,
    /// Estimated work of this clause alone.
    pub cost: f64,
    /// For τ clauses: the chosen access method and its cost.
    pub access: Option<(TpmAccess, f64)>,
}

/// Whole-plan cost estimate: cardinality propagated through every clause of
/// a FLWOR pipeline, so join ordering (R4) and τ access-method choice come
/// out of one planning pass.
#[derive(Debug, Clone)]
pub struct PlanCostReport {
    /// One estimate per clause, bottom-up (EnvRoot first).
    pub clauses: Vec<ClauseEstimate>,
    /// Estimated bindings the pipeline delivers to its consumer.
    pub out_rows: f64,
    /// Sum of the per-clause costs.
    pub total_cost: f64,
}

/// Per-document cardinality statistics.
#[derive(Debug, Clone, Default)]
pub struct DocStatistics {
    /// Total stored nodes (elements + attributes + texts).
    pub node_count: usize,
    /// Element nodes only.
    pub element_count: usize,
    /// Occurrences per tag name (elements and attributes).
    pub tag_counts: HashMap<String, usize>,
    /// Maximum element depth.
    pub max_depth: usize,
}

impl DocStatistics {
    /// Gather statistics from an arena document.
    pub fn from_document(doc: &Document) -> Self {
        let mut s = DocStatistics::default();
        for i in 0..doc.len() as u32 {
            let id = xqp_xml::NodeId(i);
            match &doc.node(id).kind {
                NodeKind::Element { name, .. } => {
                    s.element_count += 1;
                    s.node_count += 1;
                    *s.tag_counts.entry(name.as_lexical()).or_insert(0) += 1;
                    s.max_depth = s.max_depth.max(doc.depth(id));
                }
                NodeKind::Attribute { name, .. } => {
                    s.node_count += 1;
                    *s.tag_counts.entry(name.as_lexical()).or_insert(0) += 1;
                }
                NodeKind::Text(_) => s.node_count += 1,
                _ => {}
            }
        }
        s
    }

    /// Assemble from pre-computed counts (the storage layer uses this to
    /// avoid materializing a DOM).
    pub fn from_counts(
        node_count: usize,
        element_count: usize,
        tag_counts: HashMap<String, usize>,
        max_depth: usize,
    ) -> Self {
        DocStatistics { node_count, element_count, tag_counts, max_depth }
    }

    /// Number of nodes matching a name test (`*` matches every element).
    pub fn tag_count(&self, test: &str) -> usize {
        if test == "*" {
            self.element_count
        } else {
            self.tag_counts.get(test).copied().unwrap_or(0)
        }
    }
}

/// The cost model over one document's statistics.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    stats: &'a DocStatistics,
}

impl<'a> CostModel<'a> {
    /// Wrap statistics.
    pub fn new(stats: &'a DocStatistics) -> Self {
        CostModel { stats }
    }

    /// Estimated matches of one pattern vertex considered in isolation.
    pub fn vertex_cardinality(&self, g: &PatternGraph, v: usize) -> f64 {
        let vert = &g.vertices[v];
        let base = match vert.kind {
            VertexKind::Root => 1.0,
            // Saturating: `from_counts` callers can hand in element counts
            // that exceed the node total (and an empty document has zero of
            // both); a wrapped subtraction here turns into a 2^64 cardinality
            // that poisons every downstream estimate.
            VertexKind::Text => {
                self.stats.node_count.saturating_sub(self.stats.element_count) as f64
            }
            _ => self.stats.tag_count(&vert.label) as f64,
        };
        let sel: f64 = vert
            .constraints
            .iter()
            .map(|c| match c.op {
                xqp_xpath::CmpOp::Eq => SEL_VALUE_EQ,
                xqp_xpath::CmpOp::Ne => 1.0 - SEL_VALUE_EQ,
                _ => SEL_VALUE_RANGE,
            })
            .product();
        base * sel
    }

    /// Estimated embeddings of the whole pattern: the output-vertex
    /// cardinality damped by the existence selectivity of each branch.
    pub fn pattern_cardinality(&self, g: &PatternGraph) -> f64 {
        // Bottom-up: card(v) = card_local(v) · Π_children min(1, card(child)/card_local(v))
        fn rec(cm: &CostModel<'_>, g: &PatternGraph, v: usize) -> f64 {
            let local = cm.vertex_cardinality(g, v).max(1e-9);
            let mut card = local;
            for (c, _) in g.children(v) {
                let child = rec(cm, g, c);
                card *= (child / local).min(1.0);
            }
            card
        }
        if g.unsatisfiable {
            return 0.0;
        }
        rec(self, g, g.root())
    }

    /// Cost of one binary structural join over inputs of the given sizes
    /// (stack-tree is linear in inputs plus output).
    pub fn structural_join_cost(&self, left: f64, right: f64) -> f64 {
        left + right + 0.5 * left.min(right)
    }

    /// Cost of evaluating a pattern with one NoK navigational scan: a single
    /// sequential pass over the document structure.
    pub fn nok_scan_cost(&self, _g: &PatternGraph) -> f64 {
        self.stats.node_count as f64
    }

    /// Cost of a holistic twig join: the sum of the per-tag streams it must
    /// merge.
    pub fn twig_cost(&self, g: &PatternGraph) -> f64 {
        (1..g.vertices.len()).map(|v| self.vertex_cardinality(g, v)).sum()
    }

    /// Cost of the fully binary-join pipeline in a given order: joins are
    /// applied pairwise over the per-vertex streams.
    pub fn binary_join_pipeline_cost(&self, cards: &[f64]) -> f64 {
        if cards.is_empty() {
            return 0.0;
        }
        let mut acc = cards[0];
        let mut total = 0.0;
        for &c in &cards[1..] {
            total += self.structural_join_cost(acc, c);
            // Output estimate: containment joins rarely exceed the smaller
            // input by much.
            acc = acc.min(c).max(1.0);
        }
        total
    }

    /// Rule R4: order join inputs ascending by estimated cardinality so the
    /// cheapest pair joins first. Returns the permutation.
    pub fn choose_join_order(&self, cards: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..cards.len()).collect();
        idx.sort_by(|&a, &b| cards[a].total_cmp(&cards[b]));
        idx
    }

    /// Enumerate probe orders for an isolated join graph (R12): every
    /// permutation of the sides (≤ 6 sides, so ≤ 720 orders) is costed by
    /// summed intermediate cardinalities, where placing a side connected by
    /// an edge to an already-placed side applies the equality selectivity.
    /// Returns the cheapest permutation. FLWOR output order is fixed by the
    /// sides' source order, so this informs the physical build/probe
    /// strategy and the explain audit trail, not the result order.
    pub fn choose_join_graph_order(&self, cards: &[f64], edges: &[(usize, usize)]) -> Vec<usize> {
        let n = cards.len();
        if n == 0 {
            return Vec::new();
        }
        if n > 6 {
            // Too many sides to enumerate: R4-style ascending fallback.
            return self.choose_join_order(cards);
        }
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut perm: Vec<usize> = (0..n).collect();
        permute(&mut perm, 0, &mut |p| {
            let mut placed: Vec<usize> = Vec::with_capacity(n);
            let mut inter = 1.0f64;
            let mut cost = 0.0f64;
            for &s in p {
                inter *= cards[s].max(1e-9);
                let connecting = edges
                    .iter()
                    .filter(|(a, b)| {
                        (*a == s && placed.contains(b)) || (*b == s && placed.contains(a))
                    })
                    .count();
                inter *= SEL_VALUE_EQ.powi(connecting as i32);
                placed.push(s);
                cost += inter;
            }
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, p.to_vec()));
            }
        });
        best.map_or_else(|| (0..n).collect(), |(_, p)| p)
    }

    /// Cost of evaluating `g` with a specific access method. The binary
    /// pipeline is costed in its R4 join order.
    pub fn access_cost(&self, g: &PatternGraph, access: TpmAccess) -> f64 {
        match access {
            TpmAccess::NokScan => self.nok_scan_cost(g),
            TpmAccess::TwigStack => self.twig_cost(g),
            TpmAccess::BinaryJoin => {
                let cards: Vec<f64> =
                    (0..g.vertices.len()).map(|v| self.vertex_cardinality(g, v)).collect();
                let ordered: Vec<f64> =
                    self.choose_join_order(&cards).into_iter().map(|i| cards[i]).collect();
                self.binary_join_pipeline_cost(&ordered)
            }
        }
    }

    /// The `Auto` policy for one τ: a pure NoK pattern takes the single
    /// scan; otherwise the cheaper of the hybrid scan and the holistic twig
    /// join (the twig must win clearly — its constant factors are worse).
    pub fn choose_access(&self, g: &PatternGraph) -> (TpmAccess, f64) {
        let scan = self.nok_scan_cost(g);
        if g.is_nok_only() {
            return (TpmAccess::NokScan, scan);
        }
        let twig = self.twig_cost(g);
        if twig < scan * 0.5 {
            (TpmAccess::TwigStack, twig)
        } else {
            (TpmAccess::NokScan, scan)
        }
    }

    /// Estimated result cardinality of a path: the final step's tag count
    /// (document-wide — the caller decides whether that total is spread
    /// across outer bindings or multiplied by them).
    pub fn path_cardinality(&self, path: &PathExpr) -> f64 {
        match path.steps.last() {
            Some(step) => (self.stats.tag_count(step.test.label()) as f64).max(0.0),
            None => 1.0,
        }
    }

    /// Estimated result cardinality of an arbitrary expression: paths and
    /// compiled patterns use the statistics; scalars estimate 1.
    pub fn expr_cardinality(&self, e: &Expr) -> f64 {
        match e {
            Expr::Path { path, .. } => self.path_cardinality(path),
            Expr::CompiledPath { path, plan, .. } => {
                if let crate::plan::PathOp::TpmFrom { pattern, .. } = plan.as_ref() {
                    self.pattern_cardinality(pattern)
                } else {
                    self.path_cardinality(path)
                }
            }
            Expr::SequenceExpr(items) => items.iter().map(|i| self.expr_cardinality(i)).sum(),
            Expr::If { then_branch, else_branch, .. } => {
                self.expr_cardinality(then_branch).max(self.expr_cardinality(else_branch))
            }
            Expr::Flwor(plan) => self.cost_plan(plan).out_rows,
            // Aggregate calls and quantifiers reduce their argument to a
            // single item — the cardinality of the streaming fold's output,
            // however large the folded input estimate was.
            Expr::Call { .. } | Expr::Quantified { .. } => 1.0,
            _ => 1.0,
        }
    }

    /// Whole-plan costing: walk the clause pipeline bottom-up, propagating
    /// the estimated binding count through every for/let/where/order-by/τ
    /// layer. This is where R4-style ordering information and the τ access
    /// choice meet in a single pass — the physical planner in `xqp-exec`
    /// annotates its operators directly from this report.
    pub fn cost_plan(&self, plan: &LogicalPlan) -> PlanCostReport {
        let mut clauses = Vec::new();
        let mut rows = 0.0f64;
        for clause in plan.clauses() {
            let est = match clause {
                LogicalPlan::EnvRoot => ClauseEstimate { rows: 1.0, cost: 0.0, access: None },
                LogicalPlan::ForBind { source, .. } => {
                    let total = self.expr_cardinality(source).max(0.0);
                    // A correlated source (`$b/author`) spreads its total
                    // matches across the upstream bindings; an independent
                    // source re-produces them per binding.
                    let out = if source.free_vars().is_empty() { rows * total } else { total };
                    ClauseEstimate { rows: out, cost: rows + out, access: None }
                }
                LogicalPlan::LetBind { .. } => ClauseEstimate { rows, cost: rows, access: None },
                LogicalPlan::Where { .. } => {
                    ClauseEstimate { rows: rows * SEL_WHERE, cost: rows, access: None }
                }
                LogicalPlan::OrderBy { .. } => {
                    let n = rows.max(1.0);
                    ClauseEstimate { rows, cost: n * n.log2().max(1.0), access: None }
                }
                LogicalPlan::TpmBind { pattern, vars, .. } => {
                    let (access, acc_cost) = self.choose_access(pattern);
                    let mut out = rows;
                    let mut anchor = 1.0f64;
                    for tv in vars {
                        let c = self.vertex_cardinality(pattern, tv.vertex).max(0.0);
                        if tv.one_to_many {
                            out *= (c / anchor).max(1e-6);
                            anchor = c.max(1e-9);
                        }
                    }
                    ClauseEstimate {
                        rows: out,
                        cost: acc_cost + out,
                        access: Some((access, acc_cost)),
                    }
                }
                LogicalPlan::JoinGraph { sides, edges, .. } => {
                    let cards: Vec<f64> =
                        sides.iter().map(|s| self.expr_cardinality(&s.source).max(0.0)).collect();
                    let cross: f64 = cards.iter().product();
                    // Each equi-edge prunes the cross product like an
                    // equality constraint.
                    let sel = SEL_VALUE_EQ.powi(edges.len() as i32);
                    let out = rows * cross * sel;
                    // Hash join: evaluate each side once per upstream row,
                    // build + probe linear in the inputs, emit the output.
                    let side_work: f64 = cards.iter().sum();
                    ClauseEstimate { rows: out, cost: rows * side_work + out, access: None }
                }
                LogicalPlan::ReturnClause { .. } => {
                    ClauseEstimate { rows, cost: rows, access: None }
                }
            };
            rows = est.rows;
            clauses.push(est);
        }
        let total_cost = clauses.iter().map(|c| c.cost).sum();
        PlanCostReport { clauses, out_rows: rows, total_cost }
    }
}

/// Visit every permutation of `items` (recursive swap enumeration).
fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TpmVar;
    use xqp_xml::parse_document;
    use xqp_xpath::{parse_path, PatternGraph};

    fn stats() -> DocStatistics {
        let doc = parse_document(
            "<bib>\
             <book year=\"1\"><title>a</title><author>x</author><author>y</author></book>\
             <book year=\"2\"><title>b</title><author>z</author></book>\
             <article><title>c</title></article>\
             </bib>",
        )
        .unwrap();
        DocStatistics::from_document(&doc)
    }

    #[test]
    fn counts_from_document() {
        let s = stats();
        assert_eq!(s.tag_count("book"), 2);
        assert_eq!(s.tag_count("author"), 3);
        assert_eq!(s.tag_count("title"), 3);
        assert_eq!(s.tag_count("year"), 2); // attributes counted
        assert_eq!(s.tag_count("absent"), 0);
        assert_eq!(s.tag_count("*"), s.element_count);
        assert_eq!(s.element_count, 10);
        assert!(s.max_depth >= 3);
    }

    #[test]
    fn vertex_cardinality_uses_tags_and_constraints() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book[@year = 1]").unwrap()).unwrap();
        let book = g.vertices.iter().position(|v| v.label == "book").unwrap();
        let year = g.vertices.iter().position(|v| v.label == "year").unwrap();
        assert_eq!(cm.vertex_cardinality(&g, book), 2.0);
        // 2 year attributes × 0.1 equality selectivity
        assert!((cm.vertex_cardinality(&g, year) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pattern_cardinality_monotone_in_constraints() {
        let s = stats();
        let cm = CostModel::new(&s);
        let free = PatternGraph::from_path(&parse_path("/bib/book").unwrap()).unwrap();
        let constrained =
            PatternGraph::from_path(&parse_path("/bib/book[@year = 1]").unwrap()).unwrap();
        assert!(cm.pattern_cardinality(&constrained) < cm.pattern_cardinality(&free));
        assert!(cm.pattern_cardinality(&free) <= 2.0 + 1e-9);
    }

    #[test]
    fn unsatisfiable_pattern_is_zero() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib[1 = 2]").unwrap()).unwrap();
        assert_eq!(cm.pattern_cardinality(&g), 0.0);
    }

    #[test]
    fn join_order_sorts_ascending() {
        let s = stats();
        let cm = CostModel::new(&s);
        let order = cm.choose_join_order(&[100.0, 1.0, 50.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn good_join_order_is_cheaper() {
        let s = stats();
        let cm = CostModel::new(&s);
        let cards = [1000.0, 10.0, 500.0];
        let good: Vec<f64> = cm.choose_join_order(&cards).iter().map(|&i| cards[i]).collect();
        let bad: Vec<f64> = vec![1000.0, 500.0, 10.0];
        assert!(cm.binary_join_pipeline_cost(&good) < cm.binary_join_pipeline_cost(&bad));
    }

    #[test]
    fn nok_cost_is_one_scan() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book[author]/title").unwrap()).unwrap();
        assert_eq!(cm.nok_scan_cost(&g), s.node_count as f64);
        // A twig over rare tags costs less than a full scan; over every tag
        // it can cost more. Here streams are small:
        assert!(cm.twig_cost(&g) < cm.nok_scan_cost(&g) * 2.0);
    }

    #[test]
    fn choose_access_prefers_nok_for_nok_only_patterns() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book/title").unwrap()).unwrap();
        assert!(g.is_nok_only());
        let (access, cost) = cm.choose_access(&g);
        assert_eq!(access, TpmAccess::NokScan);
        assert_eq!(cost, cm.nok_scan_cost(&g));
    }

    #[test]
    fn choose_access_picks_twig_when_streams_are_sparse() {
        // 1000 nodes but the queried tags are rare → twig beats the scan.
        let mut tags = HashMap::new();
        tags.insert("bib".to_string(), 1usize);
        tags.insert("book".to_string(), 3);
        tags.insert("title".to_string(), 3);
        let s = DocStatistics::from_counts(1000, 900, tags, 4);
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib//book/title").unwrap()).unwrap();
        assert!(!g.is_nok_only());
        let (access, cost) = cm.choose_access(&g);
        assert_eq!(access, TpmAccess::TwigStack);
        assert_eq!(cost, cm.twig_cost(&g));
        // Every named access method has a finite cost.
        for a in [TpmAccess::NokScan, TpmAccess::TwigStack, TpmAccess::BinaryJoin] {
            assert!(cm.access_cost(&g, a).is_finite());
        }
    }

    #[test]
    fn expr_cardinality_uses_last_step_tag() {
        let s = stats();
        let cm = CostModel::new(&s);
        let authors = Expr::doc_path(parse_path("/bib/book/author").unwrap());
        assert_eq!(cm.expr_cardinality(&authors), 3.0);
        assert_eq!(cm.expr_cardinality(&Expr::lit(1i64)), 1.0);
        let seq = Expr::SequenceExpr(vec![authors.clone(), authors]);
        assert_eq!(cm.expr_cardinality(&seq), 6.0);
    }

    #[test]
    fn cost_plan_propagates_cardinality_through_clauses() {
        let s = stats();
        let cm = CostModel::new(&s);
        // for $b in doc()/bib/book  where …  return $b/title
        let plan = LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::Where {
                input: Box::new(LogicalPlan::ForBind {
                    input: Box::new(LogicalPlan::EnvRoot),
                    var: "b".into(),
                    source: Expr::doc_path(parse_path("/bib/book").unwrap()),
                }),
                cond: Expr::lit(true),
            }),
            expr: Expr::var_path("b", parse_path("title").unwrap()),
        };
        let report = cm.cost_plan(&plan);
        assert_eq!(report.clauses.len(), 4);
        // EnvRoot → 1 row, for → 2 books, where → damped, return unchanged.
        assert_eq!(report.clauses[0].rows, 1.0);
        assert_eq!(report.clauses[1].rows, 2.0);
        assert!(report.clauses[2].rows < 2.0);
        assert_eq!(report.out_rows, report.clauses[3].rows);
        assert!(report.total_cost > 0.0);
    }

    #[test]
    fn cost_plan_tpm_bind_reports_access_choice() {
        let s = stats();
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/bib/book/author").unwrap()).unwrap();
        let book = g.vertices.iter().position(|v| v.label == "book").unwrap();
        let plan = LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::TpmBind {
                input: Box::new(LogicalPlan::EnvRoot),
                pattern: g,
                vars: vec![TpmVar { var: "b".into(), vertex: book, one_to_many: true }],
            }),
            expr: Expr::var("b"),
        };
        let report = cm.cost_plan(&plan);
        let tpm = &report.clauses[1];
        let (access, cost) = tpm.access.expect("τ clause must report its access method");
        assert_eq!(access, TpmAccess::NokScan);
        assert!(cost > 0.0);
        assert!((tpm.rows - 2.0).abs() < 1e-9); // two books
    }

    #[test]
    fn costing_an_empty_document_is_finite() {
        // Zero nodes, zero elements, no tags: every estimate must come out
        // finite and non-negative — no division by zero, no underflow.
        let s = DocStatistics::default();
        let cm = CostModel::new(&s);
        let g =
            PatternGraph::from_path(&parse_path("/bib//book[@year = 1]/text()").unwrap()).unwrap();
        for v in 0..g.vertices.len() {
            let c = cm.vertex_cardinality(&g, v);
            assert!(c.is_finite() && c >= 0.0, "vertex {v}: {c}");
        }
        assert!(cm.pattern_cardinality(&g).is_finite());
        for a in [TpmAccess::NokScan, TpmAccess::TwigStack, TpmAccess::BinaryJoin] {
            let c = cm.access_cost(&g, a);
            assert!(c.is_finite() && c >= 0.0, "{a:?}: {c}");
        }
        let (_, cost) = cm.choose_access(&g);
        assert!(cost.is_finite());
        // Whole-plan costing over the empty document.
        let plan = LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::OrderBy {
                input: Box::new(LogicalPlan::ForBind {
                    input: Box::new(LogicalPlan::EnvRoot),
                    var: "b".into(),
                    source: Expr::doc_path(parse_path("/bib/book").unwrap()),
                }),
                keys: vec![],
            }),
            expr: Expr::var("b"),
        };
        let report = cm.cost_plan(&plan);
        assert!(report.total_cost.is_finite() && report.total_cost >= 0.0);
        assert!(report.out_rows.is_finite());
    }

    #[test]
    fn text_cardinality_saturates_on_inconsistent_counts() {
        // element_count > node_count (a from_counts caller bug) must clamp
        // to zero, not wrap to 2^64.
        let s = DocStatistics::from_counts(3, 10, HashMap::new(), 2);
        let cm = CostModel::new(&s);
        let g = PatternGraph::from_path(&parse_path("/a/text()").unwrap()).unwrap();
        let text = g
            .vertices
            .iter()
            .position(|v| matches!(v.kind, VertexKind::Text))
            .expect("pattern has a text vertex");
        assert_eq!(cm.vertex_cardinality(&g, text), 0.0);
    }

    #[test]
    fn from_counts_constructor() {
        let mut tags = HashMap::new();
        tags.insert("a".to_string(), 5usize);
        let s = DocStatistics::from_counts(10, 7, tags, 4);
        assert_eq!(s.tag_count("a"), 5);
        assert_eq!(s.tag_count("*"), 7);
        assert_eq!(s.max_depth, 4);
    }
}
