//! The `Env` sort — Definition 3 of the paper.
//!
//! > An environment is a layered, balanced tree structure ⟨N, A, V⟩ … All
//! > tree nodes at the same level form a layer. Each layer is associated
//! > with a variable or a boolean formula. The parent-child relationship
//! > between layers is either one-to-one or one-to-many, but not mixed.
//! > A path from the root to a leaf is a **total variable binding**.
//!
//! FLWOR clauses build the environment layer by layer (Example 1 / Fig. 2):
//! a `for` clause adds a **one-to-many** layer (one child per item of the
//! bound sequence — a leaf whose sequence is empty simply gets no children
//! and its partial binding dies), a `let` clause adds a **one-to-one** layer
//! (one child holding the whole sequence), and a `where` clause is a boolean
//! layer realized by pruning the paths on which the formula is false. The
//! `return` expression is evaluated once per total binding and the results
//! are concatenated.

use crate::value::Sequence;
use std::fmt;

/// How a layer multiplies bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// One-to-many (`for $v in …`).
    For,
    /// One-to-one (`let $v := …`).
    Let,
}

/// Metadata of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMeta {
    /// The variable this layer binds.
    pub var: String,
    /// For or let.
    pub kind: LayerKind,
}

#[derive(Debug, Clone)]
struct Slot<N> {
    value: Sequence<N>,
    parent: Option<usize>,
    /// Layer index, or `None` for the sentinel root.
    layer: Option<usize>,
}

/// A layered environment of variable bindings.
#[derive(Debug, Clone)]
pub struct Env<N> {
    layers: Vec<LayerMeta>,
    slots: Vec<Slot<N>>,
    /// Slots of the deepest layer whose partial bindings are still alive.
    frontier: Vec<usize>,
}

/// A read view of one (partial or total) binding: the variables bound along
/// a root-to-slot path.
pub struct Bindings<'a, N> {
    env: &'a Env<N>,
    /// Slot ids from the leaf up to (excluding) the sentinel root.
    chain: Vec<usize>,
}

impl<'a, N> Bindings<'a, N> {
    /// Look up a variable; inner layers shadow outer ones.
    pub fn get(&self, var: &str) -> Option<&'a Sequence<N>> {
        for &s in &self.chain {
            let layer = self.env.slots[s].layer.expect("chain never contains the sentinel");
            if self.env.layers[layer].var == var {
                return Some(&self.env.slots[s].value);
            }
        }
        None
    }

    /// All bound `(var, value)` pairs, outermost first.
    pub fn entries(&self) -> Vec<(&'a str, &'a Sequence<N>)> {
        self.chain
            .iter()
            .rev()
            .map(|&s| {
                let layer = self.env.slots[s].layer.expect("no sentinel in chain");
                (self.env.layers[layer].var.as_str(), &self.env.slots[s].value)
            })
            .collect()
    }
}

impl<N: Clone> Default for Env<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Clone> Env<N> {
    /// An environment with no layers: exactly one empty total binding.
    pub fn new() -> Self {
        Env {
            layers: Vec::new(),
            slots: vec![Slot { value: Vec::new(), parent: None, layer: None }],
            frontier: vec![0],
        }
    }

    /// Number of layers (bound variables).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Metadata of layer `i`.
    pub fn layer(&self, i: usize) -> &LayerMeta {
        &self.layers[i]
    }

    /// Number of total bindings (root-to-leaf paths still alive).
    pub fn total_binding_count(&self) -> usize {
        self.frontier.len()
    }

    fn bindings_for(&self, slot: usize) -> Bindings<'_, N> {
        let mut chain = Vec::new();
        let mut cur = Some(slot);
        while let Some(s) = cur {
            if self.slots[s].layer.is_some() {
                chain.push(s);
            }
            cur = self.slots[s].parent;
        }
        Bindings { env: self, chain }
    }

    /// Add a one-to-many (`for`) layer: `source` is evaluated once per
    /// current total binding; each item of the result becomes one child
    /// binding. Empty results kill the path.
    pub fn extend_for(
        &mut self,
        var: impl Into<String>,
        mut source: impl FnMut(&Bindings<'_, N>) -> Sequence<N>,
    ) {
        let layer = self.layers.len();
        self.layers.push(LayerMeta { var: var.into(), kind: LayerKind::For });
        let frontier = std::mem::take(&mut self.frontier);
        let mut next = Vec::new();
        for leaf in frontier {
            let seq = source(&self.bindings_for(leaf));
            for item in seq {
                let id = self.slots.len();
                self.slots.push(Slot { value: vec![item], parent: Some(leaf), layer: Some(layer) });
                next.push(id);
            }
        }
        self.frontier = next;
    }

    /// Add a one-to-one (`let`) layer: each binding gets one child holding
    /// the whole result sequence (possibly empty — `let` never kills paths).
    pub fn extend_let(
        &mut self,
        var: impl Into<String>,
        mut source: impl FnMut(&Bindings<'_, N>) -> Sequence<N>,
    ) {
        let layer = self.layers.len();
        self.layers.push(LayerMeta { var: var.into(), kind: LayerKind::Let });
        let frontier = std::mem::take(&mut self.frontier);
        let mut next = Vec::with_capacity(frontier.len());
        for leaf in frontier {
            let seq = source(&self.bindings_for(leaf));
            let id = self.slots.len();
            self.slots.push(Slot { value: seq, parent: Some(leaf), layer: Some(layer) });
            next.push(id);
        }
        self.frontier = next;
    }

    /// Apply a boolean (`where`) layer: prune total bindings on which the
    /// formula is false.
    pub fn filter(&mut self, mut pred: impl FnMut(&Bindings<'_, N>) -> bool) {
        let frontier = std::mem::take(&mut self.frontier);
        self.frontier =
            frontier.into_iter().filter(|&leaf| pred(&self.bindings_for(leaf))).collect();
    }

    /// Reorder total bindings by a sort key (`order by`); stable.
    pub fn sort_bindings_by<K: Ord>(&mut self, mut key: impl FnMut(&Bindings<'_, N>) -> K) {
        let mut keyed: Vec<(K, usize)> = std::mem::take(&mut self.frontier)
            .into_iter()
            .map(|leaf| (key(&self.bindings_for(leaf)), leaf))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        self.frontier = keyed.into_iter().map(|(_, l)| l).collect();
    }

    /// Evaluate `f` once per total binding, in order, collecting results.
    pub fn map_bindings<T>(&self, mut f: impl FnMut(&Bindings<'_, N>) -> T) -> Vec<T> {
        self.frontier.iter().map(|&leaf| f(&self.bindings_for(leaf))).collect()
    }

    /// Nodes in layer `i` (for structure inspection / the Fig. 2 test).
    pub fn layer_width(&self, i: usize) -> usize {
        self.slots.iter().filter(|s| s.layer == Some(i)).count()
    }
}

impl<N: Clone + fmt::Debug> fmt::Display for Env<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.layers.iter().enumerate() {
            let kind = match l.kind {
                LayerKind::For => "in",
                LayerKind::Let => ":=",
            };
            writeln!(f, "layer {}: ${} {} …  width {}", i, l.var, kind, self.layer_width(i))?;
        }
        writeln!(f, "total bindings: {}", self.total_binding_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Item;
    use xqp_xml::Atomic;

    fn atoms(vals: &[i64]) -> Sequence<u32> {
        vals.iter().map(|&v| Item::Atom(Atomic::Integer(v))).collect()
    }

    fn label(s: &str) -> Sequence<u32> {
        vec![Item::Atom(Atomic::Str(s.into()))]
    }

    #[test]
    fn empty_env_has_one_binding() {
        let e: Env<u32> = Env::new();
        assert_eq!(e.total_binding_count(), 1);
        assert_eq!(e.layer_count(), 0);
    }

    #[test]
    fn for_layer_multiplies() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("a", |_| atoms(&[1, 2, 3]));
        assert_eq!(e.total_binding_count(), 3);
        e.extend_for("b", |_| atoms(&[10, 20]));
        assert_eq!(e.total_binding_count(), 6);
        assert_eq!(e.layer(0).kind, LayerKind::For);
    }

    #[test]
    fn let_layer_is_one_to_one() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("a", |_| atoms(&[1, 2]));
        e.extend_let("s", |b| {
            // $s := ($a, $a)
            let a = b.get("a").unwrap().clone();
            let mut out = a.clone();
            out.extend(a);
            out
        });
        assert_eq!(e.total_binding_count(), 2);
        let lens = e.map_bindings(|b| b.get("s").unwrap().len());
        assert_eq!(lens, [2, 2]);
    }

    #[test]
    fn empty_for_kills_path_but_empty_let_does_not() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("a", |_| atoms(&[1, 2, 3]));
        e.extend_for("b", |b| {
            // only even $a get children
            match b.get("a").unwrap()[0].as_atom().unwrap() {
                Atomic::Integer(i) if i % 2 == 0 => atoms(&[100]),
                _ => vec![],
            }
        });
        assert_eq!(e.total_binding_count(), 1);
        let mut e2: Env<u32> = Env::new();
        e2.extend_for("a", |_| atoms(&[1, 2]));
        e2.extend_let("l", |_| vec![]);
        assert_eq!(e2.total_binding_count(), 2);
    }

    #[test]
    fn fig2_environment_has_13_total_bindings() {
        // The paper's Fig. 2: $a in E1 (3 roots a1,a2,a3); $b in E2 with
        // fan-outs (2,1,3); let $c, let $d; $e in E5 with fan-outs
        // b11→3, b12→2, b21→2, b31→2, b32→3, b33→1  ⇒ 13 paths.
        let mut e: Env<u32> = Env::new();
        e.extend_for("a", |_| {
            ["a1", "a2", "a3"].iter().map(|s| Item::Atom(Atomic::Str((*s).into()))).collect()
        });
        e.extend_for("b", |b| {
            let a = b.get("a").unwrap()[0].as_atom().unwrap().as_string();
            let labels: &[&str] = match a.as_str() {
                "a1" => &["b11", "b12"],
                "a2" => &["b21"],
                _ => &["b31", "b32", "b33"],
            };
            labels.iter().map(|s| Item::Atom(Atomic::Str((*s).into()))).collect()
        });
        e.extend_let("c", |b| {
            let bv = b.get("b").unwrap()[0].as_atom().unwrap().as_string();
            label(&format!("c{}", &bv[1..]))
        });
        e.extend_let("d", |b| {
            let bv = b.get("b").unwrap()[0].as_atom().unwrap().as_string();
            label(&format!("d{}", &bv[1..]))
        });
        e.extend_for("e", |b| {
            let bv = b.get("b").unwrap()[0].as_atom().unwrap().as_string();
            let n = match bv.as_str() {
                "b11" => 3,
                "b12" => 2,
                "b21" => 2,
                "b31" => 2,
                "b32" => 3,
                "b33" => 1,
                _ => 0,
            };
            (0..n).map(|i| Item::Atom(Atomic::Str(format!("e{}{}", &bv[1..], i + 1)))).collect()
        });
        assert_eq!(e.layer_count(), 5);
        assert_eq!(e.total_binding_count(), 13);
        // Layer widths: 3 roots, 6 b's, 6 c's, 6 d's, 13 e's.
        assert_eq!(e.layer_width(0), 3);
        assert_eq!(e.layer_width(1), 6);
        assert_eq!(e.layer_width(2), 6);
        assert_eq!(e.layer_width(3), 6);
        assert_eq!(e.layer_width(4), 13);
        // Every total binding sees all five variables.
        let complete =
            e.map_bindings(|b| ["a", "b", "c", "d", "e"].iter().all(|v| b.get(v).is_some()));
        assert!(complete.iter().all(|&ok| ok));
    }

    #[test]
    fn where_prunes_paths() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("x", |_| atoms(&[1, 2, 3, 4]));
        e.filter(|b| {
            matches!(b.get("x").unwrap()[0].as_atom().unwrap(), Atomic::Integer(i) if i % 2 == 0)
        });
        assert_eq!(e.total_binding_count(), 2);
        let vals = e.map_bindings(|b| b.get("x").unwrap()[0].as_atom().unwrap().as_string());
        assert_eq!(vals, ["2", "4"]);
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("x", |_| atoms(&[1]));
        e.extend_for("x", |_| atoms(&[99]));
        let vals = e.map_bindings(|b| b.get("x").unwrap()[0].as_atom().unwrap().as_string());
        assert_eq!(vals, ["99"]);
    }

    #[test]
    fn sort_bindings_reorders() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("x", |_| atoms(&[3, 1, 2]));
        e.sort_bindings_by(|b| match b.get("x").unwrap()[0].as_atom().unwrap() {
            Atomic::Integer(i) => *i,
            _ => 0,
        });
        let vals = e.map_bindings(|b| b.get("x").unwrap()[0].as_atom().unwrap().as_string());
        assert_eq!(vals, ["1", "2", "3"]);
    }

    #[test]
    fn entries_lists_outermost_first() {
        let mut e: Env<u32> = Env::new();
        e.extend_for("a", |_| atoms(&[1]));
        e.extend_let("b", |_| atoms(&[2]));
        let names =
            e.map_bindings(|b| b.entries().iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>());
        assert_eq!(names[0], ["a", "b"]);
    }

    #[test]
    fn missing_variable_is_none() {
        let e: Env<u32> = Env::new();
        let found = e.map_bindings(|b| b.get("nope").is_some());
        assert_eq!(found, [false]);
    }
}
