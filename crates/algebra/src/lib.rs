//! # xqp-algebra — the paper's logical algebra for XQuery
//!
//! §3 of the paper defines a logical algebra whose sorts and operators this
//! crate implements:
//!
//! * **Sorts** (§3.2): flat [`Sequence`]s of [`Item`]s, [`Nested`] lists
//!   (`NestedList`), labeled trees (the arena `Document` of `xqp-xml`),
//!   pattern graphs (Definition 1, from `xqp-xpath`), **schema trees**
//!   (Definition 2, [`schema::SchemaTree`]) and **environments**
//!   (Definition 3, [`env::Env`]) — the layered balanced tree of FLWOR
//!   variable bindings whose root-to-leaf paths are the total bindings.
//! * **Operators** (Table 1): σs, ⋈s, πs (structure-based), σv, ⋈v
//!   (value-based) and the hybrid τ (tree pattern matching) and γ (tree
//!   construction), as the [`plan::PathOp`] and [`plan::LogicalPlan`]
//!   operator trees. τ sits at the bottom of a plan, γ at the top, exactly
//!   as §3.2 prescribes.
//! * **Rewrite rules** (the paper's §6 "planned work", realized here):
//!   navigation-to-TPM fusion, predicate pushdown into pattern graphs,
//!   constant folding, dead-binding elimination and join-order selection —
//!   see [`rewrite`].
//! * **Cost model** (left as future work in the paper; built here as the
//!   natural extension): per-tag cardinality statistics driving join order
//!   and access-method choice — see [`cost`].
//!
//! The crate is purely logical: physical evaluation lives in `xqp-exec`,
//! which interprets these trees against the succinct storage.

pub mod cost;
pub mod env;
pub mod expr;
pub mod plan;
pub mod rewrite;
pub mod rules;
pub mod schema;
pub mod value;

pub use cost::{ClauseEstimate, CostModel, DocStatistics, PlanCostReport, TpmAccess};
pub use env::Env;
pub use expr::Expr;
pub use plan::{JoinEdge, JoinSide, JoinSideDef, LogicalPlan, OrderKey, PathOp, TpmVar};
pub use rewrite::{optimize, optimize_expr, optimize_path, RewriteReport, RuleSet, RuleTrace};
pub use rules::{default_rules, ApplyOrder, LogicalOptimizerRule, REWRITE_BUDGET};
pub use schema::{SchemaNode, SchemaTree};
pub use value::{Item, Nested, Sequence};
