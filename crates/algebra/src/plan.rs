//! Logical operator trees.
//!
//! Two levels, mirroring the paper's plan shape (§3.2: τ at the bottom, γ at
//! the top, list operators in between):
//!
//! * [`PathOp`] — the Table-1 operator tree evaluating one path expression
//!   over a context sequence: navigation steps (πs/σs), value selections
//!   (σv), tree pattern matching (τ), structural joins (⋈s), value joins
//!   (⋈v) and document-order dedup.
//! * [`LogicalPlan`] — the FLWOR pipeline building the [`crate::env::Env`]
//!   (Definition 3) layer by layer: `EnvRoot → ForBind/LetBind* → Where? →
//!   OrderBy? → ReturnClause`. The rewrite rule R5 can replace a prefix of
//!   bindings with a single [`LogicalPlan::TpmBind`], evaluating several
//!   bindings in one tree-pattern scan (the Fig. 1 list-comprehension
//!   argument).

use crate::expr::Expr;
use std::collections::HashSet;
use std::fmt;
use xqp_xpath::{CmpOp, PRel, PathExpr, PatternGraph, Step, ValueConstraint};

/// Which side of a structural join is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Return the ancestor-side nodes.
    Anc,
    /// Return the descendant-side nodes.
    Desc,
}

/// One sort key of an `order by` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression.
    pub expr: Expr,
    /// Descending order?
    pub descending: bool,
}

/// One variable bound by a [`LogicalPlan::TpmBind`] operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpmVar {
    /// Variable name (without `$`).
    pub var: String,
    /// The pattern vertex whose matches bind the variable.
    pub vertex: usize,
    /// `true` for a `for`-style (one binding per match) variable, `false`
    /// for a `let`-style variable (all matches under the same outer binding
    /// collected into one sequence).
    pub one_to_many: bool,
}

/// One side of a [`LogicalPlan::JoinGraph`]: a `for` binding whose source
/// is independent of the other sides (a ⋈v input in Table-1 terms).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSideDef {
    /// Variable name (without `$`).
    pub var: String,
    /// Binding sequence; must not reference any other side's variable.
    pub source: Expr,
}

/// One equi-join edge of a [`LogicalPlan::JoinGraph`], connecting two sides
/// by general-comparison equality of `side.key` values. A `None` key
/// compares the binding itself (`$v = …`); `Some(path)` compares
/// `$v/path = …` with a relative path.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Index of the left side in [`LogicalPlan::JoinGraph::sides`].
    pub left: usize,
    /// Index of the right side.
    pub right: usize,
    /// Relative path applied to the left binding (`None` = the binding).
    pub left_key: Option<PathExpr>,
    /// Relative path applied to the right binding.
    pub right_key: Option<PathExpr>,
}

impl JoinEdge {
    /// Render one side of the edge for EXPLAIN.
    fn render_side(var: &str, key: &Option<PathExpr>) -> String {
        match key {
            Some(p) => format!("${var}/{p}"),
            None => format!("${var}"),
        }
    }

    /// Render the whole edge for EXPLAIN: `$a/p = $b/q`.
    pub fn render(&self, sides: &[JoinSideDef]) -> String {
        format!(
            "{} = {}",
            JoinEdge::render_side(&sides[self.left].var, &self.left_key),
            JoinEdge::render_side(&sides[self.right].var, &self.right_key)
        )
    }

    /// The edge as a comparison expression over the side variables — the
    /// nested-loop reference form of the join predicate, which any faster
    /// physical join must match byte-for-byte.
    pub fn as_expr(&self, sides: &[JoinSideDef]) -> Expr {
        let end = |idx: usize, key: &Option<PathExpr>| match key {
            Some(p) => Expr::var_path(sides[idx].var.clone(), p.clone()),
            None => Expr::var(sides[idx].var.clone()),
        };
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(end(self.left, &self.left_key)),
            rhs: Box::new(end(self.right, &self.right_key)),
        }
    }
}

/// A path-evaluation operator tree (the Table-1 operators).
#[derive(Debug, Clone, PartialEq)]
pub enum PathOp {
    /// The context sequence the path is applied to.
    Input,
    /// One navigation step (πs along the axis composed with σs on the name
    /// test, plus the step's predicates) — the naive navigational form.
    Step {
        /// Upstream operator.
        input: Box<PathOp>,
        /// The location step.
        step: Step,
    },
    /// τ applied to each context node: match the pattern graph in the
    /// node's subtree and return the single output vertex's matches.
    TpmFrom {
        /// Upstream operator.
        input: Box<PathOp>,
        /// Pattern graph (Definition 1) with exactly one output vertex.
        pattern: PatternGraph,
    },
    /// σs — keep nodes whose tag matches.
    SelectTag {
        /// Upstream operator.
        input: Box<PathOp>,
        /// Name test (`*` allowed).
        test: String,
    },
    /// σv — keep nodes whose typed value satisfies the constraint.
    SelectValue {
        /// Upstream operator.
        input: Box<PathOp>,
        /// The ⟨op, literal⟩ constraint.
        constraint: ValueConstraint,
    },
    /// ⋈s — structural join of two node sets.
    StructuralJoin {
        /// Ancestor/parent side.
        anc: Box<PathOp>,
        /// Descendant/child side.
        desc: Box<PathOp>,
        /// Parent-child or ancestor-descendant.
        rel: PRel,
        /// Which side is returned.
        output: JoinSide,
    },
    /// ⋈v — join two node sets on their typed values.
    ValueJoin {
        /// Left side.
        left: Box<PathOp>,
        /// Right side.
        right: Box<PathOp>,
        /// Comparison operator.
        op: CmpOp,
    },
    /// Sort into document order and remove duplicates (path-expression
    /// result normalization).
    DedupSort {
        /// Upstream operator.
        input: Box<PathOp>,
    },
}

impl PathOp {
    /// The naive navigational plan for a path: one [`PathOp::Step`] per
    /// location step, wrapped in a final dedup/sort.
    pub fn compile_naive(path: &PathExpr) -> PathOp {
        let mut op = PathOp::Input;
        for step in &path.steps {
            op = PathOp::Step { input: Box::new(op), step: step.clone() };
        }
        PathOp::DedupSort { input: Box::new(op) }
    }

    /// Count operators of each interesting kind (used by rewrite tests and
    /// EXPLAIN summaries): `(steps, tpms, structural_joins)`.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut steps = 0;
        let mut tpms = 0;
        let mut joins = 0;
        self.visit(&mut |op| match op {
            PathOp::Step { .. } => steps += 1,
            PathOp::TpmFrom { .. } => tpms += 1,
            PathOp::StructuralJoin { .. } => joins += 1,
            _ => {}
        });
        (steps, tpms, joins)
    }

    /// Visit every operator, children first.
    pub fn visit(&self, f: &mut impl FnMut(&PathOp)) {
        match self {
            PathOp::Input => {}
            PathOp::Step { input, .. }
            | PathOp::TpmFrom { input, .. }
            | PathOp::SelectTag { input, .. }
            | PathOp::SelectValue { input, .. }
            | PathOp::DedupSort { input } => input.visit(f),
            PathOp::StructuralJoin { anc, desc, .. } => {
                anc.visit(f);
                desc.visit(f);
            }
            PathOp::ValueJoin { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
        f(self);
    }
}

impl fmt::Display for PathOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathOp::Input => write!(f, "input"),
            PathOp::Step { input, step } => {
                let axis = step.axis.keyword();
                write!(f, "π[{}::{}]({input})", axis, step.test.label())
            }
            PathOp::TpmFrom { input, pattern } => {
                write!(f, "τ[{} vertices]({input})", pattern.pattern_size())
            }
            PathOp::SelectTag { input, test } => write!(f, "σs[{test}]({input})"),
            PathOp::SelectValue { input, constraint } => {
                write!(f, "σv[{} {}]({input})", constraint.op.symbol(), constraint.literal)
            }
            PathOp::StructuralJoin { anc, desc, rel, output } => {
                let r = match rel {
                    PRel::Child => "/",
                    PRel::Descendant => "//",
                };
                let side = match output {
                    JoinSide::Anc => "anc",
                    JoinSide::Desc => "desc",
                };
                write!(f, "⋈s[{r}→{side}]({anc}, {desc})")
            }
            PathOp::ValueJoin { left, right, op } => {
                write!(f, "⋈v[{}]({left}, {right})", op.symbol())
            }
            PathOp::DedupSort { input } => write!(f, "dedup({input})"),
        }
    }
}

/// A FLWOR logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// The empty environment (one empty total binding).
    EnvRoot,
    /// `for $var in source` — a one-to-many Env layer.
    ForBind {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Variable name (without `$`).
        var: String,
        /// Binding sequence, evaluated per upstream binding.
        source: Expr,
    },
    /// `let $var := source` — a one-to-one Env layer.
    LetBind {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Variable name.
        var: String,
        /// Bound expression.
        source: Expr,
    },
    /// `where cond` — a boolean layer pruning bindings.
    Where {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Condition (effective boolean value).
        cond: Expr,
    },
    /// `order by` — reorder total bindings.
    OrderBy {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<OrderKey>,
    },
    /// `return expr` — evaluate once per total binding, concatenating.
    ReturnClause {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Returned expression.
        expr: Expr,
    },
    /// An isolated value-join graph (rewrite R12, after Grust et al.'s
    /// "XQuery Join Graph Isolation"): a run of independent `for` bindings
    /// whose `where` clause equated values across them. Each side binds its
    /// variable per upstream binding; edges prune the cross product by
    /// general-comparison equality. Sides stay in source order — FLWOR
    /// tuple order is observable — so join-order enumeration informs the
    /// physical probe strategy, not the output order.
    JoinGraph {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// The `for` bindings joined, in source order.
        sides: Vec<JoinSideDef>,
        /// Equi-join edges between sides.
        edges: Vec<JoinEdge>,
    },
    /// Several for/let bindings evaluated by a **single tree-pattern scan**
    /// (rewrite R5): each `(var, vertex)` pair binds the variable to that
    /// pattern vertex's match in each embedding.
    TpmBind {
        /// Upstream plan.
        input: Box<LogicalPlan>,
        /// Merged pattern graph over all bindings.
        pattern: PatternGraph,
        /// Variable bindings, outermost variable first.
        vars: Vec<TpmVar>,
    },
}

impl LogicalPlan {
    /// The upstream plan, if any.
    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::EnvRoot => None,
            LogicalPlan::ForBind { input, .. }
            | LogicalPlan::LetBind { input, .. }
            | LogicalPlan::Where { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::ReturnClause { input, .. }
            | LogicalPlan::JoinGraph { input, .. }
            | LogicalPlan::TpmBind { input, .. } => Some(input),
        }
    }

    /// Free variables of the whole plan (variables referenced but not bound
    /// by its own for/let/TPM layers).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        let mut bound = Vec::new();
        self.collect_free(&mut out, &mut bound);
        out
    }

    /// Collect free variables; restores `bound` before returning.
    pub fn collect_free(&self, out: &mut HashSet<String>, bound: &mut Vec<String>) {
        let depth = bound.len();
        self.collect_free_inner(out, bound);
        bound.truncate(depth);
    }

    fn collect_free_inner(&self, out: &mut HashSet<String>, bound: &mut Vec<String>) {
        match self {
            LogicalPlan::EnvRoot => {}
            LogicalPlan::ForBind { input, var, source }
            | LogicalPlan::LetBind { input, var, source } => {
                input.collect_free_inner(out, bound);
                source.collect_free(out, bound);
                bound.push(var.clone());
            }
            LogicalPlan::Where { input, cond } => {
                input.collect_free_inner(out, bound);
                cond.collect_free(out, bound);
            }
            LogicalPlan::OrderBy { input, keys } => {
                input.collect_free_inner(out, bound);
                for k in keys {
                    k.expr.collect_free(out, bound);
                }
            }
            LogicalPlan::ReturnClause { input, expr } => {
                input.collect_free_inner(out, bound);
                expr.collect_free(out, bound);
            }
            LogicalPlan::JoinGraph { input, sides, .. } => {
                input.collect_free_inner(out, bound);
                for s in sides {
                    s.source.collect_free(out, bound);
                    bound.push(s.var.clone());
                }
            }
            LogicalPlan::TpmBind { input, vars, .. } => {
                input.collect_free_inner(out, bound);
                for v in vars {
                    bound.push(v.var.clone());
                }
            }
        }
    }

    /// True if any clause expression calls `position()`/`last()`. A
    /// focus-sensitive plan must keep its `for` layers intact (so the
    /// enumeration the focus is defined over survives lowering); rewrites
    /// that restructure bindings (R5, R12) check this and stand down.
    pub fn uses_focus(&self) -> bool {
        let clause_uses = match self {
            LogicalPlan::EnvRoot | LogicalPlan::TpmBind { .. } => false,
            LogicalPlan::ForBind { source, .. } | LogicalPlan::LetBind { source, .. } => {
                source.uses_focus()
            }
            LogicalPlan::Where { cond, .. } => cond.uses_focus(),
            LogicalPlan::OrderBy { keys, .. } => keys.iter().any(|k| k.expr.uses_focus()),
            LogicalPlan::ReturnClause { expr, .. } => expr.uses_focus(),
            LogicalPlan::JoinGraph { sides, .. } => sides.iter().any(|s| s.source.uses_focus()),
        };
        clause_uses || self.input().is_some_and(LogicalPlan::uses_focus)
    }

    /// Rewrite every embedded expression bottom-up.
    pub fn map_exprs(self, f: &mut impl FnMut(Expr) -> Expr) -> LogicalPlan {
        match self {
            LogicalPlan::EnvRoot => LogicalPlan::EnvRoot,
            LogicalPlan::ForBind { input, var, source } => {
                LogicalPlan::ForBind { input: Box::new(input.map_exprs(f)), var, source: f(source) }
            }
            LogicalPlan::LetBind { input, var, source } => {
                LogicalPlan::LetBind { input: Box::new(input.map_exprs(f)), var, source: f(source) }
            }
            LogicalPlan::Where { input, cond } => {
                LogicalPlan::Where { input: Box::new(input.map_exprs(f)), cond: f(cond) }
            }
            LogicalPlan::OrderBy { input, keys } => LogicalPlan::OrderBy {
                input: Box::new(input.map_exprs(f)),
                keys: keys
                    .into_iter()
                    .map(|k| OrderKey { expr: f(k.expr), descending: k.descending })
                    .collect(),
            },
            LogicalPlan::ReturnClause { input, expr } => {
                LogicalPlan::ReturnClause { input: Box::new(input.map_exprs(f)), expr: f(expr) }
            }
            LogicalPlan::JoinGraph { input, sides, edges } => LogicalPlan::JoinGraph {
                input: Box::new(input.map_exprs(f)),
                sides: sides
                    .into_iter()
                    .map(|s| JoinSideDef { var: s.var, source: f(s.source) })
                    .collect(),
                edges,
            },
            LogicalPlan::TpmBind { input, pattern, vars } => {
                LogicalPlan::TpmBind { input: Box::new(input.map_exprs(f)), pattern, vars }
            }
        }
    }

    /// Number of operators in the pipeline (EnvRoot included).
    pub fn len(&self) -> usize {
        1 + self.input().map_or(0, LogicalPlan::len)
    }

    /// The clause pipeline bottom-up: `EnvRoot` first, this clause last.
    /// This is the order data flows in, and the order
    /// [`crate::cost::CostModel::cost_plan`] reports estimates in.
    pub fn clauses(&self) -> Vec<&LogicalPlan> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = Some(self);
        while let Some(c) = cur {
            out.push(c);
            cur = c.input();
        }
        out.reverse();
        out
    }

    /// Always false — a plan has at least `EnvRoot`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Multi-line EXPLAIN rendering, top operator first.
    pub fn explain(&self) -> String {
        let mut lines = Vec::new();
        self.explain_into(&mut lines);
        let mut out = String::new();
        for (i, l) in lines.iter().enumerate() {
            out.push_str(&"  ".repeat(i));
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    fn explain_into(&self, lines: &mut Vec<String>) {
        let line = match self {
            LogicalPlan::EnvRoot => "env-root".to_string(),
            LogicalPlan::ForBind { var, source, .. } => format!("for ${var} in {source}"),
            LogicalPlan::LetBind { var, source, .. } => format!("let ${var} := {source}"),
            LogicalPlan::Where { cond, .. } => format!("where {cond}"),
            LogicalPlan::OrderBy { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.descending { " descending" } else { "" }))
                    .collect();
                format!("order by {}", ks.join(", "))
            }
            LogicalPlan::ReturnClause { expr, .. } => format!("return {expr}"),
            LogicalPlan::JoinGraph { sides, edges, .. } => {
                let es: Vec<String> = edges.iter().map(|e| e.render(sides)).collect();
                format!(
                    "join-graph [{}] ({} sides, {} edges)",
                    es.join(", "),
                    sides.len(),
                    edges.len()
                )
            }
            LogicalPlan::TpmBind { vars, pattern, .. } => {
                let vs: Vec<String> =
                    vars.iter().map(|v| format!("${}←v{}", v.var, v.vertex)).collect();
                format!(
                    "tpm-bind [{}] over pattern({} vertices)",
                    vs.join(", "),
                    pattern.pattern_size()
                )
            }
        };
        lines.push(line);
        if let Some(i) = self.input() {
            i.explain_into(lines);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_xpath::parse_path;

    fn fig1_plan() -> LogicalPlan {
        // for $b in doc()/bib/book let $t := $b/title let $a := $b/author
        // return <result>{$t}{$a}</result> (constructor elided here)
        LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::LetBind {
                input: Box::new(LogicalPlan::LetBind {
                    input: Box::new(LogicalPlan::ForBind {
                        input: Box::new(LogicalPlan::EnvRoot),
                        var: "b".into(),
                        source: Expr::doc_path(parse_path("/bib/book").unwrap()),
                    }),
                    var: "t".into(),
                    source: Expr::var_path("b", parse_path("title").unwrap()),
                }),
                var: "a".into(),
                source: Expr::var_path("b", parse_path("author").unwrap()),
            }),
            expr: Expr::SequenceExpr(vec![Expr::var("t"), Expr::var("a")]),
        }
    }

    #[test]
    fn naive_path_compilation() {
        let p = parse_path("/bib/book[author]/title").unwrap();
        let op = PathOp::compile_naive(&p);
        let (steps, tpms, joins) = op.op_counts();
        assert_eq!((steps, tpms, joins), (3, 0, 0));
        assert!(matches!(op, PathOp::DedupSort { .. }));
    }

    #[test]
    fn plan_free_vars_respect_binding_order() {
        let plan = fig1_plan();
        // $b, $t, $a are all bound inside; nothing is free.
        assert!(plan.free_vars().is_empty());
    }

    #[test]
    fn unbound_var_is_free() {
        let plan = LogicalPlan::ReturnClause {
            input: Box::new(LogicalPlan::EnvRoot),
            expr: Expr::var("ghost"),
        };
        assert_eq!(plan.free_vars().len(), 1);
        assert!(plan.free_vars().contains("ghost"));
    }

    #[test]
    fn var_used_before_binding_is_free() {
        // for $x in $y/... — $y unbound
        let plan = LogicalPlan::ForBind {
            input: Box::new(LogicalPlan::EnvRoot),
            var: "x".into(),
            source: Expr::var_path("y", parse_path("a").unwrap()),
        };
        assert!(plan.free_vars().contains("y"));
        assert!(!plan.free_vars().contains("x"));
    }

    #[test]
    fn plan_len_and_explain() {
        let plan = fig1_plan();
        assert_eq!(plan.len(), 5);
        let ex = plan.explain();
        let lines: Vec<&str> = ex.lines().collect();
        assert!(lines[0].starts_with("return"));
        assert!(lines[4].trim_start().starts_with("env-root"));
        assert!(ex.contains("for $b in doc()/bib/book"));
        assert!(ex.contains("let $t := $b/title"));
    }

    #[test]
    fn map_exprs_rewrites_all_clauses() {
        let plan = fig1_plan();
        let mut count = 0;
        let _ = plan.map_exprs(&mut |e| {
            count += 1;
            e
        });
        // for-source, two let-sources, return expr
        assert_eq!(count, 4);
    }

    #[test]
    fn pathop_display_is_informative() {
        let p = parse_path("/a//b").unwrap();
        let op = PathOp::compile_naive(&p);
        let s = op.to_string();
        assert!(s.contains("dedup"));
        assert!(s.contains("π["));
        assert!(s.contains("input"));
    }

    #[test]
    fn structural_join_display() {
        let j = PathOp::StructuralJoin {
            anc: Box::new(PathOp::Input),
            desc: Box::new(PathOp::Input),
            rel: PRel::Descendant,
            output: JoinSide::Desc,
        };
        assert_eq!(j.to_string(), "⋈s[//→desc](input, input)");
        let (_, _, joins) = j.op_counts();
        assert_eq!(joins, 1);
    }
}
