//! Composable logical-optimizer rule framework.
//!
//! Each rewrite pass from [`crate::rewrite`] is wrapped in a named
//! [`LogicalOptimizerRule`], so rules compose, toggle individually (via
//! [`RuleSet`]) and unit-test in isolation. [`run_pipeline`] drives the
//! canonical pipeline to a fixpoint under [`REWRITE_BUDGET`], recording one
//! [`RuleTrace`] per attempted pass — `explain` renders these as per-rule
//! fired/skipped lines with a plan diff for every firing.
//!
//! Canonical order within one sweep:
//!
//! 1. `const-fold` (R8) — expose literal shapes to everything downstream.
//! 2. `prune-dead-lets` (R7) — drop work before it is fused or costed.
//! 3. `join-graph-isolation` (R12) — must run *before* FLWOR→TPM fusion,
//!    which would otherwise swallow the join's `for` run into one pattern
//!    scan and hide the ⋈v structure.
//! 4. `flwor-to-tpm` (R5, with R9 inside) — fuse binding runs.
//! 5. `prune-outputs` (R6) — drop unused TPM outputs the fusion created.
//! 6. `predicate-pushdown` (R10) — hoist residual filters past bindings.
//! 7. `projection-pushdown` (R11) — sink `let`s below remaining filters.
//! 8. `agg-orderby-prune` (R13) — drop sorts feeding order-insensitive
//!    aggregates, before lowering fixes the pipeline shape.
//! 9. `compile-paths` (R1/R2) — last, so every rule above sees surface
//!    paths, and nested FLWORs get the whole pipeline recursively.

use crate::plan::LogicalPlan;
use crate::rewrite::{
    agg_orderby_prune_pass, compile_paths_in_plan, const_fold_pass, flwor_to_tpm,
    join_isolation_pass, predicate_pushdown_pass, projection_pushdown_pass, prune_dead_pass,
    prune_outputs_pass, RewriteReport, RuleSet, RuleTrace,
};

/// Traversal direction a rule's pass uses over the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOrder {
    /// Clause pipeline walked from the top operator down (clause-list
    /// rewrites, pruning against what downstream needs).
    TopDown,
    /// Leaves first (expression folding, path compilation).
    BottomUp,
}

/// One named, individually toggleable logical rewrite.
pub trait LogicalOptimizerRule {
    /// Stable rule name, shown in `explain` and used by tests.
    fn name(&self) -> &'static str;
    /// Traversal direction of the pass.
    fn apply_order(&self) -> ApplyOrder;
    /// Is this rule on under `rules`?
    fn enabled(&self, rules: &RuleSet) -> bool;
    /// Apply the rule once. Returns `None` when the plan is left untouched
    /// (the rule "did not fire"); legacy `"R…"` tags are pushed into
    /// `report.applied` by the underlying pass itself.
    fn try_optimize(
        &self,
        plan: &LogicalPlan,
        rules: &RuleSet,
        report: &mut RewriteReport,
    ) -> Option<LogicalPlan>;
}

macro_rules! define_rule {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $order:ident, $enabled:expr, $apply:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl LogicalOptimizerRule for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn apply_order(&self) -> ApplyOrder {
                ApplyOrder::$order
            }
            fn enabled(&self, rules: &RuleSet) -> bool {
                let f: fn(&RuleSet) -> bool = $enabled;
                f(rules)
            }
            fn try_optimize(
                &self,
                plan: &LogicalPlan,
                rules: &RuleSet,
                report: &mut RewriteReport,
            ) -> Option<LogicalPlan> {
                let f: fn(LogicalPlan, &RuleSet, &mut RewriteReport) -> LogicalPlan = $apply;
                let out = f(plan.clone(), rules, report);
                (out != *plan).then_some(out)
            }
        }
    };
}

define_rule!(
    /// R8: constant folding (plus false-`where` short-circuit).
    ConstFold,
    "const-fold",
    BottomUp,
    |r| r.const_fold,
    |p, _, rep| const_fold_pass(p, rep)
);

define_rule!(
    /// R7: dead `let` elimination.
    PruneDeadLets,
    "prune-dead-lets",
    TopDown,
    |r| r.dead_let,
    |p, _, rep| prune_dead_pass(p, rep)
);

define_rule!(
    /// R12: isolate ⋈v equi-joins into an explicit join-graph node.
    JoinGraphIsolation,
    "join-graph-isolation",
    TopDown,
    |r| r.join_isolation,
    |p, _, rep| join_isolation_pass(p, rep)
);

define_rule!(
    /// R5 (+R9): fuse for/let runs into one tree-pattern scan.
    FlworToTpm,
    "flwor-to-tpm",
    BottomUp,
    |r| r.flwor_to_tpm,
    flwor_to_tpm
);

define_rule!(
    /// R6: stop materializing unused TPM outputs.
    PruneOutputs,
    "prune-outputs",
    TopDown,
    |r| r.prune_outputs,
    |p, _, rep| prune_outputs_pass(p, rep)
);

define_rule!(
    /// R10: hoist total `where` conjuncts past independent bindings.
    PredicatePushdown,
    "predicate-pushdown",
    TopDown,
    |r| r.predicate_pushdown,
    |p, _, rep| predicate_pushdown_pass(p, rep)
);

define_rule!(
    /// R11: sink total `let` bindings below independent filters.
    ProjectionPushdown,
    "projection-pushdown",
    TopDown,
    |r| r.projection_pushdown,
    |p, _, rep| projection_pushdown_pass(p, rep)
);

define_rule!(
    /// R13: drop `order by` under order-insensitive aggregates.
    AggOrderbyPrune,
    "agg-orderby-prune",
    BottomUp,
    |r| r.agg_orderby_prune,
    |p, _, rep| agg_orderby_prune_pass(p, rep)
);

define_rule!(
    /// R1/R2: compile surface paths into τ operator trees (always on —
    /// with R1 off it still lowers paths to the naive navigation cascade).
    CompilePaths,
    "compile-paths",
    BottomUp,
    |_| true,
    compile_paths_in_plan
);

/// The canonical pipeline, in application order (see the module docs for
/// why the order matters).
pub fn default_rules() -> Vec<Box<dyn LogicalOptimizerRule>> {
    vec![
        Box::new(ConstFold),
        Box::new(PruneDeadLets),
        Box::new(JoinGraphIsolation),
        Box::new(FlworToTpm),
        Box::new(PruneOutputs),
        Box::new(PredicatePushdown),
        Box::new(ProjectionPushdown),
        Box::new(AggOrderbyPrune),
        Box::new(CompilePaths),
    ]
}

/// Upper bound on rule firings per plan — a safety net against rewrite
/// cycles. Every shipped rule strictly decreases a finite measure, so real
/// plans converge long before the budget runs out.
pub const REWRITE_BUDGET: usize = 32;

/// Line diff of two plan renderings for [`RuleTrace::diff`]: `-` lines
/// disappeared, `+` lines appeared; a pure clause reorder (no line changes)
/// lists the new order with `·` markers.
fn plan_diff(before: &LogicalPlan, after: &LogicalPlan) -> Vec<String> {
    let b: Vec<String> = before.explain().lines().map(|l| l.trim_start().to_string()).collect();
    let a: Vec<String> = after.explain().lines().map(|l| l.trim_start().to_string()).collect();
    let mut diff = Vec::new();
    for l in &b {
        if !a.contains(l) {
            diff.push(format!("- {l}"));
        }
    }
    for l in &a {
        if !b.contains(l) {
            diff.push(format!("+ {l}"));
        }
    }
    if diff.is_empty() {
        for l in &a {
            diff.push(format!("· {l}"));
        }
    }
    diff
}

/// Drive the pipeline to a fixpoint: sweep all enabled rules in order,
/// repeat while any rule fires, stop at [`REWRITE_BUDGET`] firings. With
/// `trace` set, every attempted pass is recorded in `report.passes`
/// (nested-FLWOR sub-pipelines run untraced so the top-level trace stays
/// readable).
pub(crate) fn run_pipeline(
    mut plan: LogicalPlan,
    rules: &RuleSet,
    report: &mut RewriteReport,
    trace: bool,
) -> LogicalPlan {
    let pipeline = default_rules();
    let mut budget = REWRITE_BUDGET;
    loop {
        let mut fired_any = false;
        for rule in &pipeline {
            if !rule.enabled(rules) {
                continue;
            }
            if budget == 0 {
                return plan;
            }
            match rule.try_optimize(&plan, rules, report) {
                Some(next) => {
                    if trace {
                        report.passes.push(RuleTrace {
                            rule: rule.name(),
                            fired: true,
                            diff: plan_diff(&plan, &next),
                        });
                    }
                    plan = next;
                    fired_any = true;
                    budget -= 1;
                }
                None => {
                    if trace {
                        report.passes.push(RuleTrace {
                            rule: rule.name(),
                            fired: false,
                            diff: Vec::new(),
                        });
                    }
                }
            }
        }
        if !fired_any {
            return plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_names_are_stable_and_unique() {
        let names: Vec<&str> = default_rules().iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            [
                "const-fold",
                "prune-dead-lets",
                "join-graph-isolation",
                "flwor-to-tpm",
                "prune-outputs",
                "predicate-pushdown",
                "projection-pushdown",
                "agg-orderby-prune",
                "compile-paths",
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn every_rule_is_toggleable_except_path_lowering() {
        let all = RuleSet::all();
        let none = RuleSet::none();
        for rule in default_rules() {
            assert!(rule.enabled(&all), "{} off under all()", rule.name());
            if rule.name() == "compile-paths" {
                // Lowering always runs; R1 only controls *how* it lowers.
                assert!(rule.enabled(&none));
            } else {
                assert!(!rule.enabled(&none), "{} on under none()", rule.name());
            }
        }
    }

    #[test]
    fn apply_orders_are_declared() {
        for rule in default_rules() {
            // Just exercise the accessor; the value is documentation.
            let _ = rule.apply_order();
        }
    }
}
