//! E6 — scalability: evaluation time vs. document size for a fixed query
//! set. The NoK scan must grow linearly with the document (§4.2's
//! single-scan claim); the holistic join grows with its streams.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion, Throughput};
use xqp_bench::{criterion_group, criterion_main};
use xqp_bench::{run_path, xmark_at, SCALES};
use xqp_exec::Strategy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_scalability");
    g.sample_size(10);
    for scale in SCALES {
        let sdoc = xmark_at(scale);
        g.throughput(Throughput::Elements(sdoc.node_count() as u64));
        for (name, strat) in [
            ("nok", Strategy::NoK),
            ("twig", Strategy::TwigStack),
            ("parallel", Strategy::Parallel { threads: 0 }),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("scale{scale}")),
                &sdoc,
                |b, sdoc| {
                    b.iter(|| {
                        black_box(run_path(
                            sdoc,
                            strat,
                            "//open_auction[bidder/increase > 20]/reserve",
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
