//! E16 — materializing vs streaming FLWOR evaluation.
//!
//! The same deep FLWOR (nested `for` over a cross product with a filter
//! tail) runs through the materializing `Env` interpreter and the
//! batch-at-a-time physical pipeline. Both produce byte-identical output
//! (the equivalence suite pins that); what differs is the *shape* of the
//! work: the materializing interpreter holds every clause's full binding
//! table at once — the unfiltered cross product, before `where` prunes a
//! single row — while the pipeline keeps only one batch per operator in
//! flight. The bench reports wall time per mode, then the peak
//! simultaneously-live intermediate binding count from
//! [`xqp_exec::ExecCounters::peak_bindings`] — the memory-shaped number
//! the streaming pipeline is supposed to hold down.
//!
//! The flat keyword scan is a deliberate control: a single `for` whose
//! source is one evaluated sequence enqueues that whole sequence either
//! way, so streaming and materializing peak identically there. The win
//! comes from *nesting*, where the materialized table is a product of
//! clause cardinalities.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main, xmark_at};
use xqp_exec::{EvalMode, Executor};
use xqp_gen::gen_bib;
use xqp_storage::SuccinctDoc;

/// Cross product of books × authors with a filter — the materializing
/// binding table is quadratic in the book count before `where` prunes.
const BIB_NESTED: &str = "for $b in doc()/bib/book \
     for $a in doc()/bib/book/author \
     where $b/price >= 1 \
     return <pair>{$a/last}</pair>";

/// XMark-style value join: items against their categories. The unfiltered
/// item × category product is what the materializing interpreter holds.
const XMARK_JOIN: &str = "for $i in doc()//item \
     for $c in doc()//category \
     where $i/incategory/@category = $c/@id \
     return <hit>{$i/name}</hit>";

/// Flat control: one long binding stream, no nesting — both modes hold
/// the full source sequence, so the peaks tie.
const XMARK_KEYWORDS: &str = "for $k in doc()//keyword \
     let $t := string($k) \
     where $t != \"\" \
     return <kw>{$t}</kw>";

const MODES: [EvalMode; 2] = [EvalMode::Streaming, EvalMode::Materializing];

fn peak_bindings(sdoc: &SuccinctDoc, mode: EvalMode, q: &str) -> u64 {
    let ex = Executor::new(sdoc).with_eval_mode(mode);
    ex.query(q).expect("bench query evaluates");
    ex.counters().peak_bindings
}

fn bench(c: &mut Criterion) {
    let bib = SuccinctDoc::from_document(&gen_bib(120, 42));
    let xmark = xmark_at(0.4);
    let cases: [(&str, &SuccinctDoc, &str); 3] = [
        ("bib_nested", &bib, BIB_NESTED),
        ("xmark_join", &xmark, XMARK_JOIN),
        ("xmark_keywords_flat", &xmark, XMARK_KEYWORDS),
    ];

    let mut g = c.benchmark_group("E16_flwor_pipeline");
    g.sample_size(10);
    for (name, sdoc, q) in cases {
        for mode in MODES {
            g.bench_with_input(BenchmarkId::new(mode.name(), name), &q, |b, q| {
                let ex = Executor::new(sdoc).with_eval_mode(mode);
                b.iter(|| black_box(ex.query(q).expect("bench query evaluates").len()))
            });
        }
    }
    g.finish();

    println!("\n== E16 peak intermediate bindings ==");
    for (name, sdoc, q) in cases {
        let stream = peak_bindings(sdoc, EvalMode::Streaming, q);
        let mat = peak_bindings(sdoc, EvalMode::Materializing, q);
        println!(
            "{name}: streaming {stream}, materializing {mat} ({:.1}x reduction)",
            mat as f64 / stream.max(1) as f64
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
