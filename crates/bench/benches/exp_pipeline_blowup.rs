//! E4 — the pipelined-navigation blow-up (paper §3.2 / Gottlob et al. [4]).
//!
//! On a chain document of depth d, the query family
//! `//a[b and .//a[b and …]]` costs Θ(dⁿ) under naive pipelined navigation
//! (predicates re-evaluated per context) but one linear scan under τ.
//! Criterion sweeps the query size n; the naive series grows geometrically
//! while the NoK series stays flat.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::run_path;
use xqp_bench::{criterion_group, criterion_main};
use xqp_exec::Strategy;
use xqp_gen::{blowup_doc, blowup_query};
use xqp_storage::SuccinctDoc;

fn bench(c: &mut Criterion) {
    let depth = 12;
    let sdoc = SuccinctDoc::from_document(&blowup_doc(depth));
    let mut g = c.benchmark_group("E4_pipeline_blowup");
    g.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let q = blowup_query(n);
        g.bench_with_input(BenchmarkId::new("naive", n), &q, |b, q| {
            b.iter(|| black_box(run_path(&sdoc, Strategy::Naive, q)))
        });
        g.bench_with_input(BenchmarkId::new("nok_tpm", n), &q, |b, q| {
            b.iter(|| black_box(run_path(&sdoc, Strategy::NoK, q)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
