//! T21 — streaming aggregate folds vs materializing evaluation.
//!
//! Each workload wraps a FLWOR in an aggregate (`count`, `sum`, `min`,
//! `exists`) whose registry entry carries a [`Fold`]: under the streaming
//! mode the pipeline pushes tuples straight into a constant-space
//! accumulator and never materializes the aggregated sequence, while the
//! materializing interpreter builds the full binding table — the
//! unfiltered cross product for the nested shapes — before reducing it.
//! Both answers are byte-identical (the equivalence suite pins that); the
//! bench reports wall time per mode plus the peak simultaneously-live
//! binding count from [`xqp_exec::ExecCounters::peak_bindings`], and
//! writes both to `BENCH_functions.json` at the repo root.
//!
//! `sum_flat` is the control: a single `for` over one evaluated sequence
//! enqueues that sequence either way, so the fold can only tie on peak
//! bindings there. The bounded-memory win comes from *nesting*, where the
//! materialized table is a product of clause cardinalities.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main, median_time, xmark_at};
use xqp_exec::{EvalMode, Executor};
use xqp_gen::gen_bib;
use xqp_storage::SuccinctDoc;

/// Quadratic book × author product reduced to a single count — the
/// streaming fold never holds more than one batch of pairs.
const COUNT_NESTED: &str = "count(for $b in doc()/bib/book \
     for $a in doc()/bib/book/author \
     return 1)";

/// Same product shape, but the fold accumulates a checked-i64 sum over a
/// price expression instead of a constant.
const SUM_NESTED: &str = "sum(for $b in doc()/bib/book \
     for $a in doc()/bib/book/author \
     where $b/price >= 1 \
     return $b/price)";

/// XMark value join under `min` — the join rewrite bounds the binding
/// table in both modes here, so the fold's win is wall time, not peak.
const MIN_JOIN: &str = "min(for $i in doc()//item \
     for $c in doc()//category \
     where $i/incategory/@category = $c/@id \
     return 1 + count($i/name))";

/// `exists` over the same join: the fold is done after the first tuple,
/// the materializing interpreter still reduces the whole result.
const EXISTS_JOIN: &str = "exists(for $i in doc()//item \
     for $c in doc()//category \
     where $i/incategory/@category = $c/@id \
     return $i)";

/// Flat control: one binding stream, no nesting — peaks tie by design.
const SUM_FLAT: &str = "sum(for $k in doc()//keyword \
     return count($k))";

const MODES: [EvalMode; 2] = [EvalMode::Streaming, EvalMode::Materializing];
const ITERS: usize = 15;

fn peak_bindings(sdoc: &SuccinctDoc, mode: EvalMode, q: &str) -> u64 {
    let ex = Executor::new(sdoc).with_eval_mode(mode);
    ex.query(q).expect("bench query evaluates");
    ex.counters().peak_bindings
}

fn bench(c: &mut Criterion) {
    let bib = SuccinctDoc::from_document(&gen_bib(120, 42));
    let xmark = xmark_at(0.4);
    let cases: [(&str, &SuccinctDoc, &str); 5] = [
        ("count_nested", &bib, COUNT_NESTED),
        ("sum_nested", &bib, SUM_NESTED),
        ("min_join", &xmark, MIN_JOIN),
        ("exists_join", &xmark, EXISTS_JOIN),
        ("sum_flat", &xmark, SUM_FLAT),
    ];

    let mut g = c.benchmark_group("T21_functions");
    g.sample_size(10);
    for (name, sdoc, q) in cases {
        for mode in MODES {
            g.bench_with_input(BenchmarkId::new(mode.name(), name), &q, |b, q| {
                let ex = Executor::new(sdoc).with_eval_mode(mode);
                b.iter(|| black_box(ex.query(q).expect("bench query evaluates").len()))
            });
        }
    }
    g.finish();

    println!("\n== T21 aggregate folds: peak intermediate bindings ==");
    let mut rows = Vec::new();
    for (name, sdoc, q) in cases {
        // Correctness gates the numbers: both modes must agree first.
        let stream_ex = Executor::new(sdoc).with_eval_mode(EvalMode::Streaming);
        let mat_ex = Executor::new(sdoc).with_eval_mode(EvalMode::Materializing);
        let want = mat_ex.query(q).expect("materializing evaluates");
        let got = stream_ex.query(q).expect("streaming evaluates");
        assert_eq!(got, want, "{name} diverged between modes");

        let stream_peak = peak_bindings(sdoc, EvalMode::Streaming, q);
        let mat_peak = peak_bindings(sdoc, EvalMode::Materializing, q);
        let t_stream = median_time(ITERS, || {
            black_box(stream_ex.query(q).expect("streaming evaluates").len());
        });
        let t_mat = median_time(ITERS, || {
            black_box(mat_ex.query(q).expect("materializing evaluates").len());
        });
        println!(
            "{name}: streaming {stream_peak} peak / {t_stream:>9.2?}, \
             materializing {mat_peak} peak / {t_mat:>9.2?} ({:.1}x peak reduction)",
            mat_peak as f64 / stream_peak.max(1) as f64
        );
        rows.push(format!(
            "    {{ \"workload\": \"{name}\", \"streaming_peak_bindings\": {stream_peak}, \
             \"materializing_peak_bindings\": {mat_peak}, \"streaming_us\": {:.1}, \
             \"materializing_us\": {:.1} }}",
            t_stream.as_secs_f64() * 1e6,
            t_mat.as_secs_f64() * 1e6
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"T21_streaming_aggregate_folds\",\n  \
         \"docs\": \"bib(120 books), xmark@0.4\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_functions.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("-- T21 results written to BENCH_functions.json"),
        Err(e) => eprintln!("-- T21 results not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
