//! E7 — update cost: a local parenthesis-substring splice (§4.2's update
//! argument) vs. re-encoding the whole document from a DOM.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::xmark_both;
use xqp_bench::{criterion_group, criterion_main};
use xqp_storage::update;
use xqp_xml::parse_document;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_update");
    g.sample_size(10);
    let frag = parse_document(
        "<item id=\"itemX\"><location>Nowhere</location><quantity>1</quantity>\
         <name>new thing</name><payment>Cash</payment></item>",
    )
    .unwrap();
    for scale in [0.1, 0.4] {
        let (dom, sdoc) = xmark_both(scale);
        let root = sdoc.root().unwrap();
        g.bench_with_input(
            BenchmarkId::new("splice_insert", format!("scale{scale}")),
            &sdoc,
            |b, sdoc| b.iter(|| black_box(update::insert_subtree(sdoc, root, &frag).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("full_reencode", format!("scale{scale}")),
            &dom,
            |b, dom| b.iter(|| black_box(update::rebuild_full(dom))),
        );
        // Delete a mid-document subtree (one person).
        let victim =
            xqp_exec::Executor::new(&sdoc).eval_path_str("/site/people/person").unwrap()[0];
        g.bench_with_input(
            BenchmarkId::new("splice_delete", format!("scale{scale}")),
            &sdoc,
            |b, sdoc| b.iter(|| black_box(update::delete_subtree(sdoc, victim).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
