//! E11 — rewrite-rule ablation: the Fig. 1-style FLWOR under the full rule
//! set vs. each rule disabled, plus the no-rules baseline. Times include
//! optimization + execution (rewrites are cheap; their payoff is in the
//! physical plan they enable).

use std::hint::black_box;
use xqp_algebra::RuleSet;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::xmark_at;
use xqp_bench::{criterion_group, criterion_main};
use xqp_exec::Executor;

const QUERY: &str = "for $i in doc()//item \
     let $k := $i//keyword \
     let $e := $i//emph \
     let $m := $i//mail \
     return <i>{count($k)} {count($e)} {count($m)}</i>";

fn bench(c: &mut Criterion) {
    let sdoc = xmark_at(0.2);
    let mut g = c.benchmark_group("E11_rewrite_ablation");
    g.sample_size(10);
    let cases: Vec<(String, RuleSet)> = std::iter::once(("all_rules".to_string(), RuleSet::all()))
        .chain([1u8, 2, 5, 7, 8].iter().map(|&r| (format!("minus_R{r}"), RuleSet::all_except(r))))
        .chain(std::iter::once(("no_rules".to_string(), RuleSet::none())))
        .collect();
    for (name, rules) in cases {
        g.bench_with_input(BenchmarkId::new(name, "person_query"), &rules, |b, rules| {
            b.iter(|| {
                let ex = Executor::new(&sdoc).with_rules(*rules);
                black_box(ex.query_items(QUERY).unwrap().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
