//! E9 — streaming evaluation: the NoK matcher over a live event stream vs.
//! the same pattern over the stored document (results are identical; this
//! measures the cost of each mode, and of parsing).

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion, Throughput};
use xqp_bench::{criterion_group, criterion_main};
use xqp_exec::{nok, streaming, ExecContext};
use xqp_gen::{gen_xmark, XmarkConfig};
use xqp_storage::SuccinctDoc;
use xqp_xml::{serialize, Event, Parser};
use xqp_xpath::{parse_path, PatternGraph};

fn bench(c: &mut Criterion) {
    let xml = serialize(&gen_xmark(&XmarkConfig::scale(0.2)));
    let events: Vec<Event> = Parser::new(&xml).collect::<Result<_, _>>().unwrap();
    let sdoc = SuccinctDoc::parse(&xml).unwrap();
    let pattern =
        PatternGraph::from_path(&parse_path("//person[profile/age > 30]/name").unwrap()).unwrap();

    let mut g = c.benchmark_group("E9_streaming");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_with_input(BenchmarkId::new("stream_match", "xmark0.2"), &events, |b, evs| {
        b.iter(|| black_box(streaming::match_stream(evs.iter(), &pattern)))
    });
    g.bench_with_input(BenchmarkId::new("stored_match", "xmark0.2"), &sdoc, |b, sdoc| {
        b.iter(|| {
            let ctx = ExecContext::new(sdoc);
            black_box(nok::eval_single_output(&ctx, &pattern, None))
        })
    });
    g.bench_with_input(BenchmarkId::new("parse_only", "xmark0.2"), &xml, |b, xml| {
        b.iter(|| {
            let evs: Vec<Event> = Parser::new(xml).collect::<Result<_, _>>().unwrap();
            black_box(evs.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
