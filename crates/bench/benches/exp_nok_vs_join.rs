//! E5 — NoK vs. join-based evaluation (the paper's headline comparison,
//! §4.2: "our approach outperforms existing join-based approaches").
//!
//! Six XMark path queries (X1–X6, `xqp_gen::workload`) under all four
//! physical strategies on a fixed-scale document.

use std::hint::black_box;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main};
use xqp_bench::{run_path, xmark_at, STRATEGIES};

fn bench(c: &mut Criterion) {
    let sdoc = xmark_at(0.2);
    let mut g = c.benchmark_group("E5_nok_vs_join");
    g.sample_size(10);
    for q in xqp_gen::xmark_queries() {
        for strat in STRATEGIES {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_{}", q.id, strat.name()), q.id),
                &q.path,
                |b, path| b.iter(|| black_box(run_path(&sdoc, strat, path))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
