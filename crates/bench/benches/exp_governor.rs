//! T17 — resource-governor overhead on the E16 FLWOR workloads.
//!
//! The governor threads a cancellation/budget check through every pull of
//! the physical pipeline, the materializing interpreter's clause loop, and
//! the pattern matchers' sweep loops. Those checks run whether or not any
//! limit is set — an attached governor with unlimited budgets is the
//! worst case for pure overhead, since every check is executed and none
//! ever trips. This bench runs the E16 query suite twice per mode, with
//! and without an (unlimited) governor attached, so the delta isolates the
//! per-check cost: a few atomic loads per batch or poll interval.
//!
//! The acceptance bar is <= 5% on these workloads; the per-run numbers are
//! recorded under T17 in EXPERIMENTS.md.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main, xmark_at};
use xqp_exec::{EvalMode, Executor, QueryLimits, ResourceGovernor};
use xqp_gen::gen_bib;
use xqp_storage::SuccinctDoc;

/// The E16 workloads, verbatim (see `exp_flwor_pipeline`).
const BIB_NESTED: &str = "for $b in doc()/bib/book \
     for $a in doc()/bib/book/author \
     where $b/price >= 1 \
     return <pair>{$a/last}</pair>";

const XMARK_JOIN: &str = "for $i in doc()//item \
     for $c in doc()//category \
     where $i/incategory/@category = $c/@id \
     return <hit>{$i/name}</hit>";

const XMARK_KEYWORDS: &str = "for $k in doc()//keyword \
     let $t := string($k) \
     where $t != \"\" \
     return <kw>{$t}</kw>";

const MODES: [EvalMode; 2] = [EvalMode::Streaming, EvalMode::Materializing];

fn executor(sdoc: &SuccinctDoc, mode: EvalMode, governed: bool) -> Executor<'_> {
    let mut ex = Executor::new(sdoc).with_eval_mode(mode);
    if governed {
        // Attached but unlimited: every check runs, none can trip.
        ex = ex.with_governor(Arc::new(ResourceGovernor::new(QueryLimits::none())));
    }
    ex
}

fn bench(c: &mut Criterion) {
    let bib = SuccinctDoc::from_document(&gen_bib(120, 42));
    let xmark = xmark_at(0.4);
    let cases: [(&str, &SuccinctDoc, &str); 3] = [
        ("bib_nested", &bib, BIB_NESTED),
        ("xmark_join", &xmark, XMARK_JOIN),
        ("xmark_keywords_flat", &xmark, XMARK_KEYWORDS),
    ];

    let mut g = c.benchmark_group("T17_governor_overhead");
    g.sample_size(10);
    for (name, sdoc, q) in cases {
        for mode in MODES {
            for governed in [false, true] {
                let label =
                    format!("{}_{}", mode.name(), if governed { "governed" } else { "ungoverned" });
                g.bench_with_input(BenchmarkId::new(label, name), &q, |b, q| {
                    let ex = executor(sdoc, mode, governed);
                    b.iter(|| black_box(ex.query(q).expect("bench query evaluates").len()))
                });
            }
        }
    }
    g.finish();

    // Headline ratio, timed directly so the summary is self-contained.
    // Interleaved min-of-runs: alternating governed/ungoverned cancels
    // machine drift, and the minimum is the noise-robust estimate of the
    // true cost on a shared box.
    println!("\n== T17 governor overhead (attached + unlimited vs none) ==");
    for (name, sdoc, q) in cases {
        for mode in MODES {
            let one = |governed: bool| {
                let ex = executor(sdoc, mode, governed);
                let t = Instant::now();
                black_box(ex.query(q).expect("bench query evaluates").len());
                t.elapsed().as_secs_f64()
            };
            one(false); // warm caches
            one(true);
            let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..20 {
                off = off.min(one(false));
                on = on.min(one(true));
            }
            println!(
                "{name} ({}): off {:.3} ms, on {:.3} ms ({:+.1}%)",
                mode.name(),
                off * 1e3,
                on * 1e3,
                (on / off - 1.0) * 100.0
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
