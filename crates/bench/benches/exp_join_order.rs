//! E8 / T18 — join-order selection and the join-isolation pipeline.
//!
//! Two experiments share this bench:
//!
//! * **E8** (structural joins, rewrite R4 / Wu et al. [5]): on a linear
//!   path whose middle tag is rare, joining the rare pair first (the cost
//!   model's ascending-cardinality order) shrinks intermediates; the worst
//!   order keeps the two huge streams alive.
//! * **T18** (value joins, rewrites R10–R12): XMark join queries run under
//!   three optimizer configurations — all rules (join-graph isolation +
//!   hash join), `join_isolation` off (pushdowns only, nested-loop `where`)
//!   and no rules at all (bare nested loop). All three produce
//!   byte-identical output (asserted here and pinned by the differential
//!   suite); the table records what the O(n·m) → O(n+m) hash-join rewrite
//!   buys. Medians land in `BENCH_join.json` at the repository root.

use std::hint::black_box;
use xqp_algebra::{CostModel, RuleSet};
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main, median_time, xmark_at};
use xqp_exec::{structural, ExecContext, Executor};
use xqp_storage::SuccinctDoc;
use xqp_xml::Document;

/// Many `a`s each with several `b`s; `c`s are rare — joining the rare
/// (b,c) pair first keeps intermediates tiny.
fn skewed_doc(n: usize) -> SuccinctDoc {
    let mut doc = Document::new();
    let root = doc.append_element(doc.root(), "r");
    for i in 0..n {
        let a = doc.append_element(root, "a");
        for j in 0..5 {
            let b = doc.append_element(a, "b");
            if i % 50 == 0 && j == 0 {
                for _ in 0..3 {
                    let c = doc.append_element(b, "c");
                    doc.append_text(c, "x");
                }
            }
        }
    }
    SuccinctDoc::from_document(&doc)
}

/// The T18 query corpus: XMark value joins of increasing shape.
const JOIN_QUERIES: [(&str, &str); 3] = [
    // Classic item × category equi-join (XMark Q9 shape).
    (
        "item_category",
        "for $i in doc()//item for $c in doc()//category \
         where $i/incategory/@category = $c/@id \
         return <hit>{$i/name}</hit>",
    ),
    // Person interests against categories: multi-valued keys per side.
    (
        "person_interest",
        "for $p in doc()//person for $c in doc()//category \
         where $p/profile/interest/@category = $c/@id \
         return <match>{$p/name}</match>",
    ),
    // Three sides, two edges: auctions resolved to their item and seller.
    (
        "auction_item_seller",
        "for $a in doc()//open_auction for $i in doc()//item for $p in doc()//person \
         where $a/itemref/@item = $i/@id and $a/seller/@person = $p/@id \
         return <deal>{$i/name}{$p/name}</deal>",
    ),
];

/// The rule configurations T18 compares.
fn join_configs() -> [(&'static str, RuleSet); 3] {
    [
        ("all_rules", RuleSet::all()),
        ("no_join_isolation", RuleSet { join_isolation: false, ..RuleSet::all() }),
        ("no_rules", RuleSet::none()),
    ]
}

fn run_query(sdoc: &SuccinctDoc, rules: RuleSet, q: &str) -> String {
    Executor::new(sdoc).with_rules(rules).query(q).expect("bench query evaluates")
}

fn bench(c: &mut Criterion) {
    // ---- E8: structural-join order ----------------------------------------
    let sdoc = skewed_doc(4000);
    let ctx = ExecContext::new(&sdoc);
    let tags = ["a", "b", "c"];
    // Cost-model order (R4): join the pair involving the rare `b` first.
    let cards: Vec<f64> = {
        let stats = ctx.stats();
        tags.iter().map(|t| stats.tag_count(t) as f64).collect()
    };
    let stats = ctx.stats();
    let cm = CostModel::new(stats);
    let good_first = if cards[1] < cards[0] { [1usize, 0] } else { [0, 1] };
    let _ = cm.choose_join_order(&cards);
    let bad_first = [good_first[1], good_first[0]];

    let mut g = c.benchmark_group("E8_join_order");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("cost_model_order", "a_b_c"), &good_first, |b, ord| {
        b.iter(|| black_box(structural::eval_linear_pairs(&ctx, &tags, ord)))
    });
    g.bench_with_input(BenchmarkId::new("worst_order", "a_b_c"), &bad_first, |b, ord| {
        b.iter(|| black_box(structural::eval_linear_pairs(&ctx, &tags, ord)))
    });
    g.finish();

    // ---- T18: value-join rule ablations ------------------------------------
    // 0.25 keeps the no-rules nested-loop baselines (O(n·m·p) on the
    // three-side query) in the tens-of-seconds range; the asymmetry only
    // grows with scale.
    let xmark = xmark_at(0.25);

    // Soundness gate before any timing: every configuration must agree
    // byte-for-byte, or the speedup below is measuring a wrong answer.
    for (name, q) in JOIN_QUERIES {
        let reference = run_query(&xmark, RuleSet::all(), q);
        for (cfg_name, rules) in join_configs() {
            assert_eq!(
                run_query(&xmark, rules, q),
                reference,
                "{name}: `{cfg_name}` diverged from all-rules"
            );
        }
    }

    let mut g = c.benchmark_group("T18_join_rules");
    g.sample_size(3);
    for (name, q) in JOIN_QUERIES {
        for (cfg_name, rules) in join_configs() {
            g.bench_with_input(BenchmarkId::new(cfg_name, name), &q, |b, q| {
                let ex = Executor::new(&xmark).with_rules(rules);
                b.iter(|| black_box(ex.query(q).expect("bench query evaluates").len()))
            });
        }
    }
    g.finish();

    // Median table + trajectory file. Fresh executor per run: the plan
    // cache would otherwise hide compile + optimize time differences.
    println!("\n== T18 join-rule medians (xmark@0.25, median of 5) ==");
    let mut rows = Vec::new();
    for (name, q) in JOIN_QUERIES {
        let mut medians = Vec::new();
        for (cfg_name, rules) in join_configs() {
            let t = median_time(5, || {
                black_box(run_query(&xmark, rules, q).len());
            });
            medians.push((cfg_name, t.as_secs_f64() * 1e3));
        }
        let all_ms = medians[0].1;
        let bare_ms = medians[2].1;
        println!(
            "{name}: all {:.2}ms, no-join-isolation {:.2}ms, no-rules {:.2}ms ({:.1}x)",
            medians[0].1,
            medians[1].1,
            bare_ms,
            bare_ms / all_ms.max(1e-9),
        );
        rows.push(format!(
            "    {{\"query\": \"{name}\", \"all_rules_ms\": {:.3}, \
             \"no_join_isolation_ms\": {:.3}, \"no_rules_ms\": {:.3}, \
             \"speedup_vs_no_rules\": {:.2}}}",
            medians[0].1,
            medians[1].1,
            bare_ms,
            bare_ms / all_ms.max(1e-9),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"T18_join_rules\",\n  \"doc\": \"xmark@0.25\",\n  \
         \"configs\": [\"all_rules\", \"no_join_isolation\", \"no_rules\"],\n  \
         \"queries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("-- T18 trajectory written to BENCH_join.json"),
        Err(e) => eprintln!("-- T18 trajectory not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
