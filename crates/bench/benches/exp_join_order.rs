//! E8 — structural-join order selection (rewrite R4 / Wu et al. [5]).
//!
//! On a linear path whose middle tag is rare, joining the rare pair first
//! (the cost model's ascending-cardinality order) shrinks intermediates;
//! the worst order keeps the two huge streams alive.

use std::hint::black_box;
use xqp_algebra::CostModel;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main};
use xqp_exec::{structural, ExecContext};
use xqp_storage::SuccinctDoc;
use xqp_xml::Document;

/// Many `a`s each with several `b`s; `c`s are rare — joining the rare
/// (b,c) pair first keeps intermediates tiny.
fn skewed_doc(n: usize) -> SuccinctDoc {
    let mut doc = Document::new();
    let root = doc.append_element(doc.root(), "r");
    for i in 0..n {
        let a = doc.append_element(root, "a");
        for j in 0..5 {
            let b = doc.append_element(a, "b");
            if i % 50 == 0 && j == 0 {
                for _ in 0..3 {
                    let c = doc.append_element(b, "c");
                    doc.append_text(c, "x");
                }
            }
        }
    }
    SuccinctDoc::from_document(&doc)
}

fn bench(c: &mut Criterion) {
    let sdoc = skewed_doc(4000);
    let ctx = ExecContext::new(&sdoc);
    let tags = ["a", "b", "c"];
    // Cost-model order (R4): join the pair involving the rare `b` first.
    let cards: Vec<f64> = {
        let stats = ctx.stats();
        tags.iter().map(|t| stats.tag_count(t) as f64).collect()
    };
    let stats = ctx.stats();
    let cm = CostModel::new(stats);
    let good_first = if cards[1] < cards[0] { [1usize, 0] } else { [0, 1] };
    let _ = cm.choose_join_order(&cards);
    let bad_first = [good_first[1], good_first[0]];

    let mut g = c.benchmark_group("E8_join_order");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("cost_model_order", "a_b_c"), &good_first, |b, ord| {
        b.iter(|| black_box(structural::eval_linear_pairs(&ctx, &tags, ord)))
    });
    g.bench_with_input(BenchmarkId::new("worst_order", "a_b_c"), &bad_first, |b, ord| {
        b.iter(|| black_box(structural::eval_linear_pairs(&ctx, &tags, ord)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
