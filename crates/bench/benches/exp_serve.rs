//! E19 — concurrent serving throughput: sustained QPS with N clients
//! while a writer streams structural updates.
//!
//! The serving subsystem's claim is architectural: reads run against
//! snapshot-isolated MVCC versions, so adding a concurrent writer must
//! not collapse reader throughput (readers never wait on the writer
//! mutex), and adding readers must scale until the cores run out. This
//! experiment measures both axes on an XMark instance behind the real
//! server — real sockets, real framing, real sessions:
//!
//! * clients ∈ {1, 4, 8}, each session issuing queries back-to-back for a
//!   fixed window;
//! * writer off / writer on (a dedicated session streaming insert+delete
//!   rounds for the whole window, each round installing two generations).
//!
//! Before any timing, a soundness gate asserts the served answer is
//! byte-identical to the in-process engine's. Medians land in
//! `BENCH_serve.json` at the repository root and the table is tracked as
//! T19 in EXPERIMENTS.md.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use xqp::Database;
use xqp_bench::harness::Criterion;
use xqp_bench::{criterion_group, criterion_main};
use xqp_gen::{gen_xmark, XmarkConfig};
use xqp_serve::{Client, Server, ServerConfig};

/// The read workload: a real navigational query with a small result, so
/// throughput measures engine + protocol, not result serialization.
const READ_QUERY: &str = "for $p in doc()//person where $p/@id = \"person0\" return $p/name";

/// One writer round: grow then shrink, two generation installs.
const WRITE_FRAGMENT: &str = "<bench-marker><pad>x</pad></bench-marker>";

const WINDOW: Duration = Duration::from_millis(400);

fn fresh_server() -> Server {
    let db = Database::new();
    let xml = xqp_xml::serialize(&gen_xmark(&XmarkConfig::scale(0.1)));
    db.load_str("xmark", &xml).unwrap();
    Server::start(Arc::new(db), "127.0.0.1:0", ServerConfig::default()).expect("bind bench server")
}

struct RunResult {
    reads: u64,
    elapsed: Duration,
    p50: Duration,
    generations: u64,
}

/// Run one configuration: `clients` reader sessions for `WINDOW`, plus an
/// optional writer session streaming updates the whole time.
fn run_config(server: &Server, clients: usize, writer: bool) -> RunResult {
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(clients + 1));

    let readers: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("reader connect");
                // Warm the session (and the shared plan cache) outside the
                // timed window.
                c.query("xmark", READ_QUERY).expect("warmup query");
                start.wait();
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    c.query("xmark", READ_QUERY).expect("bench query");
                    lat.push(t.elapsed());
                }
                let _ = c.close();
                lat
            })
        })
        .collect();

    let writer_thread = writer.then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut w = Client::connect(addr).expect("writer connect");
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                w.insert("xmark", "/site", WRITE_FRAGMENT).expect("writer insert");
                w.delete("xmark", "//bench-marker").expect("writer delete");
                rounds += 1;
            }
            let _ = w.close();
            rounds
        })
    });

    let gen_before = server.database().generation("xmark").unwrap();
    start.wait();
    let t0 = Instant::now();
    std::thread::sleep(WINDOW);
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<Duration> =
        readers.into_iter().flat_map(|h| h.join().expect("reader died")).collect();
    let elapsed = t0.elapsed();
    if let Some(w) = writer_thread {
        let rounds = w.join().expect("writer died");
        assert!(rounds > 0, "writer made no progress: readers are blocking it");
    }
    let gen_after = server.database().generation("xmark").unwrap();

    latencies.sort();
    RunResult {
        reads: latencies.len() as u64,
        elapsed,
        p50: latencies[latencies.len() / 2],
        generations: gen_after - gen_before,
    }
}

fn bench(_c: &mut Criterion) {
    let server = fresh_server();

    // Soundness gate: the served answer must be byte-identical to the
    // in-process engine's before any throughput claim.
    let reference = server.database().query("xmark", READ_QUERY).expect("in-process reference");
    let mut probe = Client::connect(server.addr()).unwrap();
    let (_, served) = probe.query("xmark", READ_QUERY).expect("served answer");
    assert_eq!(served, reference, "served answer diverges from the in-process engine");
    probe.close().unwrap();

    println!("\n== E19 concurrent serving: sustained QPS over {WINDOW:?} windows ==");
    let mut rows = Vec::new();
    for writer in [false, true] {
        for clients in [1usize, 4, 8] {
            let r = run_config(&server, clients, writer);
            let qps = r.reads as f64 / r.elapsed.as_secs_f64();
            println!(
                "clients={clients} writer={writer}: {:.0} QPS, p50 {:.0} µs, {} reads, {} \
                 generation(s) installed",
                qps,
                r.p50.as_secs_f64() * 1e6,
                r.reads,
                r.generations
            );
            rows.push(format!(
                "    {{ \"clients\": {clients}, \"writer\": {writer}, \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"reads\": {}, \"generations\": {} }}",
                qps,
                r.p50.as_secs_f64() * 1e6,
                r.reads,
                r.generations
            ));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"T19_concurrent_serving\",\n  \"doc\": \"xmark@0.1\",\n  \
         \"query\": \"{}\",\n  \"window_ms\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        READ_QUERY.replace('"', "\\\""),
        WINDOW.as_millis(),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("-- E19 results written to BENCH_serve.json"),
        Err(e) => eprintln!("-- E19 results not written: {e}"),
    }
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
