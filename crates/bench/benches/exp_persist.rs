//! E15 — persistence cost: snapshot write, cold open (snapshot decode +
//! rank-directory rebuild) and WAL replay throughput, against the baseline
//! of re-parsing the full XML text from scratch.

use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::xmark_both;
use xqp_bench::{criterion_group, criterion_main};
use xqp_storage::persist::{decode_snapshot, encode_snapshot, DocStore, WalOp};
use xqp_storage::SuccinctDoc;
use xqp_xml::serialize;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqp-bench-persist-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E15_persist");
    g.sample_size(10);

    for scale in [0.1, 0.4] {
        let (dom, sdoc) = xmark_both(scale);
        let xml = serialize(&dom);
        let param = format!("scale{scale}");

        // Snapshot write: encode + fsync + rename.
        let dir = scratch(&format!("write-{scale}"));
        g.bench_with_input(BenchmarkId::new("snapshot_write", &param), &sdoc, |b, sdoc| {
            b.iter(|| black_box(DocStore::create(&dir, sdoc).unwrap()))
        });

        // Cold open from snapshot bytes (decode + directory rebuild) vs
        // re-parsing the original XML text.
        let bytes = encode_snapshot(&sdoc, 0);
        g.bench_with_input(BenchmarkId::new("snapshot_open", &param), &bytes, |b, bytes| {
            b.iter(|| black_box(decode_snapshot(bytes).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("xml_reparse", &param), &xml, |b, xml| {
            b.iter(|| black_box(SuccinctDoc::parse(xml).unwrap()))
        });

        // WAL replay throughput: open a store whose log holds 64 inserts.
        let dir = scratch(&format!("replay-{scale}"));
        let mut store = DocStore::create(&dir, &sdoc).unwrap();
        let mut live = sdoc.clone();
        for i in 0..64 {
            let op = WalOp::Insert {
                parent: 0,
                fragment_xml: format!("<x n=\"{i}\"><v>payload {i}</v></x>"),
            };
            live = xqp_storage::persist::apply_op(&live, &op).unwrap();
            store.log(&op).unwrap();
        }
        drop(store);
        g.bench_function(BenchmarkId::new("wal_replay_64", &param), |b| {
            b.iter(|| black_box(DocStore::open(&dir).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
