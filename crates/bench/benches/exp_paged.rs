//! T20 — paged storage behind the pinning buffer pool: query latency as
//! the pool shrinks from "whole document resident" to a sliver of it.
//!
//! The experiment sizes the pool at 10%, 50% and 100% of the document's
//! paged footprint (plus the unpooled resident engine as the baseline) and
//! measures median latency of the T5 XMark path suite over each. The
//! claim under test: paged navigation costs a modest constant at 100%
//! residency, degrades gracefully — not cliff-like — as the pool starves,
//! and the pool cap genuinely bounds resident pages (verified from the
//! pool counters, which are also emitted). Results land in
//! `BENCH_paged.json` at the repository root; the table is tracked in
//! EXPERIMENTS.md §T20.

use std::hint::black_box;
use xqp::Database;
use xqp_bench::harness::Criterion;
use xqp_bench::{criterion_group, criterion_main, median_time};
use xqp_gen::{gen_xmark, xmark_queries, XmarkConfig};
use xqp_storage::persist::{write_paged_snapshot, FRAME_BYTES};
use xqp_storage::SuccinctDoc;
use xqp_xml::serialize;

const SCALE: f64 = 0.2;
const ITERS: usize = 7;

/// The document's paged footprint in pages (meta frame included).
fn paged_pages(sdoc: &SuccinctDoc) -> u64 {
    let path =
        std::env::temp_dir().join(format!("xqp-bench-paged-size-{}.xqp", std::process::id()));
    write_paged_snapshot(&path, sdoc, 0).expect("paged snapshot write");
    let bytes = std::fs::metadata(&path).expect("paged snapshot stat").len();
    let _ = std::fs::remove_file(&path);
    bytes / FRAME_BYTES as u64
}

fn bench(_c: &mut Criterion) {
    let dom = gen_xmark(&XmarkConfig::scale(SCALE));
    let xml = serialize(&dom);
    let sdoc = SuccinctDoc::from_document(&dom);
    let doc_pages = paged_pages(&sdoc);

    let resident = Database::new();
    resident.load_str("doc", &xml).unwrap();

    println!(
        "\n== T20 paged storage: xmark@{SCALE}, {doc_pages} pages ({} KiB paged) ==",
        doc_pages * FRAME_BYTES as u64 / 1024
    );
    let mut rows = Vec::new();
    for pct in [10u64, 50, 100] {
        let pool_pages = (doc_pages * pct / 100).max(2) as usize;
        let mut db = Database::new();
        db.set_buffer_pool(pool_pages);
        db.load_str("doc", &xml).unwrap();

        for q in xmark_queries() {
            // Correctness gates the timing: the paged answer must match the
            // resident engine's before its latency means anything.
            let want = resident.select("doc", q.path).unwrap();
            let got = db.select("doc", q.path).unwrap();
            assert_eq!(got, want, "{} diverged at pool={pct}%", q.id);

            let t_resident = median_time(ITERS, || {
                black_box(resident.select("doc", q.path).unwrap());
            });
            let t_paged = median_time(ITERS, || {
                black_box(db.select("doc", q.path).unwrap());
            });
            let stats = db.buffer_stats().unwrap();
            assert!(
                stats.resident <= stats.capacity,
                "pool cap violated at pool={pct}%: {stats:?}"
            );
            println!(
                "{} pool={pct:>3}% ({pool_pages} pages): paged {:>9.2?}  resident {:>9.2?}  \
                 ({:.2}x, {} hits, {} misses, {} evictions)",
                q.id,
                t_paged,
                t_resident,
                t_paged.as_secs_f64() / t_resident.as_secs_f64().max(1e-9),
                stats.hits,
                stats.misses,
                stats.evictions
            );
            rows.push(format!(
                "    {{ \"query\": \"{}\", \"pool_pct\": {pct}, \"pool_pages\": {pool_pages}, \
                 \"paged_us\": {:.1}, \"resident_us\": {:.1}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"resident_peak\": {} }}",
                q.id,
                t_paged.as_secs_f64() * 1e6,
                t_resident.as_secs_f64() * 1e6,
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.resident_peak
            ));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"T20_paged_storage\",\n  \"doc\": \"xmark@{SCALE}\",\n  \
         \"doc_pages\": {doc_pages},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_paged.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("-- T20 results written to BENCH_paged.json"),
        Err(e) => eprintln!("-- T20 results not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
