//! E22 — serving resilience under injected wire faults: sustained QPS at
//! 0% / 1% / 5% socket-fault rates, and the retry layer's overhead on the
//! clean path.
//!
//! The resilience stack's claim is twofold. First, the retry layer is
//! effectively free when nothing fails: wrapping every request in policy
//! bookkeeping (deadline checks, attempt accounting, jittered backoff
//! state) must not tax the fault-free path — the gate is ≤5% on median
//! per-request latency against the plain client. Second, under real fault
//! pressure the retrying client must keep completing work: at a 1%–5%
//! per-socket-operation fault rate (errors, short reads/writes,
//! truncations, delays, mid-frame disconnects, all server-side via the
//! [`FaultPlan`] failpoints) the measured QPS degrades but the completed
//! stream stays correct — every answer byte-identical to the in-process
//! engine, zero lost requests for the resilient client.
//!
//! Before any timing, a soundness gate asserts the served answer matches
//! the in-process engine. Results land in `BENCH_resilience.json` at the
//! repository root; the table is tracked as T22 in EXPERIMENTS.md.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xqp::Database;
use xqp_bench::harness::Criterion;
use xqp_bench::{criterion_group, criterion_main};
use xqp_serve::{Client, FaultPlan, ResilientClient, RetryPolicy, Server, ServerConfig};

const DOC: &str = "<catalog>\
    <book id=\"1\"><title>Query Processing</title><price>30</price></book>\
    <book id=\"2\"><title>Optimization</title><price>45</price></book>\
    <book id=\"3\"><title>Succinct Trees</title><price>25</price></book>\
    <journal id=\"4\"><title>VLDB</title></journal>\
</catalog>";

const QUERY: &str = "for $b in //book where $b/price > 28 return $b/title";

const WINDOW: Duration = Duration::from_millis(300);

fn server_with(plan: Option<Arc<FaultPlan>>) -> Server {
    let db = Database::new();
    db.load_str("catalog", DOC).unwrap();
    let cfg = ServerConfig {
        fault: plan,
        log_send_failures: false,
        tick: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    Server::start(Arc::new(db), "127.0.0.1:0", cfg).expect("bind bench server")
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(25),
        retry_budget: Duration::from_secs(2),
        seed: 0x7E57,
        ..RetryPolicy::default()
    }
}

struct FaultLeg {
    fault_pct: f64,
    qps: f64,
    p50_us: f64,
    completed: u64,
    lost: u64,
    retries: u32,
    injected: u64,
}

/// One timed window of back-to-back queries through the resilient client
/// against a server injecting faults at `prob` per socket operation.
fn run_fault_leg(prob: f64, truth: &str) -> FaultLeg {
    let plan = FaultPlan::random(0x7E57 ^ (prob * 1000.0) as u64, prob);
    let server = server_with(Some(plan.clone()));
    let mut client = None;
    for _ in 0..20 {
        match ResilientClient::connect(server.addr(), policy()) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let mut client = client.expect("resilient client never connected");
    let mut lat = Vec::new();
    let mut lost = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < WINDOW {
        let t = Instant::now();
        match client.query("catalog", QUERY) {
            Ok((_, body)) => {
                assert_eq!(body, truth, "resilient answer diverged under faults");
                lat.push(t.elapsed());
            }
            Err(_) => lost += 1,
        }
    }
    let elapsed = t0.elapsed();
    let retries = client.retries_total();
    let _ = client.close();
    lat.sort();
    let leg = FaultLeg {
        fault_pct: prob * 100.0,
        qps: lat.len() as f64 / elapsed.as_secs_f64(),
        p50_us: if lat.is_empty() { 0.0 } else { lat[lat.len() / 2].as_secs_f64() * 1e6 },
        completed: lat.len() as u64,
        lost,
        retries,
        injected: plan.injected(),
    };
    server.shutdown();
    leg
}

/// Median per-request latency of `n` back-to-back queries.
fn p50_of<F: FnMut()>(n: usize, mut one: F) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        one();
        lat.push(t.elapsed());
    }
    lat.sort();
    lat[lat.len() / 2]
}

fn bench(_c: &mut Criterion) {
    // Soundness gate: served answer must match the in-process engine.
    let server = server_with(None);
    let truth = server.database().query("catalog", QUERY).expect("in-process reference");
    let mut probe = Client::connect(server.addr()).unwrap();
    let (_, served) = probe.query("catalog", QUERY).expect("served answer");
    assert_eq!(served, truth, "served answer diverges from the in-process engine");
    probe.close().unwrap();

    println!("\n== E22 serving resilience: retry overhead + QPS under wire faults ==");

    // Leg 1: retry-layer overhead on the clean path. Interleave the two
    // clients' measurement batches so ambient machine noise hits both.
    const BATCH: usize = 400;
    let mut plain = Client::connect(server.addr()).unwrap();
    let mut resilient = ResilientClient::connect(server.addr(), policy()).unwrap();
    // Warmup (session setup, plan cache).
    plain.query("catalog", QUERY).unwrap();
    resilient.query("catalog", QUERY).unwrap();
    let mut plain_p50 = Duration::MAX;
    let mut resilient_p50 = Duration::MAX;
    for _ in 0..3 {
        plain_p50 = plain_p50.min(p50_of(BATCH, || {
            plain.query("catalog", QUERY).expect("plain query");
        }));
        resilient_p50 = resilient_p50.min(p50_of(BATCH, || {
            resilient.query("catalog", QUERY).expect("resilient query");
        }));
    }
    assert_eq!(resilient.retries_total(), 0, "clean path must not retry");
    let _ = plain.close();
    let _ = resilient.close();
    let overhead_pct = (resilient_p50.as_secs_f64() / plain_p50.as_secs_f64() - 1.0) * 100.0;
    println!(
        "clean path: plain p50 {:.1} µs, resilient p50 {:.1} µs, overhead {:+.1}%",
        plain_p50.as_secs_f64() * 1e6,
        resilient_p50.as_secs_f64() * 1e6,
        overhead_pct
    );
    // The ≤5% gate, with a small absolute floor so a sub-microsecond
    // wobble on a ~100µs round trip cannot fail the build.
    assert!(
        resilient_p50 <= plain_p50.mul_f64(1.05) + Duration::from_micros(20),
        "retry layer costs more than 5% on the fault-free path \
         (plain {plain_p50:?}, resilient {resilient_p50:?})"
    );
    server.shutdown();

    // Leg 2: sustained QPS under injected fault pressure.
    let mut legs = Vec::new();
    for prob in [0.0, 0.01, 0.05] {
        let leg = run_fault_leg(prob, &truth);
        println!(
            "faults={:.0}%: {:.0} QPS, p50 {:.0} µs, {} completed, {} lost, {} retries, {} \
             injected",
            leg.fault_pct, leg.qps, leg.p50_us, leg.completed, leg.lost, leg.retries, leg.injected
        );
        assert_eq!(leg.lost, 0, "the resilient client must not lose requests");
        legs.push(leg);
    }
    assert!(legs[2].injected > 0, "the 5% plan never injected a fault");

    let rows: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{ \"fault_pct\": {:.1}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
                 \"completed\": {}, \"lost\": {}, \"retries\": {}, \"injected\": {} }}",
                l.fault_pct, l.qps, l.p50_us, l.completed, l.lost, l.retries, l.injected
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"T22_serving_resilience\",\n  \"query\": \"{}\",\n  \
         \"window_ms\": {},\n  \"clean_path\": {{ \"plain_p50_us\": {:.1}, \
         \"resilient_p50_us\": {:.1}, \"overhead_pct\": {:.2} }},\n  \"runs\": [\n{}\n  ]\n}}\n",
        QUERY.replace('"', "\\\""),
        WINDOW.as_millis(),
        plain_p50.as_secs_f64() * 1e6,
        resilient_p50.as_secs_f64() * 1e6,
        overhead_pct,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("-- E22 results written to BENCH_resilience.json"),
        Err(e) => eprintln!("-- E22 results not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
