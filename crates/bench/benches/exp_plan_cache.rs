//! E10 — plan-cache payoff: repeated queries with and without a shared
//! compiled-plan cache. Under steady traffic the same query texts recur,
//! so the parse → rewrite front end amortizes to a map lookup; this bench
//! measures that amortization and verifies (via `ExecCounters`) that the
//! repeated run really is served from the cache.

use std::hint::black_box;
use std::sync::Arc;
use xqp_bench::harness::{BenchmarkId, Criterion};
use xqp_bench::{criterion_group, criterion_main, xmark_at};
use xqp_exec::{Executor, PlanCache};

const QUERIES: [&str; 3] = [
    "for $a in doc()//open_auction where $a/current > 100 return $a/seller",
    "for $p in doc()//person return <n>{$p/name}</n>",
    "//item[incategory]/name",
];

fn bench(c: &mut Criterion) {
    let sdoc = xmark_at(0.05);
    let mut g = c.benchmark_group("E10_plan_cache");
    g.sample_size(10);

    // Cold: a fresh cache per executor, so every query compiles.
    g.bench_with_input(BenchmarkId::new("cold", "fresh-cache"), &sdoc, |b, sdoc| {
        b.iter(|| {
            let ex = Executor::new(sdoc);
            for q in QUERIES {
                black_box(ex.query(q).expect("bench query runs"));
            }
        })
    });

    // Warm: one shared cache across executors (the Database arrangement).
    let shared = Arc::new(PlanCache::default());
    g.bench_with_input(BenchmarkId::new("warm", "shared-cache"), &sdoc, |b, sdoc| {
        b.iter(|| {
            let ex = Executor::new(sdoc).with_plan_cache(Arc::clone(&shared));
            for q in QUERIES {
                black_box(ex.query(q).expect("bench query runs"));
            }
        })
    });
    g.finish();

    let ex = Executor::new(&sdoc).with_plan_cache(Arc::clone(&shared));
    let counters = ex.counters();
    println!(
        "plan cache after warm runs: hits={} misses={} evictions={}",
        counters.plan_hits, counters.plan_misses, counters.plan_evictions
    );
    assert!(counters.plan_hits > 0, "repeated queries must be served from the plan cache");
    assert_eq!(counters.plan_misses, QUERIES.len() as u64);
}

criterion_group!(benches, bench);
criterion_main!(benches);
