//! Shared fixtures for the experiment benches and the `report` binary.
//!
//! Every experiment (see DESIGN.md §6 and EXPERIMENTS.md) uses the same
//! documents and query sets, built here so the benches and the
//! table-printing harness measure identical work. The [`harness`] module
//! is the std-only stand-in for criterion (the build environment is
//! offline; no registry crates resolve).

pub mod harness;

use xqp_exec::{Executor, Strategy};
use xqp_gen::{gen_xmark, XmarkConfig};
use xqp_storage::SuccinctDoc;
use xqp_xml::Document;

/// The serial physical strategies every comparison sweeps.
pub const STRATEGIES: [Strategy; 4] =
    [Strategy::NoK, Strategy::TwigStack, Strategy::BinaryJoin, Strategy::Naive];

/// Standard XMark document scales for the size sweeps (E5/E6).
pub const SCALES: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// Build the stored form of an XMark document at `scale`.
pub fn xmark_at(scale: f64) -> SuccinctDoc {
    SuccinctDoc::from_document(&gen_xmark(&XmarkConfig::scale(scale)))
}

/// Build both the DOM and stored forms (for the update experiment).
pub fn xmark_both(scale: f64) -> (Document, SuccinctDoc) {
    let dom = gen_xmark(&XmarkConfig::scale(scale));
    let sdoc = SuccinctDoc::from_document(&dom);
    (dom, sdoc)
}

/// Run a path query once under one strategy, returning the hit count.
pub fn run_path(sdoc: &SuccinctDoc, strategy: Strategy, path: &str) -> usize {
    Executor::new(sdoc)
        .with_strategy(strategy)
        .eval_path_str(path)
        .expect("benchmark query evaluates")
        .len()
}

/// Median wall-clock of `iters` runs of `f` (the report binary's measure;
/// criterion handles its own statistics).
pub fn median_time(iters: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut times: Vec<std::time::Duration> = (0..iters)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_queries_run() {
        let sdoc = xmark_at(0.02);
        for strat in STRATEGIES {
            assert!(run_path(&sdoc, strat, "//keyword") > 0);
        }
    }
}
