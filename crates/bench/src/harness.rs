//! A minimal, std-only benchmark harness with a criterion-shaped API.
//!
//! The build environment resolves no registry crates, so the experiment
//! benches cannot link the real `criterion`. This module provides the
//! small slice of its API the benches use — `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` — plus [`criterion_group!`]/[`criterion_main!`] macros
//! at the crate root, so a bench file ports by changing only its `use`
//! lines. Timing is [`std::time::Instant`]; each sample times one
//! invocation of the routine and the report shows min/median/max (median
//! is robust to scheduler noise, which is all these experiments need —
//! they compare orders of magnitude, not nanoseconds).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Entry point handed to each bench function (criterion-compatible shape).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, name, sample_size: 10, throughput: None }
    }
}

/// Throughput annotation: per-sample rates reported next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per routine invocation.
    Elements(u64),
    /// Bytes processed per routine invocation.
    Bytes(u64),
}

/// A benchmark id: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("nok", "scale0.1")` → `nok/scale0.1`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of measurements sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2; default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `routine(bencher, input)`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut b, input);
        self.report(&id.into().id, &b.samples);
        self
    }

    /// Measure `routine(bencher)`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut b);
        self.report(&id.into().id, &b.samples);
        self
    }

    /// End the group (parity with criterion; reporting happens per bench).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let mut line = format!(
            "{}/{id}: median {median:.2?} (min {min:.2?}, max {max:.2?}, n={})",
            self.name,
            sorted.len(),
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                let _ = write!(line, ", {rate:.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                let _ = write!(line, ", {rate:.1} MiB/s");
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample (after one untimed warm-up call).
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let _ = routine(); // warm-up: page in streams, caches, allocations
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            let v = routine();
            self.samples.push(t.elapsed());
            drop(v);
        }
    }
}

/// Collect bench functions into a runnable group (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn sample_size_floor() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(0);
        let mut calls = 0u32;
        g.bench_function("f", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3, "floor of 2 samples + warm-up");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("nok", "scale0.1").id, "nok/scale0.1");
    }
}
