//! `report` — regenerate every experiment table in one run.
//!
//! Prints the paper-style tables T4–T12 (E1–E3 and E10 are correctness
//! properties verified by the test suite; run `cargo test --workspace`).
//! Numbers go into EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p xqp-bench --bin report
//! ```

use std::time::Duration;
use xqp_algebra::RuleSet;
use xqp_bench::{median_time, run_path, xmark_at, xmark_both, STRATEGIES};
use xqp_exec::{nok, streaming, structural, ExecContext, Executor, Strategy};
use xqp_gen::{blowup_doc, blowup_query, gen_xmark, xmark_queries, XmarkConfig};
use xqp_storage::{update, DocStore, StorageStats, SuccinctDoc, WalOp};
use xqp_xml::{parse_document, serialize, Event, Parser};
use xqp_xpath::{parse_path, PatternGraph};

fn fmt_d(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}µs", d.as_micros())
    }
}

fn main() {
    println!("xqp experiment report — every table/figure of the reproduction");
    println!("(E1 Fig.1, E2 Fig.2, E3 Table 1 and E10 soundness are verified by `cargo test`)\n");
    t4_pipeline_blowup();
    t5_nok_vs_join();
    f6_scalability();
    t7_update();
    t8_join_order();
    t9_streaming();
    t11_ablation();
    t12_storage();
    t13_index();
    t14_suffix();
    t15_persist();
}

fn t4_pipeline_blowup() {
    println!("== T4 (E4): pipelined navigation blow-up — naive vs. one TPM scan ==");
    println!("document: a-chain depth 12; query q_n = //a[b and .//a[b and …]] (n nested)");
    println!("{:<4} {:>12} {:>12} {:>10}", "n", "naive", "nok(τ)", "ratio");
    let sdoc = SuccinctDoc::from_document(&blowup_doc(12));
    for n in [2usize, 3, 4, 5, 6] {
        let q = blowup_query(n);
        let naive = median_time(3, || {
            run_path(&sdoc, Strategy::Naive, &q);
        });
        let nokt = median_time(5, || {
            run_path(&sdoc, Strategy::NoK, &q);
        });
        println!(
            "{:<4} {:>12} {:>12} {:>9.1}x",
            n,
            fmt_d(naive),
            fmt_d(nokt),
            naive.as_secs_f64() / nokt.as_secs_f64().max(1e-9)
        );
    }
    println!();
}

fn t5_nok_vs_join() {
    println!("== T5 (E5): NoK vs. join-based strategies — XMark scale 0.2 ==");
    let sdoc = xmark_at(0.2);
    println!("document: {} stored nodes", sdoc.node_count());
    print!("{:<4} {:>7}", "q", "hits");
    for s in STRATEGIES {
        print!(" {:>12}", s.name());
    }
    println!("   winner");
    for q in xmark_queries() {
        let hits = run_path(&sdoc, Strategy::NoK, q.path);
        let times: Vec<Duration> = STRATEGIES
            .iter()
            .map(|&s| {
                median_time(5, || {
                    run_path(&sdoc, s, q.path);
                })
            })
            .collect();
        let best = times
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| STRATEGIES[i].name())
            .unwrap_or("-");
        print!("{:<4} {:>7}", q.id, hits);
        for t in &times {
            print!(" {:>12}", fmt_d(*t));
        }
        println!("   {best}");
    }
    println!("queries:");
    for q in xmark_queries() {
        println!("  {} = {}   ({})", q.id, q.path, q.stresses);
    }
    println!();
}

fn f6_scalability() {
    println!("== F6 (E6): time vs. document size (query X4) ==");
    println!("{:<8} {:>10} {:>12} {:>12} {:>12}", "scale", "nodes", "nok", "twig", "binary");
    for scale in [0.05, 0.1, 0.2, 0.4, 0.8] {
        let sdoc = xmark_at(scale);
        let path = "//open_auction[bidder/increase > 20]/reserve";
        let nokt = median_time(5, || {
            run_path(&sdoc, Strategy::NoK, path);
        });
        let twig = median_time(5, || {
            run_path(&sdoc, Strategy::TwigStack, path);
        });
        let bj = median_time(5, || {
            run_path(&sdoc, Strategy::BinaryJoin, path);
        });
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>12}",
            scale,
            sdoc.node_count(),
            fmt_d(nokt),
            fmt_d(twig),
            fmt_d(bj)
        );
    }
    println!();
}

fn t7_update() {
    println!("== T7 (E7): local splice vs. re-encode vs. re-parse ==");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12} {:>14} {:>8}",
        "scale", "nodes", "splice-insert", "splice-delete", "re-encode", "parse+encode", "speedup"
    );
    let frag = parse_document("<item id=\"x\"><name>new</name></item>").unwrap();
    for scale in [0.1, 0.4, 0.8] {
        let (dom, sdoc) = xmark_both(scale);
        let xml = serialize(&dom);
        let root = sdoc.root().unwrap();
        let victim = Executor::new(&sdoc).eval_path_str("/site/people/person").unwrap()[0];
        let ins = median_time(5, || {
            update::insert_subtree(&sdoc, root, &frag).unwrap();
        });
        let del = median_time(5, || {
            update::delete_subtree(&sdoc, victim).unwrap();
        });
        let re = median_time(3, || {
            update::rebuild_full(&dom);
        });
        // What a store without local updates pays: re-parse the document.
        let rp = median_time(3, || {
            SuccinctDoc::parse(&xml).unwrap();
        });
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>12} {:>14} {:>7.1}x",
            scale,
            sdoc.node_count(),
            fmt_d(ins),
            fmt_d(del),
            fmt_d(re),
            fmt_d(rp),
            rp.as_secs_f64() / ins.as_secs_f64().max(1e-9)
        );
    }
    println!("(speedup = parse+encode / splice-insert — the locality argument of §4.2)\n");
}

fn t8_join_order() {
    println!("== T8 (E8): structural-join order — cost model (R4) vs. worst ==");
    // Many a's, each with several b's; c's are rare: joining the (b,c) pair
    // first keeps intermediates tiny, joining (a,b) first materializes the
    // whole cross-containment.
    let mut doc = xqp_xml::Document::new();
    let root = doc.append_element(doc.root(), "r");
    for i in 0..4000 {
        let a = doc.append_element(root, "a");
        for j in 0..5 {
            let b = doc.append_element(a, "b");
            if i % 50 == 0 && j == 0 {
                for _ in 0..3 {
                    let c = doc.append_element(b, "c");
                    doc.append_text(c, "x");
                }
            }
        }
    }
    let sdoc = SuccinctDoc::from_document(&doc);
    let ctx = ExecContext::new(&sdoc);
    println!(
        "streams: a={}, b={}, c={}; query //a//b//c (pair-materializing joins)",
        ctx.stats().tag_count("a"),
        ctx.stats().tag_count("b"),
        ctx.stats().tag_count("c")
    );
    println!("{:<26} {:>12} {:>14} {:>8}", "order", "time", "intermediates", "hits");
    for (label, order) in
        [("(b,c) first (cost model)", [1usize, 0]), ("(a,b) first (worst)", [0, 1])]
    {
        let (hits, tuples) = structural::eval_linear_pairs(&ctx, &["a", "b", "c"], &order);
        let t = median_time(5, || {
            structural::eval_linear_pairs(&ctx, &["a", "b", "c"], &order);
        });
        println!("{:<26} {:>12} {:>14} {:>8}", label, fmt_d(t), tuples, hits.len());
    }
    println!();
}

fn t9_streaming() {
    println!("== T9 (E9): streaming vs. stored evaluation ==");
    let xml = serialize(&gen_xmark(&XmarkConfig::scale(0.2)));
    let events: Vec<Event> = Parser::new(&xml).collect::<Result<_, _>>().unwrap();
    let sdoc = SuccinctDoc::parse(&xml).unwrap();
    let pattern =
        PatternGraph::from_path(&parse_path("//person[profile/age > 30]/name").unwrap()).unwrap();
    let hits = streaming::match_stream(events.iter(), &pattern).len();
    let st = median_time(5, || {
        streaming::match_stream(events.iter(), &pattern);
    });
    let stored = median_time(5, || {
        let ctx = ExecContext::new(&sdoc);
        nok::eval_single_output(&ctx, &pattern, None);
    });
    let parse = median_time(3, || {
        let _: Vec<Event> = Parser::new(&xml).collect::<Result<_, _>>().unwrap();
    });
    let mib = xml.len() as f64 / (1024.0 * 1024.0);
    println!("document: {:.1} MiB serialized, {} matches", mib, hits);
    println!(
        "  stream match    {:>10}  ({:.1} MiB/s over events)",
        fmt_d(st),
        mib / st.as_secs_f64()
    );
    println!("  stored match    {:>10}", fmt_d(stored));
    println!("  parse to events {:>10}", fmt_d(parse));
    println!();
}

fn t11_ablation() {
    println!("== T11 (E11): rewrite-rule ablation (optimize + execute) ==");
    let sdoc = xmark_at(0.2);
    // Deep per-binding navigation is where the rewrites pay: each item
    // explores its description subtree for keywords.
    let query = "for $i in doc()//item \
         let $k := $i//keyword \
         let $e := $i//emph \
         let $m := $i//mail \
         return <i>{count($k)} {count($e)} {count($m)}</i>";
    println!("query: per-item keyword/emph/mail aggregation (three descendant lets)");
    let base = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all());
        median_time(5, || {
            ex.query_items(query).unwrap();
        })
    };
    println!("{:<12} {:>12} {:>10}", "rules", "time", "vs all");
    println!("{:<12} {:>12} {:>9.2}x", "all", fmt_d(base), 1.0);
    for r in [1u8, 2, 5, 7, 8, 9] {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all_except(r));
        let t = median_time(5, || {
            ex.query_items(query).unwrap();
        });
        println!(
            "{:<12} {:>12} {:>9.2}x",
            format!("all - R{r}"),
            fmt_d(t),
            t.as_secs_f64() / base.as_secs_f64()
        );
    }
    // R9 on a query it applies to: selective where over a fused for-var.
    let r9_query = "for $a in doc()//open_auction \
         let $r := $a/reserve \
         where $a/bidder/increase > 40 \
         return <x>{$r}</x>";
    let with9 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all());
        median_time(5, || {
            ex.query_items(r9_query).unwrap();
        })
    };
    let without9 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all_except(9));
        median_time(5, || {
            ex.query_items(r9_query).unwrap();
        })
    };
    println!(
        "selective-where query: with R9 {} vs without {} ({:.2}x)",
        fmt_d(with9),
        fmt_d(without9),
        without9.as_secs_f64() / with9.as_secs_f64()
    );
    let ex = Executor::new(&sdoc).with_rules(RuleSet::none());
    let t = median_time(3, || {
        ex.query_items(query).unwrap();
    });
    println!("{:<12} {:>12} {:>9.2}x", "none", fmt_d(t), t.as_secs_f64() / base.as_secs_f64());

    // R7 and R8 are no-ops above; show them on queries they apply to.
    let dead_let = "for $i in doc()//item \
         let $dead := $i//keyword \
         return $i/name";
    let with7 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all());
        median_time(5, || {
            ex.query_items(dead_let).unwrap();
        })
    };
    let without7 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all_except(7));
        median_time(5, || {
            ex.query_items(dead_let).unwrap();
        })
    };
    println!(
        "dead-let query: with R7 {} vs without {} ({:.2}x)",
        fmt_d(with7),
        fmt_d(without7),
        without7.as_secs_f64() / with7.as_secs_f64()
    );
    let const_where = "for $i in doc()//item \
         where 2 * 3 = 7 \
         return $i/name";
    let with8 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all());
        median_time(5, || {
            ex.query_items(const_where).unwrap();
        })
    };
    let without8 = {
        let ex = Executor::new(&sdoc).with_rules(RuleSet::all_except(8));
        median_time(5, || {
            ex.query_items(const_where).unwrap();
        })
    };
    println!(
        "constant-where query: with R8 {} vs without {} ({:.2}x)\n",
        fmt_d(with8),
        fmt_d(without8),
        without8.as_secs_f64() / with8.as_secs_f64()
    );
}

fn t12_storage() {
    println!("== T12 (E12): storage size — succinct vs. DOM vs. interval tables ==");
    println!(
        "{:<8} {:>9} {:>11} {:>10} {:>10} {:>11} {:>11} {:>9}",
        "scale", "nodes", "structure", "schema", "content", "DOM", "intervals", "bits/node"
    );
    for scale in [0.1, 0.4, 0.8] {
        let (dom, sdoc) = xmark_both(scale);
        let st = StorageStats::measure(&dom, &sdoc);
        println!(
            "{:<8} {:>9} {:>10}B {:>9}B {:>9}B {:>10}B {:>10}B {:>9.2}",
            scale,
            st.nodes,
            st.succinct_structure,
            st.succinct_schema,
            st.succinct_content,
            st.dom_bytes,
            st.interval_bytes,
            st.structure_bits_per_node()
        );
    }
    println!("(structure = parentheses + rank directory + range-min-max tree)\n");
}

fn t13_index() {
    println!("== T13 (extension): content-index probes for σv ==");
    let sdoc = xmark_at(0.4);
    let index = xqp_storage::ValueIndex::build(&sdoc);
    let path = "//person[@id = \"person3\"]/name";
    println!("query: {path} (selective equality)");
    for (label, with_index) in [("no index (stream scan)", false), ("B+-tree probe", true)] {
        let mut ex = Executor::new(&sdoc).with_strategy(Strategy::TwigStack);
        if with_index {
            ex = ex.with_index(&index);
        }
        ex.eval_path_str(path).unwrap(); // warm tag streams
        let t = median_time(9, || {
            ex.eval_path_str(path).unwrap();
        });
        ex.reset_counters();
        ex.eval_path_str(path).unwrap();
        println!("  {:<24} {:>10}   {} stream items", label, fmt_d(t), ex.counters().stream_items);
    }
    println!();
}

fn t14_suffix() {
    println!("== T14 (extension): substring search — suffix array vs. scan ==");
    let sdoc = xmark_at(0.4);
    let t_build = median_time(3, || {
        xqp_storage::SuffixIndex::build(&sdoc);
    });
    let idx = xqp_storage::SuffixIndex::build(&sdoc);
    let needle = "lantern";
    let hits = idx.find(&sdoc, needle).len();
    let t_idx = median_time(9, || {
        idx.find(&sdoc, needle);
    });
    let t_scan = median_time(9, || {
        let mut out = 0usize;
        for r in 0..sdoc.content_store().len() {
            if sdoc.content_store().get(r).contains(needle) {
                out += 1;
            }
        }
        std::hint::black_box(out);
    });
    println!(
        "needle `{needle}`: {hits} hits; index build {} ({} suffixes)",
        fmt_d(t_build),
        idx.len()
    );
    println!("  suffix-array probe {:>10}", fmt_d(t_idx));
    println!("  content scan       {:>10}", fmt_d(t_scan));
    println!();
}

fn t15_persist() {
    println!("== T15 (exp_persist): durable store — snapshot write / cold open / WAL replay ==");
    println!("baseline: what a non-durable engine pays on every start — full XML re-parse");
    const REPLAYED: usize = 64;
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "scale", "nodes", "re-parse", "snap write", "cold open", "open+64 wal", "open/rp"
    );
    let dir = std::env::temp_dir().join(format!("xqp-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for scale in [0.05, 0.1, 0.2] {
        let (dom, sdoc) = xmark_both(scale);
        let xml = serialize(&dom);
        let slot = dir.join(format!("s{:03}", (scale * 1000.0) as u32));
        let rp = median_time(3, || {
            SuccinctDoc::parse(&xml).unwrap();
        });
        let w = median_time(3, || {
            DocStore::create(&slot, &sdoc).unwrap();
        });
        let cold = median_time(3, || {
            DocStore::open(&slot).unwrap();
        });
        // Replay throughput: a log of root-level inserts folded in on open.
        {
            let mut store = DocStore::create(&slot, &sdoc).unwrap();
            for i in 0..REPLAYED {
                store
                    .log(&WalOp::Insert { parent: 0, fragment_xml: format!("<bench i=\"{i}\"/>") })
                    .unwrap();
            }
        }
        let replay = median_time(3, || {
            DocStore::open(&slot).unwrap();
        });
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>12} {:>14} {:>7.1}x",
            scale,
            sdoc.node_count(),
            fmt_d(rp),
            fmt_d(w),
            fmt_d(cold),
            fmt_d(replay),
            rp.as_secs_f64() / cold.as_secs_f64().max(1e-9)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("(open/rp = re-parse / cold open — what the snapshot saves at start-up)");
}
