//! Wire failpoints: deterministic fault injection at every socket I/O
//! point of the serving stack.
//!
//! This is the network twin of `xqp_storage::persist::failpoint` — the
//! same discipline (count the reachable points of a workload, then replay
//! it failing each point in turn) applied to the wire instead of the disk.
//! One difference forces a different mechanism: persist I/O is synchronous
//! on the caller's thread, so a thread-local policy suffices there; socket
//! I/O is spread across the accept loop, session threads, watcher threads
//! and the client, so the policy here is an explicitly *shared*
//! [`FaultPlan`] handed to both ends of a loopback run (server via
//! `ServerConfig::fault`, client via `Client::connect_with_fault`). With
//! no plan attached, the check compiles down to an `Option` test — the
//! production path pays one branch per socket operation.
//!
//! A plan decides *when* to inject ([`FaultPlan::check`], a global
//! operation counter across all streams sharing the plan) and the
//! [`FaultStream`] adapter realizes *what* is injected on its stream:
//!
//! * [`WireFault::Error`] — the operation fails with `ConnectionReset`;
//! * [`WireFault::ShortRead`] — the read delivers a single byte (legal
//!   TCP fragmentation the framing layer must reassemble);
//! * [`WireFault::ShortWrite`] — half the buffer is written, then the
//!   stream dies (the peer sees a cut frame);
//! * [`WireFault::Truncate`] — the write delivers everything but the last
//!   byte, then the stream dies (byte-level frame truncation);
//! * [`WireFault::Delay`] — the operation succeeds after an artificial
//!   stall (exercises timeout/deadline paths, never corrupts data);
//! * [`WireFault::Disconnect`] — the stream dies mid-frame: reads see
//!   EOF, writes see `BrokenPipe`.
//!
//! "Dies" is per-stream state: the injection *decision* is global to the
//! plan (so the Nth socket operation of a whole run can be targeted), but
//! the consequence latches on the one stream that drew the fault, exactly
//! like a real connection loss.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The socket operations a wire failpoint can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOp {
    /// A connection being accepted by the server.
    Accept,
    /// A socket read (either side).
    Read,
    /// A socket write (either side).
    Write,
    /// An explicit flush after a frame write.
    Flush,
    /// A deliberate shutdown/close of the stream.
    Close,
    /// A client `connect`.
    Connect,
}

impl WireOp {
    /// Human-readable operation name (for injected error messages).
    pub fn name(self) -> &'static str {
        match self {
            WireOp::Accept => "accept",
            WireOp::Read => "read",
            WireOp::Write => "write",
            WireOp::Flush => "flush",
            WireOp::Close => "close",
            WireOp::Connect => "connect",
        }
    }
}

/// What an armed wire failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The operation fails with a `ConnectionReset` error.
    Error,
    /// A read delivers at most one byte (TCP fragmentation).
    ShortRead,
    /// A write delivers half the buffer, then the stream dies.
    ShortWrite,
    /// A write delivers all but the final byte, then the stream dies —
    /// byte-level frame truncation.
    Truncate,
    /// The operation stalls for the given delay, then succeeds.
    Delay(Duration),
    /// The stream dies mid-frame: EOF on reads, `BrokenPipe` on writes.
    Disconnect,
}

/// The six flavors cycled by sweeps (delay kept short so sweeps stay fast).
pub const FLAVORS: [WireFault; 6] = [
    WireFault::Error,
    WireFault::ShortRead,
    WireFault::ShortWrite,
    WireFault::Truncate,
    WireFault::Delay(Duration::from_millis(30)),
    WireFault::Disconnect,
];

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Count operations without failing any.
    Counting,
    /// Inject `fault` at the `nth` operation (0-based) seen by the plan.
    Nth { nth: u64, fault: WireFault },
    /// Inject a pseudo-random flavor at each operation with probability
    /// `prob` (per-mille), from a deterministic xorshift stream.
    Random { state: u64, prob_millis: u32 },
}

/// A shared wire-fault policy. Both ends of a loopback torture run hold
/// the same `Arc<FaultPlan>`; every socket operation routed through it
/// bumps one global counter, making "the Nth socket operation of this
/// run" a meaningful, replayable coordinate.
#[derive(Debug)]
pub struct FaultPlan {
    mode: Mutex<Mode>,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A counting plan: observes every operation, fails none.
    pub fn counting() -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            mode: Mutex::new(Mode::Counting),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Inject `fault` at the `nth` socket operation (0-based) this plan
    /// observes; all other operations pass.
    pub fn nth(nth: u64, fault: WireFault) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            mode: Mutex::new(Mode::Nth { nth, fault }),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Inject a deterministically pseudo-random flavor at each operation
    /// with probability `prob` (0.0–1.0), seeded by `seed`.
    pub fn random(seed: u64, prob: f64) -> Arc<FaultPlan> {
        let prob_millis = (prob.clamp(0.0, 1.0) * 1000.0).round() as u32;
        Arc::new(FaultPlan {
            mode: Mutex::new(Mode::Random { state: seed | 1, prob_millis }),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Stop injecting: switch the plan to pure counting mode. The torture
    /// harness disarms a plan once its fault window closes, so that the
    /// post-fault recovery checks (convergence, liveness, slot drain) run
    /// deterministically fault-free even when operation numbering drifted
    /// and the armed point was never reached inside the window.
    pub fn disarm(&self) {
        let mut mode = self.mode.lock().unwrap_or_else(|e| e.into_inner());
        *mode = Mode::Counting;
    }

    /// Operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Record one socket operation; returns the fault to inject, if any.
    /// `Delay` faults never target `Accept`/`Connect`/`Close` (there is
    /// nothing to stall there that the harness could observe).
    pub fn check(&self, op: WireOp) -> Option<WireFault> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        let fault = {
            let mut mode = self.mode.lock().unwrap_or_else(|e| e.into_inner());
            match *mode {
                Mode::Counting => None,
                Mode::Nth { nth, fault } => (n == nth).then_some(fault),
                Mode::Random { ref mut state, prob_millis } => {
                    // xorshift64*: cheap, deterministic, good enough to
                    // scatter faults across a stream of operations.
                    let mut x = *state;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *state = x;
                    if (x % 1000) < u64::from(prob_millis) {
                        Some(FLAVORS[(x / 1000 % FLAVORS.len() as u64) as usize])
                    } else {
                        None
                    }
                }
            }
        };
        let fault = match (fault, op) {
            // Control points can't realize a stall the peer would observe;
            // degrade to a plain error so the point still gets coverage.
            (Some(WireFault::Delay(_)), WireOp::Accept | WireOp::Connect | WireOp::Close) => {
                Some(WireFault::Error)
            }
            (f, _) => f,
        };
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }
}

fn reset_err(op: WireOp) -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, format!("injected wire fault at {}", op.name()))
}

/// A `Read + Write` adapter injecting the plan's faults into one stream.
/// The underlying stream is borrowed generically so both `TcpStream`
/// references and in-memory test buffers work.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    plan: Option<Arc<FaultPlan>>,
    /// Latched after a fatal injected fault: the stream is dead from this
    /// side's point of view, like a real torn connection.
    dead: bool,
}

impl<S> FaultStream<S> {
    /// Wrap `inner`; with `plan = None` every operation passes straight
    /// through (one branch of overhead).
    pub fn new(inner: S, plan: Option<Arc<FaultPlan>>) -> FaultStream<S> {
        FaultStream { inner, plan, dead: false }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn decide(&mut self, op: WireOp) -> Option<WireFault> {
        self.plan.as_ref().and_then(|p| p.check(op))
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Ok(0); // torn connection: EOF forever
        }
        match self.decide(WireOp::Read) {
            None => self.inner.read(buf),
            Some(WireFault::Error) => Err(reset_err(WireOp::Read)),
            Some(WireFault::ShortRead) => {
                let cap = buf.len().min(1);
                self.inner.read(&mut buf[..cap])
            }
            Some(WireFault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            // Write-flavored faults on a read point degrade to a torn
            // connection — the read side observes the peer vanishing.
            Some(WireFault::ShortWrite | WireFault::Truncate | WireFault::Disconnect) => {
                self.dead = true;
                Ok(0)
            }
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected torn connection"));
        }
        match self.decide(WireOp::Write) {
            None => self.inner.write(buf),
            Some(WireFault::Error) => Err(reset_err(WireOp::Write)),
            Some(WireFault::ShortWrite) => {
                let cut = (buf.len() / 2).max(1).min(buf.len());
                let n = self.inner.write(&buf[..cut])?;
                self.dead = true;
                Ok(n)
            }
            Some(WireFault::Truncate) => {
                let cut = buf.len().saturating_sub(1);
                if cut > 0 {
                    self.inner.write_all(&buf[..cut])?;
                }
                self.dead = true;
                if cut > 0 {
                    Ok(cut)
                } else {
                    Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected truncation"))
                }
            }
            Some(WireFault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(WireFault::ShortRead) => self.inner.write(buf), // read flavor: no-op here
            Some(WireFault::Disconnect) => {
                self.dead = true;
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected disconnect"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected torn connection"));
        }
        match self.decide(WireOp::Flush) {
            None | Some(WireFault::ShortRead) => self.inner.flush(),
            Some(WireFault::Error) => Err(reset_err(WireOp::Flush)),
            Some(WireFault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.flush()
            }
            Some(WireFault::ShortWrite | WireFault::Truncate | WireFault::Disconnect) => {
                self.dead = true;
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected disconnect"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_plan_counts_and_never_fires() {
        let plan = FaultPlan::counting();
        for op in [WireOp::Accept, WireOp::Read, WireOp::Write, WireOp::Flush, WireOp::Close] {
            assert_eq!(plan.check(op), None);
        }
        assert_eq!(plan.ops_seen(), 5);
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn nth_plan_fires_exactly_once() {
        let plan = FaultPlan::nth(2, WireFault::Error);
        assert_eq!(plan.check(WireOp::Read), None);
        assert_eq!(plan.check(WireOp::Write), None);
        assert_eq!(plan.check(WireOp::Read), Some(WireFault::Error));
        assert_eq!(plan.check(WireOp::Read), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn random_plan_is_deterministic_and_roughly_calibrated() {
        let a = FaultPlan::random(7, 0.05);
        let b = FaultPlan::random(7, 0.05);
        let fire_a: Vec<_> = (0..2000).map(|_| a.check(WireOp::Read).is_some()).collect();
        let fire_b: Vec<_> = (0..2000).map(|_| b.check(WireOp::Read).is_some()).collect();
        assert_eq!(fire_a, fire_b, "same seed must give the same schedule");
        let rate = a.injected() as f64 / a.ops_seen() as f64;
        assert!((0.02..=0.10).contains(&rate), "5% plan fired at {rate}");
        // 0% never fires.
        let z = FaultPlan::random(7, 0.0);
        for _ in 0..500 {
            assert_eq!(z.check(WireOp::Write), None);
        }
    }

    #[test]
    fn delay_degrades_to_error_at_control_points() {
        let plan = FaultPlan::nth(0, WireFault::Delay(Duration::from_secs(60)));
        // Were this a real delay, the test would hang for a minute.
        assert_eq!(plan.check(WireOp::Accept), Some(WireFault::Error));
    }

    #[test]
    fn fault_stream_injects_and_latches() {
        // Disconnect: EOF on read, then dead forever.
        let data = [1u8, 2, 3, 4];
        let mut s = FaultStream::new(&data[..], Some(FaultPlan::nth(0, WireFault::Disconnect)));
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
        assert_eq!(s.read(&mut buf).unwrap(), 0, "dead stream stays dead");

        // Short read: one byte at a time is legal, not an error.
        let mut s = FaultStream::new(&data[..], Some(FaultPlan::nth(0, WireFault::ShortRead)));
        assert_eq!(s.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], 1);
        assert_eq!(s.read(&mut buf).unwrap(), 3, "later reads recover the rest");

        // Truncate: all but the last byte lands, then the stream dies.
        let mut out = Vec::new();
        let mut s = FaultStream::new(&mut out, Some(FaultPlan::nth(0, WireFault::Truncate)));
        assert_eq!(s.write(&[9, 9, 9, 9]).unwrap(), 3);
        assert!(s.write(&[1]).is_err(), "dead after truncation");
        drop(s);
        assert_eq!(out, vec![9, 9, 9]);

        // Error: typed io error, stream not latched dead.
        let mut s = FaultStream::new(&data[..], Some(FaultPlan::nth(0, WireFault::Error)));
        assert_eq!(s.read(&mut buf).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.read(&mut buf).unwrap(), 4, "soft error does not kill the stream");
    }

    #[test]
    fn no_plan_is_transparent() {
        let data = [7u8; 16];
        let mut s = FaultStream::new(&data[..], None);
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 16);
        let mut out = Vec::new();
        let mut w = FaultStream::new(&mut out, None);
        assert_eq!(w.write(&buf).unwrap(), 16);
        w.flush().unwrap();
    }
}
