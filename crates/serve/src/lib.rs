//! # xqp-serve — the concurrent serving subsystem
//!
//! Multi-client query serving on top of the engine's MVCC read path
//! (`xqp_exec::mvcc`): every connection is a session whose reads run
//! against an immutable snapshot of the target document, so N clients can
//! query at full speed while a writer streams structural updates — readers
//! never block writers, writers never block readers, and no reader ever
//! observes a half-applied update.
//!
//! The stack, bottom-up:
//!
//! * [`protocol`] — length-prefixed, CRC-framed request/response wire
//!   format over TCP, reusing the storage layer's little-endian framing
//!   primitives. Zero external dependencies.
//! * [`server`] — hand-rolled `std::net` thread-per-connection server:
//!   admission control (bounded sessions, typed busy refusal),
//!   per-session resource limits, cooperative cancellation when a client
//!   disconnects mid-query, a process-wide shared plan cache scoped by
//!   (document, generation), and panic containment per request.
//! * [`client`] — the blocking driver library the CLI, the benchmarks,
//!   and the fuzzer all use.
//! * [`fuzz`] — the differential loopback leg: a real client session over
//!   a real socket must agree with the in-process engine on every
//!   generated case, including resource-limit trips as a class.

pub mod client;
pub mod fuzz;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{ErrorClass, Request, Response, ServeError};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
