//! # xqp-serve — the concurrent serving subsystem
//!
//! Multi-client query serving on top of the engine's MVCC read path
//! (`xqp_exec::mvcc`): every connection is a session whose reads run
//! against an immutable snapshot of the target document, so N clients can
//! query at full speed while a writer streams structural updates — readers
//! never block writers, writers never block readers, and no reader ever
//! observes a half-applied update.
//!
//! The stack, bottom-up:
//!
//! * [`protocol`] — length-prefixed, CRC-framed request/response wire
//!   format over TCP, reusing the storage layer's little-endian framing
//!   primitives. Zero external dependencies.
//! * [`server`] — hand-rolled `std::net` thread-per-connection server:
//!   admission control (bounded sessions, typed busy refusal),
//!   per-session resource limits, cooperative cancellation when a client
//!   disconnects mid-query, a process-wide shared plan cache scoped by
//!   (document, generation), and panic containment per request.
//! * [`client`] — the blocking driver library the CLI, the benchmarks,
//!   and the fuzzer all use.
//! * [`netfault`] — the wire failpoint layer: deterministic fault
//!   injection (errors, short reads/writes, truncation, delay,
//!   disconnect) at every socket I/O point, the network mirror of the
//!   PR 5 persist-layer failpoints.
//! * [`retry`] — [`retry::ResilientClient`]: bounded exponential-backoff
//!   retries with jitter, automatic reconnect + session-state replay, and
//!   strict idempotency rules (never re-send an update after a response
//!   byte arrived).
//! * [`fuzz`] — the differential loopback leg: a real client session over
//!   a real socket must agree with the in-process engine on every
//!   generated case, including resource-limit trips as a class.
//! * [`torture`] — the network torture harness behind `xqp torture
//!   --net`: enumerate every wire I/O point a scenario touches, then
//!   re-run the scenario failing each one, asserting the resilience
//!   invariants (no panic, no slot leak, no wrong answer, convergence).

pub mod client;
pub mod fuzz;
pub mod netfault;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod torture;

pub use client::Client;
pub use netfault::{FaultPlan, FaultStream, WireFault, WireOp};
pub use protocol::{ErrorClass, Request, Response, ServeError};
pub use retry::{ResilientClient, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use torture::{NetTortureConfig, NetTortureReport};
