//! The network torture harness behind `xqp torture --net`: the wire twin
//! of the persist-layer fault sweep (`xqp_core::torture`).
//!
//! The discipline is the same two-phase replay the disk harness proved
//! out. Phase one runs a fixed client/server scenario with a *counting*
//! [`FaultPlan`] to enumerate every socket I/O point it touches. Phase
//! two replays the scenario once per point, arming exactly one fault
//! (cycling the six [`FLAVORS`]) at that point, and asserts the
//! resilience invariants after every replay:
//!
//! 1. **No server panic** — the server still answers a ping after the
//!    faulted run, and its `panics_caught` counter stayed at zero.
//! 2. **No session-slot leak** — `sessions_in_flight` returns to zero
//!    once the client is gone; a leaked slot would eventually wedge
//!    admission control.
//! 3. **No wrong answer** — every query the client completes must be
//!    byte-identical to the fault-free ground truth computed in-process;
//!    a typed error is acceptable, silent corruption never is.
//! 4. **Convergence** — a query that failed under the fault must succeed
//!    with the ground-truth answer when retried after the fault window
//!    (the armed fault fires exactly once), which is precisely the
//!    contract the retry layer depends on.
//!
//! A final *random leg* reruns the scenario stream under a 5%
//! random-fault plan with retries enabled, asserting the same
//! no-wrong-answer and slot-leak invariants under sustained fault
//! pressure rather than single placed faults.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqp::Database;

use crate::netfault::{FaultPlan, WireFault, FLAVORS};
use crate::retry::{ResilientClient, RetryPolicy};
use crate::server::{Server, ServerConfig};
use crate::Client;

/// Knobs of the network torture run.
#[derive(Debug, Clone)]
pub struct NetTortureConfig {
    /// Master seed: retry jitter and the random leg derive from it.
    pub seed: u64,
    /// Number of faults to actually inject across the sweep: replays
    /// continue (cycling points and flavors) until this many armed faults
    /// have fired.
    pub iters: u64,
    /// Fault probability of the final random leg (0 disables it).
    pub random_prob: f64,
    /// Print one line per faulted replay.
    pub verbose: bool,
}

impl Default for NetTortureConfig {
    fn default() -> Self {
        NetTortureConfig { seed: 0xfa17, iters: 200, random_prob: 0.05, verbose: false }
    }
}

/// One resilience-invariant violation.
#[derive(Debug, Clone)]
pub struct NetTortureViolation {
    /// Index of the faulted socket I/O point within the scenario.
    pub fault_point: u64,
    /// The flavor that was armed there.
    pub fault: WireFault,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for NetTortureViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point {} [{:?}]: {}", self.fault_point, self.fault, self.detail)
    }
}

/// Outcome of a torture run.
#[derive(Debug)]
pub struct NetTortureReport {
    /// Socket I/O points one fault-free scenario touches.
    pub points_per_scenario: u64,
    /// Faults injected across the sweep (one per replay) plus the random
    /// leg's tally.
    pub faults_injected: u64,
    /// Queries that failed under a fault and were saved by a retry
    /// (completed with the correct answer anyway).
    pub saved_by_retry: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<NetTortureViolation>,
}

impl NetTortureReport {
    /// Did every replay uphold every invariant?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The fixed scenario: a small catalog document and a stream of
/// idempotent queries with hand-checkable shapes. Updates are exercised
/// by `tests/resilience.rs` (ambiguity rules need assertion-level
/// control); the torture sweep sticks to idempotent verbs so *every*
/// failure is retryable and convergence is a hard invariant.
const SCENARIO_DOC: &str = "<catalog>\
    <book id=\"1\"><title>Query Processing</title><price>30</price></book>\
    <book id=\"2\"><title>Optimization</title><price>45</price></book>\
    <book id=\"3\"><title>Succinct Trees</title><price>25</price></book>\
    <journal id=\"4\"><title>VLDB</title></journal>\
</catalog>";

const SCENARIO_QUERIES: [&str; 4] = [
    "//book/title",
    "for $b in //book where $b/price > 28 return $b/title",
    "count(//book)",
    "//journal/title",
];

fn scenario_db() -> Arc<Database> {
    let db = Database::new();
    db.load_str("catalog", SCENARIO_DOC).expect("scenario document loads");
    Arc::new(db)
}

/// Ground truth, computed through a fault-free loopback server (same code
/// path as the faulted runs, so any disagreement is the fault's doing).
fn ground_truth() -> Vec<String> {
    let server = Server::start(scenario_db(), "127.0.0.1:0", quiet_config(None))
        .expect("ground-truth server starts");
    let mut client = Client::connect(server.addr()).expect("ground-truth connect");
    let truth = SCENARIO_QUERIES
        .iter()
        .map(|q| client.query("catalog", q).expect("ground-truth query").1)
        .collect();
    let _ = client.close();
    server.shutdown();
    truth
}

fn quiet_config(fault: Option<Arc<FaultPlan>>) -> ServerConfig {
    ServerConfig {
        tick: Duration::from_millis(5),
        fault,
        log_send_failures: false,
        ..ServerConfig::default()
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(2),
        multiplier: 2.0,
        max_delay: Duration::from_millis(40),
        retry_budget: Duration::from_secs(1),
        seed,
        deadline: None,
    }
}

/// Connect with a few tries: the armed fault may land on the connect or
/// accept point itself, in which case the *next* connect must succeed.
fn connect_with_grace(
    addr: std::net::SocketAddr,
    plan: &Arc<FaultPlan>,
    seed: u64,
) -> Option<ResilientClient> {
    for _ in 0..4 {
        match ResilientClient::connect(addr, retry_policy(seed)) {
            Ok(c) => return Some(c),
            Err(_) => {
                let _ = plan;
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    None
}

/// Wait for the server's session-slot count to return to zero.
fn wait_drained(server: &Server, budget: Duration) -> bool {
    let end = Instant::now() + budget;
    while Instant::now() < end {
        if server.sessions_in_flight() == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    server.sessions_in_flight() == 0
}

/// Count the socket I/O points one scenario touches.
fn count_points(seed: u64) -> u64 {
    let plan = FaultPlan::counting();
    let server = Server::start(scenario_db(), "127.0.0.1:0", quiet_config(Some(plan.clone())))
        .expect("counting server starts");
    let mut client = match connect_with_grace(server.addr(), &plan, seed) {
        Some(c) => c,
        None => {
            server.shutdown();
            return 0;
        }
    };
    for q in SCENARIO_QUERIES {
        let _ = client.query("catalog", q);
    }
    let _ = client.close();
    server.shutdown();
    plan.ops_seen()
}

/// One faulted replay: arm `fault` at point `point`, run the stream,
/// check every invariant.
fn run_fault_point(
    point: u64,
    fault: WireFault,
    truth: &[String],
    seed: u64,
    report: &mut NetTortureReport,
    verbose: bool,
) {
    let plan = FaultPlan::nth(point, fault);
    let mut violate = |detail: String| {
        report.violations.push(NetTortureViolation { fault_point: point, fault, detail });
    };
    let server = match Server::start(scenario_db(), "127.0.0.1:0", quiet_config(Some(plan.clone())))
    {
        Ok(s) => s,
        Err(e) => {
            violate(format!("server failed to start: {e}"));
            return;
        }
    };

    let mut failed: Vec<usize> = Vec::new();
    match connect_with_grace(server.addr(), &plan, seed ^ point) {
        None => {
            // Even with the armed fault burning one connect/accept, a
            // fresh connect must go through — the plan fires only once.
            violate("could not establish any session though the fault fires once".into());
        }
        Some(mut client) => {
            for (i, q) in SCENARIO_QUERIES.iter().enumerate() {
                match client.query("catalog", q) {
                    Ok((_, body)) => {
                        if body != truth[i] {
                            violate(format!(
                                "WRONG ANSWER for {q:?}: got {body:?}, want {:?}",
                                truth[i]
                            ));
                        } else if client.retries_total() > 0 && failed.is_empty() {
                            report.saved_by_retry += 1;
                        }
                    }
                    Err(_) => failed.push(i),
                }
            }
            let _ = client.close();
        }
    }

    // The fault window closes with the scenario. Operation numbering can
    // drift between the counting pass and a replay (partial reads, tick
    // timing), so the armed point may not have fired yet — disarm so the
    // recovery checks below never eat a late fault themselves.
    plan.disarm();

    // Convergence: the armed fault has fired (or was never reached); every
    // failed query must now produce the ground-truth answer.
    for i in failed {
        let mut retry = match Client::connect(server.addr()) {
            Ok(c) => c,
            Err(e) => {
                violate(format!("post-fault reconnect failed: {e}"));
                break;
            }
        };
        match retry.query("catalog", SCENARIO_QUERIES[i]) {
            Ok((_, body)) if body == truth[i] => report.saved_by_retry += 1,
            Ok((_, body)) => violate(format!(
                "retried {:?} DIVERGED: got {body:?}, want {:?}",
                SCENARIO_QUERIES[i], truth[i]
            )),
            Err(e) => violate(format!(
                "retried {:?} still failing after fault window: {e}",
                SCENARIO_QUERIES[i]
            )),
        }
        let _ = retry.close();
    }

    // Liveness: the server must still answer a brand-new session.
    match Client::connect(server.addr()).and_then(|mut c| {
        let pong = c.ping()?;
        let _ = c.close();
        Ok(pong)
    }) {
        Ok(_) => {}
        Err(e) => violate(format!("server unresponsive after faulted run: {e}")),
    }

    // No slot leak, no caught panic.
    if !wait_drained(&server, Duration::from_secs(2)) {
        violate(format!(
            "session-slot leak: {} slots still held after clients left",
            server.sessions_in_flight()
        ));
    }
    let panics = server
        .stats_pairs()
        .into_iter()
        .find(|(name, _)| name == "panics_caught")
        .map(|(_, v)| v)
        .unwrap_or(0);
    if panics > 0 {
        violate(format!("server caught {panics} panic(s) under a wire fault"));
    }

    report.faults_injected += plan.injected();
    if verbose {
        eprintln!(
            "net-torture: point {point} [{fault:?}] injected={} violations={}",
            plan.injected(),
            report.violations.len()
        );
    }
    server.shutdown();
}

/// The random leg: sustained 5%-ish fault pressure over one server, with
/// retries; asserts no wrong answers and no slot leak.
fn run_random_leg(cfg: &NetTortureConfig, truth: &[String], report: &mut NetTortureReport) {
    let plan = FaultPlan::random(cfg.seed, cfg.random_prob);
    let server = match Server::start(scenario_db(), "127.0.0.1:0", quiet_config(Some(plan.clone())))
    {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(NetTortureViolation {
                fault_point: u64::MAX,
                fault: WireFault::Error,
                detail: format!("random-leg server failed to start: {e}"),
            });
            return;
        }
    };
    let mut violate = |detail: String| {
        report.violations.push(NetTortureViolation {
            fault_point: u64::MAX,
            fault: WireFault::Error,
            detail,
        });
    };
    let rounds = 12;
    for round in 0..rounds {
        let mut client = match connect_with_grace(server.addr(), &plan, cfg.seed ^ round) {
            Some(c) => c,
            // Under sustained faults an individual connect burst can lose;
            // that is a lost request, not a violation.
            None => continue,
        };
        for (i, q) in SCENARIO_QUERIES.iter().enumerate() {
            if let Ok((_, body)) = client.query("catalog", q) {
                if body != truth[i] {
                    violate(format!(
                        "random leg round {round}: WRONG ANSWER for {q:?}: got {body:?}"
                    ));
                }
            }
        }
        let _ = client.close();
    }
    plan.disarm();
    if !wait_drained(&server, Duration::from_secs(2)) {
        violate(format!("random leg: session-slot leak ({} held)", server.sessions_in_flight()));
    }
    report.faults_injected += plan.injected();
    server.shutdown();
}

/// Run the full harness: count, sweep every point (cycling flavors,
/// wrapping around until `iters` faults have been placed), then the
/// random leg.
pub fn torture(cfg: NetTortureConfig) -> NetTortureReport {
    let truth = ground_truth();
    let points = count_points(cfg.seed);
    let mut report = NetTortureReport {
        points_per_scenario: points,
        faults_injected: 0,
        saved_by_retry: 0,
        violations: Vec::new(),
    };
    if points == 0 {
        report.violations.push(NetTortureViolation {
            fault_point: 0,
            fault: WireFault::Error,
            detail: "counting pass saw zero socket operations".into(),
        });
        return report;
    }
    // Replay until `iters` faults have actually fired: a replay whose
    // armed point drifted past the scenario window injects nothing and
    // does not count. The cap bounds pathological drift.
    let max_replays = cfg.iters.saturating_mul(3).max(cfg.iters + 8);
    let mut index = 0u64;
    while report.faults_injected < cfg.iters && index < max_replays {
        let point = index % points;
        let fault = FLAVORS[(index / points) as usize % FLAVORS.len()];
        run_fault_point(point, fault, &truth, cfg.seed, &mut report, cfg.verbose);
        index += 1;
        // Bail early on a pathological run: five violations are plenty of
        // signal, and each replay costs a server start.
        if report.violations.len() >= 5 {
            break;
        }
    }
    if cfg.random_prob > 0.0 && report.violations.len() < 5 {
        run_random_leg(&cfg, &truth, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_clean() {
        let report = torture(NetTortureConfig {
            seed: 0xC0FFEE,
            iters: 12,
            random_prob: 0.0,
            verbose: false,
        });
        assert!(report.points_per_scenario > 10, "scenario touches real I/O points");
        assert!(
            report.clean(),
            "violations: {:?}",
            report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}
