//! The resilient client: bounded retries with exponential backoff and
//! jitter, automatic reconnect with session-state replay, and strict
//! idempotency discipline.
//!
//! ## What is retryable
//!
//! Three failure families are worth another attempt:
//!
//! * **typed refusals** — [`ServeError::Overloaded`] (honouring the
//!   server's `retry_after_ms` hint), legacy [`ServeError::ServerBusy`],
//!   and [`ServeError::Draining`] (another server instance may be behind
//!   the same address; with a single server the budget runs out quickly);
//! * **connection loss before any response byte** — `Io`, `Closed`, and
//!   torn-frame errors (`Frame`, `Crc`, `TooLarge`) when
//!   [`Client::response_started`] is false: the server provably never
//!   answered, so even a non-idempotent verb is safe to re-send;
//! * **connection loss after a response byte** — safe only for
//!   *idempotent* verbs ([`Request::is_idempotent`]). For an `Insert` or
//!   `Delete` the server may have applied the update and died sending the
//!   acknowledgement; re-sending would double-apply. Those surface
//!   [`ServeError::Ambiguous`] instead, and the caller decides.
//!
//! [`ServeError::Remote`] is never retried: the server answered; the
//! answer was an error. Re-asking the same question gets the same answer.
//!
//! ## Deadline propagation
//!
//! A policy `deadline` is the budget for the *logical operation*, across
//! every attempt. Each attempt computes the remaining budget, and the
//! reconnect replay threads it into the server-side [`QueryLimits`]
//! timeout (taking the minimum with any session timeout the caller set),
//! so the client-side clock and the server-side governor deadline agree —
//! the server never burns cycles on an answer the client has already
//! abandoned.
//!
//! ## Reconnect protocol
//!
//! After a transport failure the client reconnects, *validates* the new
//! connection with a [`Request::Ping`] carrying the number of attempts
//! burned so far (landing in the server's `retries_seen` counter), then
//! replays session state — one [`Request::SetLimits`] — before re-sending
//! the original request. A reconnect that cannot even ping consumes an
//! attempt like any other failure.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use xqp::QueryLimits;
use xqp_gen::Prng;

use crate::client::Client;
use crate::protocol::{Request, Response, ServeError};

/// Knobs of the retry loop. The defaults suit an interactive client: up
/// to 4 attempts, 20 ms base backoff doubling per attempt, capped at
/// 500 ms per sleep and 2 s of total sleep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before attempt 2.
    pub base_delay: Duration,
    /// Multiplier applied per further attempt (exponential backoff).
    pub multiplier: f64,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Ceiling on *cumulative* backoff sleep across the whole operation —
    /// the retry budget. Exhausting it stops retrying even when attempts
    /// remain.
    pub retry_budget: Duration,
    /// Seed for the jitter PRNG (deterministic given the seed, so torture
    /// runs reproduce).
    pub seed: u64,
    /// Optional wall-clock budget for the logical operation across all
    /// attempts; threaded into the server-side governor timeout.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(20),
            multiplier: 2.0,
            max_delay: Duration::from_millis(500),
            retry_budget: Duration::from_secs(2),
            seed: 0x5eed_cafe,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts = 1`: the resilient client degrades to
    /// the plain one (useful as a baseline in benchmarks and torture).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }
}

/// Why the retry loop gave up (wrapped in [`ServeError`] variants where a
/// typed class exists; surfaced through [`ResilientClient::last_outcome`]
/// for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUp {
    /// All attempts burned.
    AttemptsExhausted,
    /// The cumulative-sleep budget ran out.
    BudgetExhausted,
    /// The operation deadline passed.
    DeadlineExceeded,
    /// The failure class is not retryable (server answered, or ambiguous
    /// non-idempotent loss).
    NotRetryable,
}

/// A self-healing session: owns the address, the policy, and the session
/// state (limits) needed to rebuild a connection from nothing.
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    prng: Prng,
    conn: Option<Client>,
    limits: Option<QueryLimits>,
    /// Attempts burned across the lifetime of this client; reported to the
    /// server on the next reconnect ping.
    retries_total: u32,
    last_outcome: Option<GiveUp>,
}

impl ResilientClient {
    /// Resolve `addr` and connect (the initial connect itself is retried
    /// under the policy).
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol("address resolved to nothing".into()))?;
        let prng = Prng::seed_from_u64(policy.seed);
        let mut c = ResilientClient {
            addr,
            policy,
            prng,
            conn: None,
            limits: None,
            retries_total: 0,
            last_outcome: None,
        };
        c.ensure_connected(&mut RetryClock::start(&c.policy))?;
        Ok(c)
    }

    /// Why the most recent failed operation stopped retrying.
    pub fn last_outcome(&self) -> Option<GiveUp> {
        self.last_outcome
    }

    /// Total attempts burned on retries over this client's lifetime.
    pub fn retries_total(&self) -> u32 {
        self.retries_total
    }

    /// Set (and remember, for replay-after-reconnect) the session limits.
    pub fn set_limits(&mut self, limits: &QueryLimits) -> Result<(), ServeError> {
        self.limits = Some(*limits);
        let req = {
            let (timeout_ms, max_memory, max_rows) = crate::protocol::limits_to_wire(limits);
            Request::SetLimits { timeout_ms, max_memory, max_rows }
        };
        self.request(&req).map(|_| ())
    }

    /// Run an XQuery with retries; returns `(generation, body)`.
    pub fn query(&mut self, doc: &str, query: &str) -> Result<(u64, String), ServeError> {
        match self.request(&Request::Query { doc: doc.into(), query: query.into() })? {
            Response::Value { generation, body } => Ok((generation, body)),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// Evaluate a bare path to node ids, with retries.
    pub fn select(&mut self, doc: &str, path: &str) -> Result<(u64, Vec<u64>), ServeError> {
        match self.request(&Request::Select { doc: doc.into(), path: path.into() })? {
            Response::NodeIds { generation, ids } => Ok((generation, ids)),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// Insert with retries *only* while provably undelivered (see module
    /// docs); an ambiguous loss surfaces [`ServeError::Ambiguous`].
    pub fn insert(&mut self, doc: &str, path: &str, fragment: &str) -> Result<u64, ServeError> {
        let req = Request::Insert { doc: doc.into(), path: path.into(), fragment: fragment.into() };
        match self.request(&req)? {
            Response::Count { n } => Ok(n),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// Delete with the same ambiguity rules as [`ResilientClient::insert`].
    pub fn delete(&mut self, doc: &str, path: &str) -> Result<u64, ServeError> {
        match self.request(&Request::Delete { doc: doc.into(), path: path.into() })? {
            Response::Count { n } => Ok(n),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// List documents, with retries.
    pub fn list_docs(&mut self) -> Result<Vec<String>, ServeError> {
        match self.request(&Request::ListDocs)? {
            Response::Docs { names } => Ok(names),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// Liveness probe with retries; returns `(generation, uptime_ms)`.
    pub fn ping(&mut self) -> Result<(u64, u64), ServeError> {
        match self.request(&Request::Ping { retries: 0 })? {
            Response::Pong { generation, uptime_ms } => Ok((generation, uptime_ms)),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// Server counters, with retries.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Err(ServeError::Protocol(format!("unexpected response kind: {other:?}"))),
        }
    }

    /// End the session cleanly; best-effort (a dead connection is already
    /// closed).
    pub fn close(mut self) -> Result<(), ServeError> {
        match self.conn.take() {
            Some(c) => c.close(),
            None => Ok(()),
        }
    }

    /// The retry loop: attempt → classify → (maybe) backoff + reconnect →
    /// re-attempt, under attempts / budget / deadline bounds.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut clock = RetryClock::start(&self.policy);
        self.last_outcome = None;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Each attempt carries only the remaining deadline budget into
            // the server-side governor, so both clocks agree.
            if self.policy.deadline.is_some() && clock.remaining_deadline().is_none() {
                self.last_outcome = Some(GiveUp::DeadlineExceeded);
                return Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "operation deadline exceeded before attempt",
                )));
            }
            let outcome =
                self.ensure_connected(&mut clock).and_then(|()| self.attempt_once(req, &clock));
            let err = match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let (reconnect, hint) = match self.classify_failure(req, &err) {
                FailureClass::Retry { reconnect, hint } => (reconnect, hint),
                FailureClass::Fatal => {
                    self.last_outcome = Some(GiveUp::NotRetryable);
                    return Err(err);
                }
                FailureClass::Ambiguous => {
                    self.conn = None;
                    self.last_outcome = Some(GiveUp::NotRetryable);
                    return Err(ServeError::Ambiguous {
                        verb: verb_name(req),
                        cause: err.to_string(),
                    });
                }
            };
            if reconnect {
                self.conn = None;
            }
            if attempt >= self.policy.max_attempts {
                self.last_outcome = Some(GiveUp::AttemptsExhausted);
                return Err(err);
            }
            self.retries_total = self.retries_total.saturating_add(1);
            let delay = self.backoff_delay(attempt, hint);
            match clock.sleep(delay) {
                SleepOutcome::Slept => {}
                SleepOutcome::BudgetExhausted => {
                    self.last_outcome = Some(GiveUp::BudgetExhausted);
                    return Err(err);
                }
                SleepOutcome::DeadlineExceeded => {
                    self.last_outcome = Some(GiveUp::DeadlineExceeded);
                    return Err(err);
                }
            }
        }
    }

    /// One wire attempt over the current connection.
    fn attempt_once(&mut self, req: &Request, clock: &RetryClock) -> Result<Response, ServeError> {
        // Non-idempotent verbs get a one-shot deadline check up front; once
        // the bytes are on the wire, ambiguity rules take over.
        let conn = self.conn.as_mut().expect("ensure_connected ran");
        let _ = clock;
        conn.request(req)
    }

    fn classify_failure(&self, req: &Request, err: &ServeError) -> FailureClass {
        match err {
            // Typed refusals: the connection is healthy (Overloaded) or
            // closing (Draining); retry after the hinted backoff.
            ServeError::Overloaded { retry_after_ms, .. } => FailureClass::Retry {
                reconnect: false,
                hint: Some(Duration::from_millis(*retry_after_ms)),
            },
            ServeError::ServerBusy { .. } => FailureClass::Retry { reconnect: true, hint: None },
            ServeError::Draining => FailureClass::Retry { reconnect: true, hint: None },
            // The server answered with a typed error: not a transport
            // problem, retrying cannot change the answer.
            ServeError::Remote { .. } => FailureClass::Fatal,
            // Transport failures: always retryable before the first
            // response byte; after it, only for idempotent verbs.
            ServeError::Io(_)
            | ServeError::Closed
            | ServeError::Frame(_)
            | ServeError::Crc { .. }
            | ServeError::TooLarge { .. }
            | ServeError::Protocol(_) => {
                let started = self.conn.as_ref().map(|c| c.response_started()).unwrap_or(false);
                if req.is_idempotent() || !started {
                    FailureClass::Retry { reconnect: true, hint: None }
                } else {
                    FailureClass::Ambiguous
                }
            }
            ServeError::Ambiguous { .. } => FailureClass::Fatal,
        }
    }

    /// `min(max_delay, base * multiplier^(attempt-1))`, jittered into
    /// `[0.5x, 1.0x]` so a thundering herd decorrelates; a server hint
    /// overrides the computed floor.
    fn backoff_delay(&mut self, attempt: u32, hint: Option<Duration>) -> Duration {
        let exp = self.policy.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = self.policy.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.policy.max_delay.as_secs_f64());
        let jitter = 0.5 + 0.5 * self.prng.next_f64();
        let computed = Duration::from_secs_f64(capped * jitter);
        match hint {
            Some(h) => computed.max(h).min(self.policy.max_delay),
            None => computed,
        }
    }

    /// Connect if needed, validate with a ping, replay session state. The
    /// ping reports the attempts burned so far so the server's
    /// `retries_seen` counter tracks real client-side retry pressure.
    fn ensure_connected(&mut self, clock: &mut RetryClock) -> Result<(), ServeError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut conn = Client::connect(self.addr)?;
        if self.retries_total > 0 {
            conn.ping_with_retries(self.retries_total)?;
        }
        if let Some(limits) = self.limits {
            let effective = clock.clamp_limits(&limits);
            let (timeout_ms, max_memory, max_rows) = crate::protocol::limits_to_wire(&effective);
            match conn.request(&Request::SetLimits { timeout_ms, max_memory, max_rows })? {
                Response::Pong { .. } => {}
                other => {
                    return Err(ServeError::Protocol(format!(
                        "limits replay: unexpected response kind: {other:?}"
                    )))
                }
            }
        } else if let Some(remaining) = clock.remaining_deadline_opt() {
            // No caller limits, but an operation deadline: still thread it
            // into the governor so the server stops when we stop caring.
            let effective = QueryLimits::none().with_timeout(remaining);
            let (timeout_ms, max_memory, max_rows) = crate::protocol::limits_to_wire(&effective);
            match conn.request(&Request::SetLimits { timeout_ms, max_memory, max_rows })? {
                Response::Pong { .. } => {}
                other => {
                    return Err(ServeError::Protocol(format!(
                        "deadline replay: unexpected response kind: {other:?}"
                    )))
                }
            }
        }
        self.conn = Some(conn);
        Ok(())
    }
}

/// How one failed attempt should be handled.
enum FailureClass {
    Retry { reconnect: bool, hint: Option<Duration> },
    Fatal,
    Ambiguous,
}

fn verb_name(req: &Request) -> &'static str {
    match req {
        Request::Ping { .. } => "ping",
        Request::Query { .. } => "query",
        Request::Select { .. } => "select",
        Request::Insert { .. } => "insert",
        Request::Delete { .. } => "delete",
        Request::SetLimits { .. } => "set-limits",
        Request::ListDocs => "list-docs",
        Request::Close => "close",
        Request::Stats => "stats",
    }
}

/// Tracks the two budgets a retry loop spends: cumulative sleep (the
/// retry budget) and wall clock (the operation deadline).
struct RetryClock {
    started: Instant,
    slept: Duration,
    budget: Duration,
    deadline: Option<Duration>,
}

enum SleepOutcome {
    Slept,
    BudgetExhausted,
    DeadlineExceeded,
}

impl RetryClock {
    fn start(policy: &RetryPolicy) -> RetryClock {
        RetryClock {
            started: Instant::now(),
            slept: Duration::ZERO,
            budget: policy.retry_budget,
            deadline: policy.deadline,
        }
    }

    /// Remaining operation deadline; `None` when it has passed.
    fn remaining_deadline(&self) -> Option<Duration> {
        match self.deadline {
            None => Some(Duration::MAX),
            Some(d) => {
                let elapsed = self.started.elapsed();
                if elapsed >= d {
                    None
                } else {
                    Some(d - elapsed)
                }
            }
        }
    }

    /// Remaining operation deadline when one is configured (`None` = no
    /// deadline configured — distinct from "expired").
    fn remaining_deadline_opt(&self) -> Option<Duration> {
        self.deadline.and_then(|_| self.remaining_deadline())
    }

    /// Clamp a session's limits to the remaining operation budget.
    fn clamp_limits(&self, limits: &QueryLimits) -> QueryLimits {
        match self.remaining_deadline_opt() {
            None => *limits,
            Some(remaining) => {
                let mut l = *limits;
                let timeout = match l.timeout {
                    Some(t) => t.min(remaining),
                    None => remaining,
                };
                l = l.with_timeout(timeout);
                l
            }
        }
    }

    fn sleep(&mut self, want: Duration) -> SleepOutcome {
        if self.slept + want > self.budget {
            return SleepOutcome::BudgetExhausted;
        }
        if let Some(remaining) = self.remaining_deadline() {
            if want >= remaining {
                return SleepOutcome::DeadlineExceeded;
            }
        } else {
            return SleepOutcome::DeadlineExceeded;
        }
        std::thread::sleep(want);
        self.slept += want;
        SleepOutcome::Slept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let mut c = ResilientClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            policy: policy.clone(),
            prng: Prng::seed_from_u64(7),
            conn: None,
            limits: None,
            retries_total: 0,
            last_outcome: None,
        };
        for attempt in 1..=8 {
            let d = c.backoff_delay(attempt, None);
            let ceiling = policy.max_delay;
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            let raw = policy.base_delay.as_secs_f64() * policy.multiplier.powi(attempt as i32 - 1);
            let floor = Duration::from_secs_f64(raw.min(ceiling.as_secs_f64()) * 0.5);
            assert!(d >= floor, "attempt {attempt}: {d:?} < floor {floor:?}");
        }
        // A server hint raises the floor.
        let hinted = c.backoff_delay(1, Some(Duration::from_millis(60)));
        assert!(hinted >= Duration::from_millis(60));
        assert!(hinted <= policy.max_delay);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut c = ResilientClient {
                addr: "127.0.0.1:1".parse().unwrap(),
                policy: RetryPolicy { seed, ..RetryPolicy::default() },
                prng: Prng::seed_from_u64(seed),
                conn: None,
                limits: None,
                retries_total: 0,
                last_outcome: None,
            };
            (0..6).map(|a| c.backoff_delay(a + 1, None)).collect::<Vec<_>>()
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }

    #[test]
    fn retry_clock_budgets() {
        let policy = RetryPolicy {
            retry_budget: Duration::from_millis(5),
            deadline: Some(Duration::from_secs(60)),
            ..RetryPolicy::default()
        };
        let mut clock = RetryClock::start(&policy);
        assert!(matches!(clock.sleep(Duration::from_millis(2)), SleepOutcome::Slept));
        assert!(matches!(clock.sleep(Duration::from_millis(10)), SleepOutcome::BudgetExhausted));
        // Deadline clamping: a 60 s deadline leaves ~60 s, so a session
        // timeout of 10 ms wins the min.
        let l = QueryLimits::none().with_timeout(Duration::from_millis(10));
        let clamped = clock.clamp_limits(&l);
        assert_eq!(clamped.timeout, Some(Duration::from_millis(10)));
        // Without a session timeout the remaining deadline becomes the
        // governor timeout.
        let open = clock.clamp_limits(&QueryLimits::none());
        assert!(open.timeout.is_some());
        assert!(open.timeout.unwrap() <= Duration::from_secs(60));
    }

    #[test]
    fn expired_deadline_stops_sleeping() {
        let policy = RetryPolicy { deadline: Some(Duration::ZERO), ..RetryPolicy::default() };
        let mut clock = RetryClock::start(&policy);
        assert!(matches!(clock.sleep(Duration::from_millis(1)), SleepOutcome::DeadlineExceeded));
        assert!(clock.remaining_deadline().is_none());
    }
}
