//! The concurrent query server: thread-per-connection over `std::net`.
//!
//! Each accepted connection is a *session*: it carries its own resource
//! limits (settable over the wire), a fresh [`CancelToken`] per request,
//! and runs every read against a snapshot-isolated MVCC version of the
//! target document ([`xqp_exec::mvcc`]). Readers therefore never block
//! behind the writer mutex and never observe a half-applied update; the
//! generation each response carries tells the client exactly which commit
//! it read.
//!
//! Robustness properties the tests pin:
//!
//! * overload control — at most `max_inflight` requests *execute* at
//!   once; excess requests wait in a bounded FIFO queue, and requests
//!   whose deadline budget cannot survive the estimated wait are shed
//!   immediately with a typed [`Response::Overloaded`] carrying a
//!   retry-after hint — a doomed request never burns a queue slot;
//! * malformed, corrupt, or oversized frames produce a typed
//!   [`ErrorClass::Protocol`] response followed by a clean close — no
//!   panic, no half-written reply, and the server keeps serving others;
//! * a client that disconnects mid-query has its query cancelled
//!   cooperatively (a watcher thread trips the session's token), so an
//!   abandoned expensive query cannot pin a core;
//! * engine panics are caught per request ([`ErrorClass::Internal`]); the
//!   session and the server both survive;
//! * graceful drain ([`Server::drain`]) — stop taking new work, let
//!   in-flight queries finish under a deadline, cancel stragglers via
//!   their cancel tokens, reply [`Response::Draining`] to late arrivals;
//! * shutdown joins every thread — accept loop, sessions, watchers;
//! * every socket I/O point can host an injected wire fault
//!   ([`crate::netfault`]); the tallies are visible in the
//!   [`Request::Stats`] verb alongside the server's own counters.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xqp::exec::differential::panic_message;
use xqp::{CancelToken, Database, Error, QueryLimits, SessionOptions};
use xqp_exec::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};

use crate::netfault::{FaultPlan, FaultStream, WireOp};
use crate::protocol::{
    limits_from_wire, read_frame, write_frame, ErrorClass, Request, Response, ServeError, MAX_FRAME,
};

/// Tunables of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum requests *executing* at once; excess requests queue.
    pub max_inflight: u32,
    /// Maximum requests waiting in the admission queue; beyond this the
    /// server sheds with [`Response::Overloaded`].
    pub max_queue: u32,
    /// Hard cap on concurrent sessions (threads); beyond this a new
    /// connection is refused with [`Response::Overloaded`] outright.
    pub max_sessions: u32,
    /// Largest frame a client may send.
    pub max_frame: u32,
    /// Limits a session starts with (it may lower/replace them via
    /// [`Request::SetLimits`]).
    pub default_limits: QueryLimits,
    /// Capacity of the process-wide shared plan cache.
    pub cache_capacity: usize,
    /// Poll granularity for shutdown checks, queue waits and disconnect
    /// watching.
    pub tick: Duration,
    /// Ceiling on how long a request without a deadline of its own may
    /// wait in the admission queue before being shed.
    pub max_queue_wait: Duration,
    /// Wire-fault injection plan (torture/bench harnesses only; `None` in
    /// production costs one branch per socket operation).
    pub fault: Option<Arc<FaultPlan>>,
    /// Log the first ignored send failure of each session to stderr
    /// (counters always tally every one; see
    /// [`ServerStats::send_failures`]). Torture runs switch this off.
    pub log_send_failures: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            max_queue: 128,
            max_sessions: 1024,
            max_frame: MAX_FRAME,
            default_limits: QueryLimits::none(),
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tick: Duration::from_millis(25),
            max_queue_wait: Duration::from_secs(10),
            fault: None,
            log_send_failures: true,
        }
    }
}

/// Monotonic counters the server maintains; readable at any time through
/// [`ServerHandle::stats`] and over the wire via [`Request::Stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later refused admission).
    pub accepted: AtomicU64,
    /// Requests decoded and dispatched.
    pub requests: AtomicU64,
    /// Requests (or connections) refused because a bound was exhausted —
    /// the queue or the session cap.
    pub overload_rejections: AtomicU64,
    /// Requests shed *before* queueing because their deadline budget could
    /// not survive the estimated wait (deadline-doomed shed).
    pub queue_shed: AtomicU64,
    /// Requests that waited in the admission queue before executing.
    pub queued_total: AtomicU64,
    /// Frames that failed to parse / verify (each also closes its session).
    pub protocol_errors: AtomicU64,
    /// Queries whose cancel token was tripped (disconnect or shutdown).
    pub cancelled: AtomicU64,
    /// Engine panics caught and converted to [`ErrorClass::Internal`].
    pub panics_caught: AtomicU64,
    /// Response sends that failed and were deliberately not surfaced
    /// (peer already gone). Each is counted; at most one per session is
    /// logged.
    pub send_failures: AtomicU64,
    /// Client retry attempts reported via [`Request::Ping`]'s `retries`
    /// field — the server-side view of client-side retry pressure.
    pub retries_seen: AtomicU64,
    /// In-flight queries cancelled because the drain deadline expired.
    pub drain_cancelled: AtomicU64,
    /// Requests/connections answered with [`Response::Draining`].
    pub drain_refused: AtomicU64,
}

impl ServerStats {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }
}

/// Admission-queue state behind `Shared::runq`.
#[derive(Debug)]
struct RunQueue {
    /// Requests currently executing (holding a permit).
    running: u32,
    /// Requests waiting for a permit.
    queued: u32,
    /// Exponentially weighted moving average of request service time, in
    /// milliseconds — the basis of the `est_wait_ms` hint.
    ewma_ms: f64,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    cache: Arc<PlanCache>,
    stats: ServerStats,
    shutdown: AtomicBool,
    draining: AtomicBool,
    in_flight: AtomicU32,
    started: Instant,
    runq: Mutex<RunQueue>,
    runq_cv: Condvar,
    /// Per-session cancel slots, registered at connection start, so the
    /// drain path can trip stragglers without enumerating threads.
    cancel_slots: Mutex<Vec<Weak<Mutex<Option<CancelToken>>>>>,
}

impl Shared {
    /// MVCC generation high-water mark across every served document.
    fn generation_high_water(&self) -> u64 {
        self.db
            .document_names()
            .iter()
            .filter_map(|n| self.db.generation(n).ok())
            .max()
            .unwrap_or(0)
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn pong(&self) -> Response {
        Response::Pong { generation: self.generation_high_water(), uptime_ms: self.uptime_ms() }
    }

    /// The counter pairs the [`Request::Stats`] verb reports. Includes
    /// the injected-wire-fault tally when a fault plan is attached so
    /// torture runs can audit coverage over the same wire they abuse.
    fn stats_pairs(&self) -> Vec<(String, u64)> {
        let s = &self.stats;
        let ld = |f: &AtomicU64| f.load(Ordering::Relaxed);
        let mut pairs = vec![
            ("accepted".to_string(), ld(&s.accepted)),
            ("requests".to_string(), ld(&s.requests)),
            ("overload_rejections".to_string(), ld(&s.overload_rejections)),
            ("queue_shed".to_string(), ld(&s.queue_shed)),
            ("queued_total".to_string(), ld(&s.queued_total)),
            ("protocol_errors".to_string(), ld(&s.protocol_errors)),
            ("cancelled".to_string(), ld(&s.cancelled)),
            ("panics_caught".to_string(), ld(&s.panics_caught)),
            ("send_failures".to_string(), ld(&s.send_failures)),
            ("retries_seen".to_string(), ld(&s.retries_seen)),
            ("drain_cancelled".to_string(), ld(&s.drain_cancelled)),
            ("drain_refused".to_string(), ld(&s.drain_refused)),
            ("in_flight_sessions".to_string(), u64::from(self.in_flight.load(Ordering::SeqCst))),
            ("uptime_ms".to_string(), self.uptime_ms()),
        ];
        if let Some(plan) = &self.cfg.fault {
            pairs.push(("faults_injected".to_string(), plan.injected()));
        }
        pairs
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops the accept loop, cancels in-flight queries, and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Alias kept for readability at call sites: what [`Server::start`] hands
/// back is a handle, the listening machinery lives on its threads.
pub type ServerHandle = Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `db` on background threads. The returned handle reports the
    /// bound address and owns the lifecycle.
    pub fn start(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: Arc::new(PlanCache::new(cfg.cache_capacity)),
            db,
            cfg,
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            in_flight: AtomicU32::new(0),
            started: Instant::now(),
            runq: Mutex::new(RunQueue { running: 0, queued: 0, ewma_ms: 1.0 }),
            runq_cv: Condvar::new(),
            cancel_slots: Mutex::new(Vec::new()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("xqp-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                .map_err(ServeError::Io)?
        };
        Ok(Server { addr, shared, accept: Some(accept), conns })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database being served.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.shared.db)
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The counter pairs the [`Request::Stats`] verb reports.
    pub fn stats_pairs(&self) -> Vec<(String, u64)> {
        self.shared.stats_pairs()
    }

    /// Sessions currently holding an admission slot. Zero once every
    /// connection has wound down — the session-slot-leak invariant the
    /// torture harness pins.
    pub fn sessions_in_flight(&self) -> u32 {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Hit/miss/insert counters of the process-wide shared plan cache.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.shared.cache.stats()
    }

    /// Graceful drain: stop taking new work, let in-flight queries finish
    /// for up to `deadline`, then cancel stragglers via their cancel
    /// tokens. Late arrivals (new connections and new requests on parked
    /// sessions) get a typed [`Response::Draining`]. Returns the number
    /// of stragglers cancelled. Call [`Server::shutdown`] afterwards to
    /// join the threads; `drain` itself leaves them running so sessions
    /// can flush their final replies.
    pub fn drain(&self, deadline: Duration) -> u64 {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake queued waiters so they observe the drain and bail out.
        self.shared.runq_cv.notify_all();
        let end = Instant::now() + deadline;
        loop {
            let running = {
                let q = self.shared.runq.lock().unwrap_or_else(|e| e.into_inner());
                q.running
            };
            if running == 0 {
                return 0;
            }
            if Instant::now() >= end {
                break;
            }
            std::thread::sleep(self.shared.cfg.tick.min(Duration::from_millis(5)));
        }
        // Deadline expired: trip every live cancel slot. Queries notice at
        // their next governor check and unwind with a typed error.
        let mut cancelled = 0;
        let slots = {
            let mut guard = self.shared.cancel_slots.lock().unwrap_or_else(|e| e.into_inner());
            guard.retain(|w| w.strong_count() > 0);
            guard.clone()
        };
        for weak in slots {
            if let Some(slot) = weak.upgrade() {
                if let Some(tok) = slot.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                    tok.cancel();
                    cancelled += 1;
                    ServerStats::bump(&self.shared.stats.drain_cancelled);
                }
            }
        }
        cancelled
    }

    /// Stop accepting, cancel in-flight work, join every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.runq_cv.notify_all();
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        let handles = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wire failpoint: the accept itself can die (reset before the
        // session starts). The client sees a vanished connection.
        if let Some(plan) = &shared.cfg.fault {
            if plan.check(WireOp::Accept).is_some() {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
        }
        ServerStats::bump(&shared.stats.accepted);
        if shared.draining.load(Ordering::SeqCst) {
            // Late arrival during drain: typed refusal, clean close, no
            // session thread.
            ServerStats::bump(&shared.stats.drain_refused);
            let mut io = conn_io(&shared, &stream);
            let _ = write_frame(&mut io, &Response::Draining.encode());
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xqp-serve-conn".into())
                .spawn(move || serve_connection(shared, stream))
        };
        let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
        // Reap finished sessions so the handle list stays bounded on
        // long-running servers.
        guard.retain(|h: &JoinHandle<()>| !h.is_finished());
        if let Ok(h) = handle {
            guard.push(h);
        }
    }
}

/// RAII decrement of the admission counter.
struct AdmissionGuard<'a>(&'a Shared);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII release of one execution permit; records the service time into
/// the EWMA the `est_wait_ms` hint is computed from.
struct RunPermit<'a> {
    shared: &'a Shared,
    started: Instant,
}

impl Drop for RunPermit<'_> {
    fn drop(&mut self) {
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let mut q = self.shared.runq.lock().unwrap_or_else(|e| e.into_inner());
        q.running -= 1;
        // EWMA with a 1/8 step: smooth enough to damp one outlier, fresh
        // enough to track a workload shift within a few requests.
        q.ewma_ms += (elapsed_ms - q.ewma_ms) / 8.0;
        drop(q);
        self.shared.runq_cv.notify_one();
    }
}

/// Estimated queue wait for a newcomer: everyone ahead of it, served at
/// `max_inflight`-way parallelism, each costing the moving average.
fn est_wait_ms(q: &RunQueue, max_inflight: u32) -> u64 {
    let ahead = f64::from(q.queued) + 1.0;
    (q.ewma_ms * ahead / f64::from(max_inflight.max(1))).ceil() as u64
}

/// Acquire an execution permit, queueing when the server is saturated.
/// Deadline-doomed requests (estimated wait exceeding the session's
/// remaining budget) are shed immediately — that is the cheapest possible
/// outcome for a request that could only ever time out inside the engine.
fn acquire_run_permit<'a>(
    shared: &'a Shared,
    limits: &QueryLimits,
) -> Result<RunPermit<'a>, Response> {
    let cfg = &shared.cfg;
    let mut q = shared.runq.lock().unwrap_or_else(|e| e.into_inner());
    if q.running < cfg.max_inflight {
        q.running += 1;
        return Ok(RunPermit { shared, started: Instant::now() });
    }
    let est = est_wait_ms(&q, cfg.max_inflight);
    let overloaded = |queue_depth: u32| Response::Overloaded {
        queue_depth,
        est_wait_ms: est,
        retry_after_ms: est.max(1),
    };
    if q.queued >= cfg.max_queue {
        ServerStats::bump(&shared.stats.overload_rejections);
        return Err(overloaded(q.queued));
    }
    let budget = limits.timeout.unwrap_or(cfg.max_queue_wait).min(cfg.max_queue_wait);
    if Duration::from_millis(est) > budget {
        ServerStats::bump(&shared.stats.queue_shed);
        return Err(overloaded(q.queued));
    }
    q.queued += 1;
    ServerStats::bump(&shared.stats.queued_total);
    let wait_end = Instant::now() + budget;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            q.queued -= 1;
            return Err(Response::Draining);
        }
        if q.running < cfg.max_inflight {
            q.queued -= 1;
            q.running += 1;
            return Ok(RunPermit { shared, started: Instant::now() });
        }
        let now = Instant::now();
        if now >= wait_end {
            q.queued -= 1;
            ServerStats::bump(&shared.stats.queue_shed);
            let est = est_wait_ms(&q, cfg.max_inflight);
            return Err(Response::Overloaded {
                queue_depth: q.queued,
                est_wait_ms: est,
                retry_after_ms: est.max(1),
            });
        }
        let wait = (wait_end - now).min(cfg.tick);
        let (guard, _) = shared.runq_cv.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
        q = guard;
    }
}

/// The per-session socket endpoint: ticking reads (so a parked session
/// still observes shutdown), plain writes, one shared wire-fault latch
/// for both directions — a torn connection is torn for good.
struct SessionIo<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for SessionIo<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(io::Error::new(io::ErrorKind::Interrupted, "server shutdown"));
                    }
                }
                r => return r,
            }
        }
    }
}

impl Write for SessionIo<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&mut &*self.stream).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&mut &*self.stream).flush()
    }
}

type ConnIo<'a> = FaultStream<SessionIo<'a>>;

fn conn_io<'a>(shared: &'a Shared, stream: &'a TcpStream) -> ConnIo<'a> {
    FaultStream::new(SessionIo { stream, shutdown: &shared.shutdown }, shared.cfg.fault.clone())
}

/// Send a response, auditing (not hiding) failures: the peer being gone
/// mid-reply is normal server life, but it must be *visible* — every
/// failure counts into [`ServerStats::send_failures`] and the first one
/// per session is logged.
fn send_audited(shared: &Shared, io: &mut ConnIo<'_>, resp: &Response, logged: &mut bool) {
    if let Err(e) = write_frame(io, &resp.encode()) {
        ServerStats::bump(&shared.stats.send_failures);
        if !*logged {
            *logged = true;
            if shared.cfg.log_send_failures {
                eprintln!("xqp-serve: dropping reply, peer gone: {e}");
            }
        }
    }
}

fn serve_connection(shared: Arc<Shared>, stream: TcpStream) {
    // Session cap: a hard bound on concurrent session threads. Refusal is
    // a typed response, not a silent close, so clients can back off
    // knowingly.
    let prev = shared.in_flight.fetch_add(1, Ordering::SeqCst);
    let _guard = AdmissionGuard(&shared);
    let mut logged = false;
    if prev >= shared.cfg.max_sessions {
        ServerStats::bump(&shared.stats.overload_rejections);
        let (queue_depth, est) = {
            let q = shared.runq.lock().unwrap_or_else(|e| e.into_inner());
            (q.queued, est_wait_ms(&q, shared.cfg.max_inflight))
        };
        let mut io = conn_io(&shared, &stream);
        send_audited(
            &shared,
            &mut io,
            &Response::Overloaded { queue_depth, est_wait_ms: est, retry_after_ms: est.max(1) },
            &mut logged,
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.tick)).is_err() {
        return;
    }

    // Disconnect watcher: while a query runs, the session thread is not
    // reading the socket, so only this thread notices the peer hanging up.
    // It trips the *current* request's cancel token; between requests the
    // slot is empty and EOF is handled by the main read loop instead.
    let current_cancel: Arc<Mutex<Option<CancelToken>>> = Arc::new(Mutex::new(None));
    {
        // Register the slot for the drain path; dead weak refs are pruned
        // opportunistically so the list stays bounded.
        let mut slots = shared.cancel_slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.retain(|w| w.strong_count() > 0);
        slots.push(Arc::downgrade(&current_cancel));
    }
    let conn_done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().and_then(|peek_stream| {
        let cancel = Arc::clone(&current_cancel);
        let done = Arc::clone(&conn_done);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("xqp-serve-watch".into())
            .spawn(move || {
                let mut probe = [0u8; 1];
                let _ = peek_stream.set_read_timeout(Some(shared.cfg.tick));
                while !done.load(Ordering::SeqCst) {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match peek_stream.peek(&mut probe) {
                        // No traffic this tick: keep watching.
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue;
                        }
                        // Bytes pending: the session thread will read them.
                        // Peek returns immediately here, so pace ourselves.
                        Ok(n) if n > 0 => {
                            std::thread::sleep(shared.cfg.tick);
                            continue;
                        }
                        // EOF or a hard socket error: the peer is gone;
                        // abandon whatever query it was waiting on.
                        Ok(_) | Err(_) => {
                            if let Some(tok) =
                                cancel.lock().unwrap_or_else(|e| e.into_inner()).as_ref()
                            {
                                tok.cancel();
                            }
                            break;
                        }
                    }
                }
                // Shutdown also cancels whatever is running.
                if shared.shutdown.load(Ordering::SeqCst) {
                    if let Some(tok) = cancel.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                        tok.cancel();
                    }
                }
            })
            .ok()
    });

    let mut io = conn_io(&shared, &stream);
    session_loop(&shared, &mut io, &current_cancel, &mut logged);

    conn_done.store(true, Ordering::SeqCst);
    if let Some(plan) = &shared.cfg.fault {
        // Close is an I/O point too: a fault here models the final FIN
        // getting lost. Nothing to do but note it — the shutdown below is
        // best-effort either way.
        let _ = plan.check(WireOp::Close);
    }
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(w) = watcher {
        let _ = w.join();
    }
}

fn session_loop(
    shared: &Shared,
    io: &mut ConnIo<'_>,
    current_cancel: &Arc<Mutex<Option<CancelToken>>>,
    logged: &mut bool,
) {
    let mut limits = shared.cfg.default_limits;
    loop {
        let payload = match read_frame(io, shared.cfg.max_frame) {
            Ok(p) => p,
            Err(ServeError::Closed) => return,
            Err(ServeError::Io(e)) if e.kind() == io::ErrorKind::Interrupted => {
                send_audited(
                    shared,
                    io,
                    &Response::Error {
                        class: ErrorClass::Shutdown,
                        message: "server shutting down".into(),
                    },
                    logged,
                );
                return;
            }
            Err(e @ (ServeError::TooLarge { .. } | ServeError::Crc { .. })) => {
                ServerStats::bump(&shared.stats.protocol_errors);
                send_audited(
                    shared,
                    io,
                    &Response::Error { class: ErrorClass::Protocol, message: e.to_string() },
                    logged,
                );
                return;
            }
            Err(_) => return,
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                ServerStats::bump(&shared.stats.protocol_errors);
                send_audited(
                    shared,
                    io,
                    &Response::Error { class: ErrorClass::Protocol, message: e.to_string() },
                    logged,
                );
                return;
            }
        };
        ServerStats::bump(&shared.stats.requests);
        // Draining: finish nothing new. Stats and Close still answer (an
        // operator watching the drain, a client leaving cleanly); all
        // other verbs get the typed refusal and the session ends.
        if shared.draining.load(Ordering::SeqCst) && !matches!(req, Request::Stats | Request::Close)
        {
            ServerStats::bump(&shared.stats.drain_refused);
            send_audited(shared, io, &Response::Draining, logged);
            return;
        }
        let resp = match req {
            Request::Ping { retries } => {
                if retries > 0 {
                    shared.stats.retries_seen.fetch_add(u64::from(retries), Ordering::Relaxed);
                }
                shared.pong()
            }
            Request::Close => {
                send_audited(shared, io, &Response::Bye, logged);
                return;
            }
            Request::Stats => Response::Stats { counters: shared.stats_pairs() },
            Request::SetLimits { timeout_ms, max_memory, max_rows } => {
                limits = limits_from_wire(timeout_ms, max_memory, max_rows);
                shared.pong()
            }
            Request::ListDocs => Response::Docs { names: shared.db.document_names() },
            Request::Query { doc, query } => match acquire_run_permit(shared, &limits) {
                Err(refusal) => refusal,
                Ok(_permit) => run_cancellable(shared, current_cancel, limits, |opts| {
                    shared
                        .db
                        .query_session(&doc, &query, opts)
                        .map(|(generation, body)| Response::Value { generation, body })
                }),
            },
            Request::Select { doc, path } => match acquire_run_permit(shared, &limits) {
                Err(refusal) => refusal,
                Ok(_permit) => run_cancellable(shared, current_cancel, limits, |opts| {
                    shared.db.select_session(&doc, &path, opts).map(|(generation, ids)| {
                        Response::NodeIds {
                            generation,
                            ids: ids.into_iter().map(|id| id.0 as u64).collect(),
                        }
                    })
                }),
            },
            Request::Insert { doc, path, fragment } => match acquire_run_permit(shared, &limits) {
                Err(refusal) => refusal,
                Ok(_permit) => run_update(shared, || {
                    shared
                        .db
                        .insert_into(&doc, &path, &fragment)
                        .map(|n| Response::Count { n: n as u64 })
                }),
            },
            Request::Delete { doc, path } => match acquire_run_permit(shared, &limits) {
                Err(refusal) => refusal,
                Ok(_permit) => run_update(shared, || {
                    shared.db.delete_matching(&doc, &path).map(|n| Response::Count { n: n as u64 })
                }),
            },
        };
        let ends_session = matches!(resp, Response::Draining);
        if write_frame(io, &resp.encode()).is_err() {
            // Peer vanished mid-reply; nothing left to do for this session
            // — but the drop is audited, never silent.
            ServerStats::bump(&shared.stats.send_failures);
            if !*logged {
                *logged = true;
                if shared.cfg.log_send_failures {
                    eprintln!("xqp-serve: reply send failed, peer gone mid-response");
                }
            }
            return;
        }
        if ends_session {
            return;
        }
    }
}

/// Run a read with a fresh cancel token parked where the disconnect
/// watcher can reach it; catch engine panics so one bad query cannot take
/// down the session thread.
fn run_cancellable(
    shared: &Shared,
    current_cancel: &Arc<Mutex<Option<CancelToken>>>,
    limits: QueryLimits,
    f: impl FnOnce(&SessionOptions) -> Result<Response, Error>,
) -> Response {
    let tok = CancelToken::new();
    *current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = Some(tok.clone());
    let opts = SessionOptions {
        limits,
        cancel: Some(tok.clone()),
        cache: Some(Arc::clone(&shared.cache)),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&opts)));
    *current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = None;
    match outcome {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => {
            if tok.is_cancelled() {
                ServerStats::bump(&shared.stats.cancelled);
            }
            Response::Error { class: classify(&e), message: e.to_string() }
        }
        Err(payload) => {
            ServerStats::bump(&shared.stats.panics_caught);
            Response::Error { class: ErrorClass::Internal, message: panic_message(payload) }
        }
    }
}

/// Updates go through the writer path (serialized per document by the
/// writer mutex); they are not cancellable mid-splice — the WAL must stay
/// ahead of acknowledged state — but panics are still contained.
fn run_update(shared: &Shared, f: impl FnOnce() -> Result<Response, Error>) -> Response {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => Response::Error { class: classify(&e), message: e.to_string() },
        Err(payload) => {
            ServerStats::bump(&shared.stats.panics_caught);
            Response::Error { class: ErrorClass::Internal, message: panic_message(payload) }
        }
    }
}

/// Map the engine's error type onto wire classes. The resource governor
/// reports through `Error::Query`, distinguishable by its stable message
/// marker (the same one `XqError::is_resource_limit` keys on).
fn classify(e: &Error) -> ErrorClass {
    match e {
        Error::Query(m) if m.contains("resource governor") => ErrorClass::ResourceLimit,
        Error::Query(_) | Error::Xml(_) => ErrorClass::Query,
        Error::UnknownDocument(_) => ErrorClass::UnknownDocument,
        Error::Update(_) => ErrorClass::Update,
        Error::Persist(_) => ErrorClass::Persist,
    }
}
