//! The concurrent query server: thread-per-connection over `std::net`.
//!
//! Each accepted connection is a *session*: it carries its own resource
//! limits (settable over the wire), a fresh [`CancelToken`] per request,
//! and runs every read against a snapshot-isolated MVCC version of the
//! target document ([`xqp_exec::mvcc`]). Readers therefore never block
//! behind the writer mutex and never observe a half-applied update; the
//! generation each response carries tells the client exactly which commit
//! it read.
//!
//! Robustness properties the tests pin:
//!
//! * admission control — at most `max_inflight` sessions run at once;
//!   excess connections get a typed [`Response::Busy`] and a clean close,
//!   never a hang;
//! * malformed, corrupt, or oversized frames produce a typed
//!   [`ErrorClass::Protocol`] response followed by a clean close — no
//!   panic, no half-written reply, and the server keeps serving others;
//! * a client that disconnects mid-query has its query cancelled
//!   cooperatively (a watcher thread trips the session's token), so an
//!   abandoned expensive query cannot pin a core;
//! * engine panics are caught per request ([`ErrorClass::Internal`]); the
//!   session and the server both survive;
//! * shutdown joins every thread — accept loop, sessions, watchers.

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use xqp::exec::differential::panic_message;
use xqp::{CancelToken, Database, Error, QueryLimits, SessionOptions};
use xqp_exec::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};

use crate::protocol::{
    limits_from_wire, read_frame, write_frame, ErrorClass, Request, Response, ServeError, MAX_FRAME,
};

/// Tunables of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum sessions running at once; further connections get
    /// [`Response::Busy`].
    pub max_inflight: u32,
    /// Largest frame a client may send.
    pub max_frame: u32,
    /// Limits a session starts with (it may lower/replace them via
    /// [`Request::SetLimits`]).
    pub default_limits: QueryLimits,
    /// Capacity of the process-wide shared plan cache.
    pub cache_capacity: usize,
    /// Poll granularity for shutdown checks and disconnect watching.
    pub tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            max_frame: MAX_FRAME,
            default_limits: QueryLimits::none(),
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tick: Duration::from_millis(25),
        }
    }
}

/// Monotonic counters the server maintains; readable at any time through
/// [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later refused admission).
    pub accepted: AtomicU64,
    /// Requests decoded and dispatched.
    pub requests: AtomicU64,
    /// Sessions refused by admission control.
    pub busy_rejections: AtomicU64,
    /// Frames that failed to parse / verify (each also closes its session).
    pub protocol_errors: AtomicU64,
    /// Queries whose cancel token was tripped (disconnect or shutdown).
    pub cancelled: AtomicU64,
    /// Engine panics caught and converted to [`ErrorClass::Internal`].
    pub panics_caught: AtomicU64,
}

impl ServerStats {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    cache: Arc<PlanCache>,
    stats: ServerStats,
    shutdown: AtomicBool,
    in_flight: AtomicU32,
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops the accept loop, cancels in-flight queries, and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Alias kept for readability at call sites: what [`Server::start`] hands
/// back is a handle, the listening machinery lives on its threads.
pub type ServerHandle = Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `db` on background threads. The returned handle reports the
    /// bound address and owns the lifecycle.
    pub fn start(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: Arc::new(PlanCache::new(cfg.cache_capacity)),
            db,
            cfg,
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicU32::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("xqp-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                .map_err(ServeError::Io)?
        };
        Ok(Server { addr, shared, accept: Some(accept), conns })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database being served.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.shared.db)
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Hit/miss/insert counters of the process-wide shared plan cache.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.shared.cache.stats()
    }

    /// Stop accepting, cancel in-flight work, join every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        let handles = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        ServerStats::bump(&shared.stats.accepted);
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xqp-serve-conn".into())
                .spawn(move || serve_connection(shared, stream))
        };
        let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
        // Reap finished sessions so the handle list stays bounded on
        // long-running servers.
        guard.retain(|h: &JoinHandle<()>| !h.is_finished());
        if let Ok(h) = handle {
            guard.push(h);
        }
    }
}

/// RAII decrement of the admission counter.
struct AdmissionGuard<'a>(&'a Shared);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `Read` adapter over a non-blocking-ish socket: retries timeout wakeups
/// until data arrives or shutdown is requested, so a blocked session can
/// still observe server shutdown.
struct TickingStream<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for TickingStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(io::Error::new(io::ErrorKind::Interrupted, "server shutdown"));
                    }
                }
                r => return r,
            }
        }
    }
}

fn send(stream: &TcpStream, resp: &Response) -> Result<(), ServeError> {
    write_frame(&mut &*stream, &resp.encode())
}

fn serve_connection(shared: Arc<Shared>, stream: TcpStream) {
    // Admission control: bounded sessions in flight. Refusal is a typed
    // response, not a silent close, so clients can back off knowingly.
    let prev = shared.in_flight.fetch_add(1, Ordering::SeqCst);
    let _guard = AdmissionGuard(&shared);
    if prev >= shared.cfg.max_inflight {
        ServerStats::bump(&shared.stats.busy_rejections);
        let _ = send(&stream, &Response::Busy { in_flight: prev, max: shared.cfg.max_inflight });
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.tick)).is_err() {
        return;
    }

    // Disconnect watcher: while a query runs, the session thread is not
    // reading the socket, so only this thread notices the peer hanging up.
    // It trips the *current* request's cancel token; between requests the
    // slot is empty and EOF is handled by the main read loop instead.
    let current_cancel: Arc<Mutex<Option<CancelToken>>> = Arc::new(Mutex::new(None));
    let conn_done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().and_then(|peek_stream| {
        let cancel = Arc::clone(&current_cancel);
        let done = Arc::clone(&conn_done);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("xqp-serve-watch".into())
            .spawn(move || {
                let mut probe = [0u8; 1];
                let _ = peek_stream.set_read_timeout(Some(shared.cfg.tick));
                while !done.load(Ordering::SeqCst) {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match peek_stream.peek(&mut probe) {
                        // No traffic this tick: keep watching.
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue;
                        }
                        // Bytes pending: the session thread will read them.
                        // Peek returns immediately here, so pace ourselves.
                        Ok(n) if n > 0 => {
                            std::thread::sleep(shared.cfg.tick);
                            continue;
                        }
                        // EOF or a hard socket error: the peer is gone;
                        // abandon whatever query it was waiting on.
                        Ok(_) | Err(_) => {
                            if let Some(tok) =
                                cancel.lock().unwrap_or_else(|e| e.into_inner()).as_ref()
                            {
                                tok.cancel();
                            }
                            break;
                        }
                    }
                }
                // Shutdown also cancels whatever is running.
                if shared.shutdown.load(Ordering::SeqCst) {
                    if let Some(tok) = cancel.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                        tok.cancel();
                    }
                }
            })
            .ok()
    });

    session_loop(&shared, &stream, &current_cancel);

    conn_done.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(w) = watcher {
        let _ = w.join();
    }
}

fn session_loop(
    shared: &Shared,
    stream: &TcpStream,
    current_cancel: &Arc<Mutex<Option<CancelToken>>>,
) {
    let mut limits = shared.cfg.default_limits;
    loop {
        let mut ticking = TickingStream { stream, shutdown: &shared.shutdown };
        let payload = match read_frame(&mut ticking, shared.cfg.max_frame) {
            Ok(p) => p,
            Err(ServeError::Closed) => return,
            Err(ServeError::Io(e)) if e.kind() == io::ErrorKind::Interrupted => {
                let _ = send(
                    stream,
                    &Response::Error {
                        class: ErrorClass::Shutdown,
                        message: "server shutting down".into(),
                    },
                );
                return;
            }
            Err(e @ (ServeError::TooLarge { .. } | ServeError::Crc { .. })) => {
                ServerStats::bump(&shared.stats.protocol_errors);
                let _ = send(
                    stream,
                    &Response::Error { class: ErrorClass::Protocol, message: e.to_string() },
                );
                return;
            }
            Err(_) => return,
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                ServerStats::bump(&shared.stats.protocol_errors);
                let _ = send(
                    stream,
                    &Response::Error { class: ErrorClass::Protocol, message: e.to_string() },
                );
                return;
            }
        };
        ServerStats::bump(&shared.stats.requests);
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Close => {
                let _ = send(stream, &Response::Bye);
                return;
            }
            Request::SetLimits { timeout_ms, max_memory, max_rows } => {
                limits = limits_from_wire(timeout_ms, max_memory, max_rows);
                Response::Pong
            }
            Request::ListDocs => Response::Docs { names: shared.db.document_names() },
            Request::Query { doc, query } => {
                run_cancellable(shared, current_cancel, limits, |opts| {
                    shared
                        .db
                        .query_session(&doc, &query, opts)
                        .map(|(generation, body)| Response::Value { generation, body })
                })
            }
            Request::Select { doc, path } => {
                run_cancellable(shared, current_cancel, limits, |opts| {
                    shared.db.select_session(&doc, &path, opts).map(|(generation, ids)| {
                        Response::NodeIds {
                            generation,
                            ids: ids.into_iter().map(|id| id.0 as u64).collect(),
                        }
                    })
                })
            }
            Request::Insert { doc, path, fragment } => run_update(shared, || {
                shared
                    .db
                    .insert_into(&doc, &path, &fragment)
                    .map(|n| Response::Count { n: n as u64 })
            }),
            Request::Delete { doc, path } => run_update(shared, || {
                shared.db.delete_matching(&doc, &path).map(|n| Response::Count { n: n as u64 })
            }),
        };
        if send(stream, &resp).is_err() {
            // Peer vanished mid-reply; nothing left to do for this session.
            return;
        }
    }
}

/// Run a read with a fresh cancel token parked where the disconnect
/// watcher can reach it; catch engine panics so one bad query cannot take
/// down the session thread.
fn run_cancellable(
    shared: &Shared,
    current_cancel: &Arc<Mutex<Option<CancelToken>>>,
    limits: QueryLimits,
    f: impl FnOnce(&SessionOptions) -> Result<Response, Error>,
) -> Response {
    let tok = CancelToken::new();
    *current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = Some(tok.clone());
    let opts = SessionOptions {
        limits,
        cancel: Some(tok.clone()),
        cache: Some(Arc::clone(&shared.cache)),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&opts)));
    *current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = None;
    match outcome {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => {
            if tok.is_cancelled() {
                ServerStats::bump(&shared.stats.cancelled);
            }
            Response::Error { class: classify(&e), message: e.to_string() }
        }
        Err(payload) => {
            ServerStats::bump(&shared.stats.panics_caught);
            Response::Error { class: ErrorClass::Internal, message: panic_message(payload) }
        }
    }
}

/// Updates go through the writer path (serialized per document by the
/// writer mutex); they are not cancellable mid-splice — the WAL must stay
/// ahead of acknowledged state — but panics are still contained.
fn run_update(shared: &Shared, f: impl FnOnce() -> Result<Response, Error>) -> Response {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => Response::Error { class: classify(&e), message: e.to_string() },
        Err(payload) => {
            ServerStats::bump(&shared.stats.panics_caught);
            Response::Error { class: ErrorClass::Internal, message: panic_message(payload) }
        }
    }
}

/// Map the engine's error type onto wire classes. The resource governor
/// reports through `Error::Query`, distinguishable by its stable message
/// marker (the same one `XqError::is_resource_limit` keys on).
fn classify(e: &Error) -> ErrorClass {
    match e {
        Error::Query(m) if m.contains("resource governor") => ErrorClass::ResourceLimit,
        Error::Query(_) | Error::Xml(_) => ErrorClass::Query,
        Error::UnknownDocument(_) => ErrorClass::UnknownDocument,
        Error::Update(_) => ErrorClass::Update,
        Error::Persist(_) => ErrorClass::Persist,
    }
}
