//! Differential loopback fuzzing: the served engine must agree with the
//! in-process engine.
//!
//! The in-process fuzzer (`xqp::fuzz`) already checks every engine
//! configuration against the naive reference. This leg extends the chain
//! one hop further: a *real client session over a real socket* — framing,
//! admission, session limits, error mapping and all — must produce the
//! same outcome as calling [`xqp::Database::query`] directly:
//!
//! * value outcomes must be byte-identical (the response body is the same
//!   serializer's output);
//! * error outcomes must map to a typed error class, never a hang or a
//!   dropped connection;
//! * under deliberately tight resource limits, the session must either
//!   return the full correct value or trip as
//!   [`ErrorClass::ResourceLimit`] — a silently truncated result is a
//!   divergence (the same "limits are sound" contract the in-process
//!   budget leg pins);
//! * engine panics surface as [`ErrorClass::Internal`] and the session
//!   *stays connected* for the next case.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use xqp::exec::differential::Outcome;
use xqp::fuzz::with_quiet_panics;
use xqp::{Database, QueryLimits};
use xqp_gen::{gen_case, Prng};

use crate::protocol::{ErrorClass, ServeError};
use crate::server::{Server, ServerConfig};
use crate::Client;

/// Knobs of a loopback fuzz run.
#[derive(Debug, Clone)]
pub struct ServerFuzzConfig {
    /// Master seed; case seeds derive from it deterministically.
    pub seed: u64,
    /// Number of generated cases.
    pub iters: u64,
    /// Stop after this many failures.
    pub max_failures: usize,
}

impl Default for ServerFuzzConfig {
    fn default() -> Self {
        ServerFuzzConfig { seed: 0x5E12_F00D, iters: 64, max_failures: 5 }
    }
}

/// One divergence between the loopback session and the in-process engine.
#[derive(Debug, Clone)]
pub struct ServerFuzzFailure {
    /// Seed that regenerates the case.
    pub case_seed: u64,
    /// The document XML.
    pub doc: String,
    /// The query text.
    pub query: String,
    /// Human-readable description of the disagreement.
    pub report: String,
}

impl fmt::Display for ServerFuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case seed {:#x}", self.case_seed)?;
        writeln!(f, "  doc:   {}", self.doc)?;
        writeln!(f, "  query: {}", self.query)?;
        write!(f, "  {}", self.report)
    }
}

/// Result of a loopback fuzz run.
#[derive(Debug, Default)]
pub struct ServerFuzzSummary {
    /// Cases attempted.
    pub iters_run: u64,
    /// Divergences found.
    pub failures: Vec<ServerFuzzFailure>,
}

impl ServerFuzzSummary {
    /// True when the session agreed with the in-process engine everywhere.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Deliberately tight limits for the limit-soundness leg: small enough to
/// trip on any non-trivial case, honest enough to let trivial ones finish.
fn tight_limits() -> QueryLimits {
    QueryLimits::none().with_timeout(Duration::from_millis(50)).with_max_rows(64)
}

fn loopback_outcome(res: Result<(u64, String), ServeError>) -> Result<Outcome, String> {
    match res {
        Ok((_generation, body)) => Ok(Outcome::Value(body)),
        Err(ServeError::Remote { class: ErrorClass::Internal, message }) => {
            Ok(Outcome::Panic(message))
        }
        Err(ServeError::Remote { message, .. }) => Ok(Outcome::Error(message)),
        // Transport-level failures are never acceptable on loopback.
        Err(e) => Err(format!("transport failure: {e}")),
    }
}

fn reference_outcome(db: &Database, doc: &str, query: &str) -> Outcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.query(doc, query))) {
        Ok(Ok(v)) => Outcome::Value(v),
        Ok(Err(e)) => Outcome::Error(e.to_string()),
        Err(payload) => Outcome::Panic(xqp::exec::differential::panic_message(payload)),
    }
}

/// Run the loopback differential fuzzer: one shared server + one client
/// session carry every generated case; the in-process engine (a separate
/// [`Database`]) is the reference.
pub fn fuzz_server(cfg: &ServerFuzzConfig) -> ServerFuzzSummary {
    with_quiet_panics(|| {
        let served = Arc::new(Database::new());
        let server = Server::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default())
            .expect("bind loopback listener");
        let mut client = Client::connect(server.addr()).expect("connect loopback client");
        let reference = Database::new();

        let mut master = Prng::seed_from_u64(cfg.seed);
        let mut summary = ServerFuzzSummary::default();
        for _ in 0..cfg.iters {
            let case_seed = master.next_u64();
            summary.iters_run += 1;
            let case = gen_case(case_seed);
            let xml = case.doc_xml();
            let query = case.query_text();
            match run_case(&served, &reference, &mut client, &xml, &query) {
                Ok(()) => {}
                Err(report) => {
                    summary.failures.push(ServerFuzzFailure { case_seed, doc: xml, query, report });
                    if summary.failures.len() >= cfg.max_failures {
                        break;
                    }
                }
            }
        }
        // Keep the teardown on the happy path so thread leaks would show
        // up as a hang here, not as flakiness elsewhere.
        let _ = client.close();
        server.shutdown();
        summary
    })
}

fn run_case(
    served: &Database,
    reference: &Database,
    client: &mut Client,
    xml: &str,
    query: &str,
) -> Result<(), String> {
    // Both sides may reject the document (the generator occasionally
    // produces unparsable XML on purpose); they must agree on that too.
    let served_load = served.load_str("fuzz", xml);
    let reference_load = reference.load_str("fuzz", xml);
    match (&served_load, &reference_load) {
        (Ok(()), Ok(())) => {}
        (Err(_), Err(_)) => return Ok(()),
        _ => {
            return Err(format!(
                "load disagreement: served {served_load:?}, in-process {reference_load:?}"
            ))
        }
    }

    let want = reference_outcome(reference, "fuzz", query);
    let got = loopback_outcome(client.query("fuzz", query))?;
    // A panic on the reference side is caught as Internal on the server:
    // the pair (Panic, Panic) is agreement here even though the strict
    // in-process matrix treats panics as failures (that matrix's job).
    let agree = match (&want, &got) {
        (Outcome::Panic(_), Outcome::Panic(_)) => true,
        (w, g) => g.agrees_with(w),
    };
    if !agree {
        return Err(format!("plain leg: in-process {want}, loopback {got}"));
    }

    // Limit-soundness leg: under tight limits the session must return the
    // full value or trip as the resource-limit class.
    client.set_limits(&tight_limits()).map_err(|e| format!("set_limits failed: {e}"))?;
    let limited = client.query("fuzz", query);
    client.set_limits(&QueryLimits::none()).map_err(|e| format!("reset limits failed: {e}"))?;
    match (want, limited) {
        (Outcome::Value(full), Ok((_gen, body))) => {
            if body != full {
                return Err(format!(
                    "limits leg: truncated/diverged value under limits: {body:?} vs {full:?}"
                ));
            }
        }
        (_, Err(ServeError::Remote { class: ErrorClass::ResourceLimit, .. })) => {}
        // The engine reached its own error/panic before any limit tripped.
        (Outcome::Error(_), Err(ServeError::Remote { class: ErrorClass::Query, .. })) => {}
        (Outcome::Panic(_), Err(ServeError::Remote { class: ErrorClass::Internal, .. })) => {}
        (Outcome::Panic(_), Ok(_)) | (Outcome::Error(_), Ok(_)) => {
            // Tight limits can mask a deep error by stopping earlier with
            // a value; only possible when evaluation order differs — but
            // the engine is deterministic, so treat it as a divergence.
            return Err("limits leg: value under limits but error without".into());
        }
        (want, got) => {
            return Err(format!("limits leg: in-process {want}, loopback {got:?}"));
        }
    }
    Ok(())
}
