//! Wire protocol of the query server.
//!
//! Framing follows the on-disk idiom of `xqp_storage::persist::format`:
//! everything is explicit little-endian, variable-length fields carry a
//! `u32` length prefix, and integrity is a CRC-32 placed *after* the bytes
//! it covers. A frame on the socket is
//!
//! ```text
//! [u32 payload_len][payload bytes][u32 crc32(payload)]
//! ```
//!
//! so a truncated connection and a corrupted frame are detected the same
//! way — the checksum fails — and both produce a typed error, never a
//! panic. The payload itself is a tagged union: one leading `u8`
//! discriminant followed by the variant's fields.
//!
//! The protocol is deliberately request/response-synchronous per
//! connection: a session sends one request and reads one response.
//! Concurrency comes from opening multiple connections, which the server
//! maps to snapshot-isolated MVCC reads (see `xqp_exec::mvcc`).

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use xqp::QueryLimits;
use xqp_storage::persist::format::{crc32, put_str, put_u32, put_u64, put_u8, Reader};

/// Hard ceiling on a frame the peer may send, unless the server/client is
/// configured lower. 64 MiB comfortably holds any benchmark document while
/// keeping a hostile length prefix from allocating unbounded memory.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong on the wire or in the session layer.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (connect/read/write/shutdown).
    Io(std::io::Error),
    /// The bytes do not parse as a frame of the protocol.
    Frame(String),
    /// The peer announced a frame larger than the configured ceiling.
    TooLarge { len: u32, max: u32 },
    /// The frame arrived whole but its checksum does not match.
    Crc { expected: u32, found: u32 },
    /// The frame decoded but violates the protocol (unknown tag, wrong
    /// response kind, trailing bytes…).
    Protocol(String),
    /// The server refused admission: too many sessions in flight.
    ServerBusy { in_flight: u32, max: u32 },
    /// The admission queue is full or the request was shed as
    /// deadline-doomed; `retry_after_ms` is the server's back-off hint.
    Overloaded { queue_depth: u32, est_wait_ms: u64, retry_after_ms: u64 },
    /// The server is draining: finishing in-flight work, taking no more.
    Draining,
    /// A non-idempotent request's connection died *after* a response byte
    /// arrived: the update may or may not have been applied server-side.
    /// The retry layer refuses to guess; the caller must reconcile (e.g.
    /// re-read and compare). `cause` is the underlying transport error.
    Ambiguous { verb: &'static str, cause: String },
    /// The peer closed the connection (clean EOF).
    Closed,
    /// The server reported a typed error for this request.
    Remote { class: ErrorClass, message: String },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Frame(m) => write!(f, "bad frame: {m}"),
            ServeError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ServeError::Crc { expected, found } => {
                write!(f, "frame checksum mismatch: expected {expected:#010x}, found {found:#010x}")
            }
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::ServerBusy { in_flight, max } => {
                write!(f, "server busy: {in_flight} sessions in flight (max {max})")
            }
            ServeError::Overloaded { queue_depth, est_wait_ms, retry_after_ms } => {
                write!(
                    f,
                    "server overloaded: {queue_depth} request(s) queued, est wait {est_wait_ms} \
                     ms (retry after {retry_after_ms} ms)"
                )
            }
            ServeError::Draining => write!(f, "server draining: not accepting new work"),
            ServeError::Ambiguous { verb, cause } => write!(
                f,
                "{verb} outcome ambiguous: connection lost mid-response ({cause}); \
                 the update may have been applied — reconcile before retrying"
            ),
            ServeError::Closed => write!(f, "connection closed by peer"),
            ServeError::Remote { class, message } => write!(f, "server error [{class}]: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Classification of a server-side failure, stable across the wire so
/// clients can react programmatically (retry, surface, give up) without
/// parsing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Query parsing or evaluation failed.
    Query,
    /// No document with that name is loaded.
    UnknownDocument,
    /// A structural update was rejected.
    Update,
    /// The durable store failed.
    Persist,
    /// The resource governor tripped a limit (timeout / memory / rows).
    ResourceLimit,
    /// The request violated the protocol.
    Protocol,
    /// The engine panicked; the server caught it and the session survives.
    Internal,
    /// The server is shutting down.
    Shutdown,
}

impl ErrorClass {
    fn to_u8(self) -> u8 {
        match self {
            ErrorClass::Query => 0,
            ErrorClass::UnknownDocument => 1,
            ErrorClass::Update => 2,
            ErrorClass::Persist => 3,
            ErrorClass::ResourceLimit => 4,
            ErrorClass::Protocol => 5,
            ErrorClass::Internal => 6,
            ErrorClass::Shutdown => 7,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorClass, ServeError> {
        Ok(match v {
            0 => ErrorClass::Query,
            1 => ErrorClass::UnknownDocument,
            2 => ErrorClass::Update,
            3 => ErrorClass::Persist,
            4 => ErrorClass::ResourceLimit,
            5 => ErrorClass::Protocol,
            6 => ErrorClass::Internal,
            7 => ErrorClass::Shutdown,
            other => return Err(ServeError::Protocol(format!("unknown error class {other}"))),
        })
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorClass::Query => "query",
            ErrorClass::UnknownDocument => "unknown-document",
            ErrorClass::Update => "update",
            ErrorClass::Persist => "persist",
            ErrorClass::ResourceLimit => "resource-limit",
            ErrorClass::Protocol => "protocol",
            ErrorClass::Internal => "internal",
            ErrorClass::Shutdown => "shutdown",
        };
        f.write_str(s)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`]. `retries` is the
    /// number of attempts the sender has already burned on the logical
    /// operation this connection serves (0 = plain liveness check) — the
    /// retry layer sends it when validating a reconnect, and the server
    /// folds it into `ServerStats::retries_seen` so operators can watch
    /// client-side retry pressure without client instrumentation.
    Ping { retries: u32 },
    /// Run an XQuery against the current snapshot of `doc`.
    Query { doc: String, query: String },
    /// Evaluate a bare path to node ids against the current snapshot.
    Select { doc: String, path: String },
    /// Splice `fragment` under every node `path` selects.
    Insert { doc: String, path: String, fragment: String },
    /// Delete every subtree `path` selects.
    Delete { doc: String, path: String },
    /// Replace this session's resource limits (0 = unlimited per field).
    SetLimits { timeout_ms: u64, max_memory: u64, max_rows: u64 },
    /// List the documents the server is holding.
    ListDocs,
    /// End the session; answered with [`Response::Bye`].
    Close,
    /// Snapshot the server's operational counters; answered with
    /// [`Response::Stats`].
    Stats,
}

impl Request {
    /// May this request be safely re-sent after an ambiguous connection
    /// loss? Reads and probes are; structural updates are not (the server
    /// may have applied them before the wire died).
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Insert { .. } | Request::Delete { .. })
    }
}

impl Request {
    /// Encode into a payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping { retries } => {
                put_u8(&mut out, 0);
                put_u32(&mut out, *retries);
            }
            Request::Query { doc, query } => {
                put_u8(&mut out, 1);
                put_str(&mut out, doc);
                put_str(&mut out, query);
            }
            Request::Select { doc, path } => {
                put_u8(&mut out, 2);
                put_str(&mut out, doc);
                put_str(&mut out, path);
            }
            Request::Insert { doc, path, fragment } => {
                put_u8(&mut out, 3);
                put_str(&mut out, doc);
                put_str(&mut out, path);
                put_str(&mut out, fragment);
            }
            Request::Delete { doc, path } => {
                put_u8(&mut out, 4);
                put_str(&mut out, doc);
                put_str(&mut out, path);
            }
            Request::SetLimits { timeout_ms, max_memory, max_rows } => {
                put_u8(&mut out, 5);
                put_u64(&mut out, *timeout_ms);
                put_u64(&mut out, *max_memory);
                put_u64(&mut out, *max_rows);
            }
            Request::ListDocs => put_u8(&mut out, 6),
            Request::Close => put_u8(&mut out, 7),
            Request::Stats => put_u8(&mut out, 8),
        }
        out
    }

    /// Decode from a payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, ServeError> {
        let mut r = Reader::new(payload);
        let tag = fr(r.u8("request tag"))?;
        let req = match tag {
            0 => Request::Ping { retries: fr(r.u32("retries"))? },
            1 => Request::Query {
                doc: fr(r.len_str("doc"))?.to_string(),
                query: fr(r.len_str("query"))?.to_string(),
            },
            2 => Request::Select {
                doc: fr(r.len_str("doc"))?.to_string(),
                path: fr(r.len_str("path"))?.to_string(),
            },
            3 => Request::Insert {
                doc: fr(r.len_str("doc"))?.to_string(),
                path: fr(r.len_str("path"))?.to_string(),
                fragment: fr(r.len_str("fragment"))?.to_string(),
            },
            4 => Request::Delete {
                doc: fr(r.len_str("doc"))?.to_string(),
                path: fr(r.len_str("path"))?.to_string(),
            },
            5 => Request::SetLimits {
                timeout_ms: fr(r.u64("timeout"))?,
                max_memory: fr(r.u64("max_memory"))?,
                max_rows: fr(r.u64("max_rows"))?,
            },
            6 => Request::ListDocs,
            7 => Request::Close,
            8 => Request::Stats,
            other => return Err(ServeError::Protocol(format!("unknown request tag {other}"))),
        };
        expect_drained(&r)?;
        Ok(req)
    }
}

/// Decode the wire form of [`Request::SetLimits`] (0 = unlimited).
pub fn limits_from_wire(timeout_ms: u64, max_memory: u64, max_rows: u64) -> QueryLimits {
    let mut l = QueryLimits::none();
    if timeout_ms > 0 {
        l = l.with_timeout(Duration::from_millis(timeout_ms));
    }
    if max_memory > 0 {
        l = l.with_max_memory(max_memory);
    }
    if max_rows > 0 {
        l = l.with_max_rows(max_rows);
    }
    l
}

/// Encode [`QueryLimits`] for the wire (0 = unlimited).
pub fn limits_to_wire(l: &QueryLimits) -> (u64, u64, u64) {
    (
        l.timeout.map(|d| d.as_millis() as u64).unwrap_or(0),
        l.max_memory.unwrap_or(0),
        l.max_rows.unwrap_or(0),
    )
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`] (and acknowledgement of
    /// [`Request::SetLimits`]): the server's current MVCC generation
    /// high-water mark and its uptime. The retry layer uses the pair to
    /// validate a reconnect before replaying session state — a `Pong`
    /// with a lower `uptime_ms` than the last one means the server
    /// restarted and any cached generation correlation is void.
    Pong { generation: u64, uptime_ms: u64 },
    /// Serialized query result, tagged with the MVCC generation the
    /// snapshot carried so clients can correlate reads with commits.
    Value { generation: u64, body: String },
    /// Node ids from a select, meaningful only against `generation`.
    NodeIds { generation: u64, ids: Vec<u64> },
    /// Number of nodes an update touched.
    Count { n: u64 },
    /// Documents currently loaded.
    Docs { names: Vec<String> },
    /// Typed failure; the session stays open unless the class is
    /// [`ErrorClass::Protocol`] or [`ErrorClass::Shutdown`].
    Error { class: ErrorClass, message: String },
    /// Admission control refused the session (legacy hard refusal; the
    /// server now queues and sheds with [`Response::Overloaded`], but the
    /// variant stays decodable for older peers).
    Busy { in_flight: u32, max: u32 },
    /// Answer to [`Request::Close`]; the server closes after sending it.
    Bye,
    /// The admission queue refused this request: either the queue is full
    /// or the request's deadline budget cannot survive the estimated
    /// wait. `retry_after_ms` is the server's back-off hint.
    Overloaded { queue_depth: u32, est_wait_ms: u64, retry_after_ms: u64 },
    /// The server is draining (operator-initiated shutdown): in-flight
    /// work finishes, new work is refused. The session closes after this.
    Draining,
    /// Answer to [`Request::Stats`]: named monotonic counters. A pair
    /// list, not a fixed struct, so counters can be added without a wire
    /// break.
    Stats { counters: Vec<(String, u64)> },
}

impl Response {
    /// Encode into a payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { generation, uptime_ms } => {
                put_u8(&mut out, 0);
                put_u64(&mut out, *generation);
                put_u64(&mut out, *uptime_ms);
            }
            Response::Value { generation, body } => {
                put_u8(&mut out, 1);
                put_u64(&mut out, *generation);
                put_str(&mut out, body);
            }
            Response::NodeIds { generation, ids } => {
                put_u8(&mut out, 2);
                put_u64(&mut out, *generation);
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    put_u64(&mut out, *id);
                }
            }
            Response::Count { n } => {
                put_u8(&mut out, 3);
                put_u64(&mut out, *n);
            }
            Response::Docs { names } => {
                put_u8(&mut out, 4);
                put_u32(&mut out, names.len() as u32);
                for n in names {
                    put_str(&mut out, n);
                }
            }
            Response::Error { class, message } => {
                put_u8(&mut out, 5);
                put_u8(&mut out, class.to_u8());
                put_str(&mut out, message);
            }
            Response::Busy { in_flight, max } => {
                put_u8(&mut out, 6);
                put_u32(&mut out, *in_flight);
                put_u32(&mut out, *max);
            }
            Response::Bye => put_u8(&mut out, 7),
            Response::Overloaded { queue_depth, est_wait_ms, retry_after_ms } => {
                put_u8(&mut out, 8);
                put_u32(&mut out, *queue_depth);
                put_u64(&mut out, *est_wait_ms);
                put_u64(&mut out, *retry_after_ms);
            }
            Response::Draining => put_u8(&mut out, 9),
            Response::Stats { counters } => {
                put_u8(&mut out, 10);
                put_u32(&mut out, counters.len() as u32);
                for (name, value) in counters {
                    put_str(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
        }
        out
    }

    /// Decode from a payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, ServeError> {
        let mut r = Reader::new(payload);
        let tag = fr(r.u8("response tag"))?;
        let resp = match tag {
            0 => Response::Pong {
                generation: fr(r.u64("generation"))?,
                uptime_ms: fr(r.u64("uptime_ms"))?,
            },
            1 => Response::Value {
                generation: fr(r.u64("generation"))?,
                body: fr(r.len_str("body"))?.to_string(),
            },
            2 => {
                let generation = fr(r.u64("generation"))?;
                let n = fr(r.u32("id count"))? as usize;
                let mut ids = Vec::new();
                for _ in 0..n {
                    ids.push(fr(r.u64("node id"))?);
                }
                Response::NodeIds { generation, ids }
            }
            3 => Response::Count { n: fr(r.u64("count"))? },
            4 => {
                let n = fr(r.u32("doc count"))? as usize;
                let mut names = Vec::new();
                for _ in 0..n {
                    names.push(fr(r.len_str("doc name"))?.to_string());
                }
                Response::Docs { names }
            }
            5 => Response::Error {
                class: ErrorClass::from_u8(fr(r.u8("error class"))?)?,
                message: fr(r.len_str("message"))?.to_string(),
            },
            6 => Response::Busy { in_flight: fr(r.u32("in_flight"))?, max: fr(r.u32("max"))? },
            7 => Response::Bye,
            8 => Response::Overloaded {
                queue_depth: fr(r.u32("queue_depth"))?,
                est_wait_ms: fr(r.u64("est_wait_ms"))?,
                retry_after_ms: fr(r.u64("retry_after_ms"))?,
            },
            9 => Response::Draining,
            10 => {
                let n = fr(r.u32("counter count"))? as usize;
                let mut counters = Vec::new();
                for _ in 0..n {
                    let name = fr(r.len_str("counter name"))?.to_string();
                    let value = fr(r.u64("counter value"))?;
                    counters.push((name, value));
                }
                Response::Stats { counters }
            }
            other => return Err(ServeError::Protocol(format!("unknown response tag {other}"))),
        };
        expect_drained(&r)?;
        Ok(resp)
    }
}

fn fr<T>(r: Result<T, xqp_storage::PersistError>) -> Result<T, ServeError> {
    r.map_err(|e| ServeError::Frame(e.to_string()))
}

fn expect_drained(r: &Reader<'_>) -> Result<(), ServeError> {
    if r.remaining() > 0 {
        return Err(ServeError::Protocol(format!(
            "{} trailing bytes after message",
            r.remaining()
        )));
    }
    Ok(())
}

// ---- framing over a stream --------------------------------------------------

/// Write `payload` as one frame: `[u32 len][payload][u32 crc]`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    put_u32(&mut buf, crc32(payload));
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, enforcing `max_frame` on the announced length and
/// verifying the checksum. A clean EOF before the first length byte maps
/// to [`ServeError::Closed`]; EOF mid-frame is a framing error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Vec<u8>, ServeError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "peer hung up between frames" from "frame cut short".
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len_buf[got..])?;
        if n == 0 {
            if got == 0 {
                return Err(ServeError::Closed);
            }
            return Err(ServeError::Frame("connection closed inside length prefix".into()));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(ServeError::TooLarge { len, max: max_frame });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Frame(format!("connection closed inside payload: {e}")))?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)
        .map_err(|e| ServeError::Frame(format!("connection closed inside checksum: {e}")))?;
    let expected = u32::from_le_bytes(crc_buf);
    let found = crc32(&payload);
    if expected != found {
        return Err(ServeError::Crc { expected, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping { retries: 0 });
        round_trip_request(Request::Ping { retries: 3 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Query { doc: "bib".into(), query: "//book".into() });
        round_trip_request(Request::Select { doc: "d".into(), path: "/a/b".into() });
        round_trip_request(Request::Insert {
            doc: "d".into(),
            path: "/a".into(),
            fragment: "<x/>".into(),
        });
        round_trip_request(Request::Delete { doc: "d".into(), path: "//x".into() });
        round_trip_request(Request::SetLimits { timeout_ms: 250, max_memory: 0, max_rows: 10 });
        round_trip_request(Request::ListDocs);
        round_trip_request(Request::Close);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong { generation: 12, uptime_ms: 34_567 });
        round_trip_response(Response::Overloaded {
            queue_depth: 9,
            est_wait_ms: 120,
            retry_after_ms: 60,
        });
        round_trip_response(Response::Draining);
        round_trip_response(Response::Stats {
            counters: vec![("requests".into(), 42), ("queue_shed".into(), 3)],
        });
        round_trip_response(Response::Value { generation: 7, body: "<r/>".into() });
        round_trip_response(Response::NodeIds { generation: 3, ids: vec![1, 5, 9] });
        round_trip_response(Response::Count { n: 4 });
        round_trip_response(Response::Docs { names: vec!["a".into(), "b".into()] });
        round_trip_response(Response::Error {
            class: ErrorClass::ResourceLimit,
            message: "rows".into(),
        });
        round_trip_response(Response::Busy { in_flight: 8, max: 8 });
        round_trip_response(Response::Bye);
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut payload = Request::Ping { retries: 0 }.encode();
        payload.push(0xFF);
        assert!(matches!(Request::decode(&payload), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn idempotency_classification() {
        assert!(Request::Ping { retries: 1 }.is_idempotent());
        assert!(Request::Query { doc: "d".into(), query: "//x".into() }.is_idempotent());
        assert!(Request::Select { doc: "d".into(), path: "/a".into() }.is_idempotent());
        assert!(Request::SetLimits { timeout_ms: 1, max_memory: 0, max_rows: 0 }.is_idempotent());
        assert!(Request::ListDocs.is_idempotent());
        assert!(Request::Stats.is_idempotent());
        assert!(Request::Close.is_idempotent());
        assert!(!Request::Insert { doc: "d".into(), path: "/a".into(), fragment: "<x/>".into() }
            .is_idempotent());
        assert!(!Request::Delete { doc: "d".into(), path: "//x".into() }.is_idempotent());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(Request::decode(&[42]), Err(ServeError::Protocol(_))));
        assert!(matches!(Response::decode(&[42]), Err(ServeError::Protocol(_))));
        assert!(matches!(Response::decode(&[5, 99, 0, 0, 0, 0]), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn truncated_payloads_are_framing_errors() {
        let full = Request::Query { doc: "bib".into(), query: "//book".into() }.encode();
        for cut in 1..full.len() {
            match Request::decode(&full[..cut]) {
                Err(ServeError::Frame(_)) | Err(ServeError::Protocol(_)) => {}
                other => panic!("cut at {cut}: expected frame error, got {other:?}"),
            }
        }
    }

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let payload = Response::Value { generation: 1, body: "x".repeat(300) }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let got = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap();
        assert_eq!(got, payload);

        // Flip one payload byte: the checksum must catch it.
        let mut bad = buf.clone();
        bad[10] ^= 0x40;
        assert!(matches!(read_frame(&mut bad.as_slice(), MAX_FRAME), Err(ServeError::Crc { .. })));

        // Oversized announced length is refused before allocation.
        let mut huge = Vec::new();
        put_u32(&mut huge, MAX_FRAME + 1);
        assert!(matches!(
            read_frame(&mut huge.as_slice(), MAX_FRAME),
            Err(ServeError::TooLarge { .. })
        ));

        // Clean EOF between frames is `Closed`, EOF mid-frame is `Frame`.
        assert!(matches!(read_frame(&mut [].as_slice(), MAX_FRAME), Err(ServeError::Closed)));
        assert!(matches!(read_frame(&mut buf[..6].as_ref(), MAX_FRAME), Err(ServeError::Frame(_))));
    }

    #[test]
    fn limits_wire_round_trip() {
        let l = limits_from_wire(250, 0, 10);
        assert_eq!(l.timeout, Some(Duration::from_millis(250)));
        assert_eq!(l.max_memory, None);
        assert_eq!(l.max_rows, Some(10));
        assert_eq!(limits_to_wire(&l), (250, 0, 10));
        assert!(limits_from_wire(0, 0, 0).is_unlimited());
    }
}
