//! Blocking client for the query server — the driver library the CLI
//! (`xqp client …`), the loopback fuzzer leg, the retry layer
//! ([`crate::retry::ResilientClient`]) and the E19/E22 benchmarks all
//! share.
//!
//! One [`Client`] is one session: requests are synchronous (send one
//! frame, read one response). Server-side failures surface as
//! [`ServeError::Remote`] carrying the typed [`ErrorClass`], admission
//! refusals as [`ServeError::Overloaded`] / [`ServeError::ServerBusy`],
//! drain refusals as [`ServeError::Draining`] — callers never have to
//! parse message text to branch.
//!
//! The client additionally tracks whether *any* response byte arrived for
//! the in-flight request ([`Client::response_started`]). That single bit
//! is what makes safe retries of non-idempotent verbs possible: a
//! connection that died before the first response byte provably never
//! delivered an answer, while one that died mid-response is ambiguous —
//! the server may have applied the update — so the retry layer must not
//! re-send it.

use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use xqp::QueryLimits;

use crate::netfault::{FaultPlan, FaultStream, WireOp};
use crate::protocol::{
    limits_to_wire, read_frame, write_frame, Request, Response, ServeError, MAX_FRAME,
};

/// A connected session.
pub struct Client {
    stream: FaultStream<TcpStream>,
    max_frame: u32,
    response_started: bool,
}

/// Counts bytes as they stream in so the owning [`Client`] can tell a
/// pre-response connection loss (safe to retry anything) from a
/// mid-response one (ambiguous for updates).
struct TrackingReader<'a> {
    inner: &'a mut FaultStream<TcpStream>,
    started: &'a mut bool,
}

impl Read for TrackingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            *self.started = true;
        }
        Ok(n)
    }
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with_fault(addr, None)
    }

    /// Connect with a wire-fault plan attached: every socket operation of
    /// this session (including the connect itself) is routed through the
    /// plan. Torture and bench harnesses only; `None` is the production
    /// path.
    pub fn connect_with_fault(
        addr: impl ToSocketAddrs,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<Client, ServeError> {
        if let Some(p) = &plan {
            // Any flavor at the connect point means the same thing: the
            // connection never came up.
            if p.check(WireOp::Connect).is_some() {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "injected wire fault at connect",
                )));
            }
        }
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream: FaultStream::new(stream, plan),
            max_frame: MAX_FRAME,
            response_started: false,
        })
    }

    /// Did any response byte of the *most recent* request arrive before it
    /// failed? Meaningful after [`Client::request`] returns a transport
    /// error; the retry layer keys its non-idempotent-retry decision on it.
    pub fn response_started(&self) -> bool {
        self.response_started
    }

    /// Send one request and read its response. Converts the typed failure
    /// responses ([`Response::Error`], [`Response::Busy`],
    /// [`Response::Overloaded`], [`Response::Draining`]) into `Err`.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.response_started = false;
        write_frame(&mut self.stream, &req.encode())?;
        let payload = {
            let mut reader =
                TrackingReader { inner: &mut self.stream, started: &mut self.response_started };
            read_frame(&mut reader, self.max_frame)?
        };
        match Response::decode(&payload)? {
            Response::Error { class, message } => Err(ServeError::Remote { class, message }),
            Response::Busy { in_flight, max } => Err(ServeError::ServerBusy { in_flight, max }),
            Response::Overloaded { queue_depth, est_wait_ms, retry_after_ms } => {
                Err(ServeError::Overloaded { queue_depth, est_wait_ms, retry_after_ms })
            }
            Response::Draining => Err(ServeError::Draining),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(resp: Response) -> Result<T, ServeError> {
        Err(ServeError::Protocol(format!("unexpected response kind: {resp:?}")))
    }

    /// Liveness probe; returns the server's MVCC generation high-water mark
    /// and uptime in milliseconds.
    pub fn ping(&mut self) -> Result<(u64, u64), ServeError> {
        self.ping_with_retries(0)
    }

    /// Liveness probe reporting `retries` burned attempts to the server's
    /// `retries_seen` counter — sent by the retry layer when validating a
    /// reconnect before replaying session state.
    pub fn ping_with_retries(&mut self, retries: u32) -> Result<(u64, u64), ServeError> {
        match self.request(&Request::Ping { retries })? {
            Response::Pong { generation, uptime_ms } => Ok((generation, uptime_ms)),
            other => Self::unexpected(other),
        }
    }

    /// Snapshot the server's operational counters as `(name, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Self::unexpected(other),
        }
    }

    /// Run an XQuery; returns the MVCC generation the snapshot carried and
    /// the serialized result.
    pub fn query(&mut self, doc: &str, query: &str) -> Result<(u64, String), ServeError> {
        match self.request(&Request::Query { doc: doc.into(), query: query.into() })? {
            Response::Value { generation, body } => Ok((generation, body)),
            other => Self::unexpected(other),
        }
    }

    /// Evaluate a bare path to node ids (meaningful only against the
    /// returned generation).
    pub fn select(&mut self, doc: &str, path: &str) -> Result<(u64, Vec<u64>), ServeError> {
        match self.request(&Request::Select { doc: doc.into(), path: path.into() })? {
            Response::NodeIds { generation, ids } => Ok((generation, ids)),
            other => Self::unexpected(other),
        }
    }

    /// Splice `fragment` under every node `path` selects; returns the
    /// number of insertion points.
    pub fn insert(&mut self, doc: &str, path: &str, fragment: &str) -> Result<u64, ServeError> {
        let req = Request::Insert { doc: doc.into(), path: path.into(), fragment: fragment.into() };
        match self.request(&req)? {
            Response::Count { n } => Ok(n),
            other => Self::unexpected(other),
        }
    }

    /// Delete every subtree `path` selects; returns the number deleted.
    pub fn delete(&mut self, doc: &str, path: &str) -> Result<u64, ServeError> {
        match self.request(&Request::Delete { doc: doc.into(), path: path.into() })? {
            Response::Count { n } => Ok(n),
            other => Self::unexpected(other),
        }
    }

    /// Replace this session's resource limits.
    pub fn set_limits(&mut self, limits: &QueryLimits) -> Result<(), ServeError> {
        let (timeout_ms, max_memory, max_rows) = limits_to_wire(limits);
        match self.request(&Request::SetLimits { timeout_ms, max_memory, max_rows })? {
            Response::Pong { .. } => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// List the documents the server holds.
    pub fn list_docs(&mut self) -> Result<Vec<String>, ServeError> {
        match self.request(&Request::ListDocs)? {
            Response::Docs { names } => Ok(names),
            other => Self::unexpected(other),
        }
    }

    /// End the session cleanly (`Close` → `Bye`).
    pub fn close(mut self) -> Result<(), ServeError> {
        match self.request(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Self::unexpected(other),
        }
    }
}
